//! The `cais` command-line interface.
//!
//! ```text
//! cais score <CVE-ID> [--os <os>] [--app <application>]   score an IoC against the demo context
//! cais inventory                                          print the Table III inventory
//! cais classify <text…>                                   NLP threat triage of a text
//! cais check <value>                                      observable detection + warninglist check
//! cais demo                                               run the Section IV use case end to end
//! ```
//!
//! The CLI operates over the paper's demo context (Table III inventory
//! plus the synthetic CVE database); it exists to poke the library from
//! a shell, not to administer a deployment.

use std::process::ExitCode;

use cais::common::{Observable, ObservableKind, Timestamp};
use cais::core::heuristics::vulnerability;
use cais::core::{EvaluationContext, Platform};
use cais::feeds::{FeedRecord, ThreatCategory};
use cais::infra::inventory::Inventory;
use cais::nlp::ThreatClassifier;
use cais::stix::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut parts = args.iter().map(String::as_str);
    match parts.next() {
        Some("score") => cmd_score(&args[1..]),
        Some("inventory") => cmd_inventory(),
        Some("classify") => cmd_classify(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("demo") => cmd_demo(),
        Some("help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "cais — Context-Aware Intelligence Sharing platform\n\n\
         USAGE:\n  \
         cais score <CVE-ID> [--os <os>] [--app <application>]\n  \
         cais inventory\n  \
         cais classify <text…>\n  \
         cais check <value>\n  \
         cais demo\n"
    );
}

fn cmd_score(args: &[String]) -> ExitCode {
    let Some(cve) = args.first() else {
        eprintln!("usage: cais score <CVE-ID> [--os <os>] [--app <application>]");
        return ExitCode::from(2);
    };
    let mut os: Option<&str> = None;
    let mut app: Option<&str> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--os" if i + 1 < args.len() => {
                os = Some(&args[i + 1]);
                i += 2;
            }
            "--app" if i + 1 < args.len() => {
                app = Some(&args[i + 1]);
                i += 2;
            }
            other => {
                eprintln!("unknown option {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let ctx = EvaluationContext::paper_use_case().at(Timestamp::now());
    let mut builder = Vulnerability::builder(cve.as_str());
    let stamp = ctx.now.add_days(-30);
    builder
        .created(stamp)
        .modified(stamp)
        .valid_from(stamp)
        .external_reference(ExternalReference::cve(cve.as_str()))
        .source_type("osint")
        .osint_source("cli");
    if let Some(os) = os {
        builder.operating_system(os);
    }
    if let Some(app) = app {
        builder.affected_application(app);
    }
    let score = vulnerability::evaluate(&builder.build(), &ctx);

    println!("threat score for {cve}:");
    println!("  {:<22} {:>5} {:>8}", "feature", "Xi", "Pi");
    for line in &score.breakdown().lines {
        let xi = match line.value {
            cais::core::FeatureValue::Empty => "-".to_owned(),
            cais::core::FeatureValue::Scored(v) => v.to_string(),
        };
        println!("  {:<22} {:>5} {:>8.4}", line.feature, xi, line.weight);
    }
    println!(
        "\n  TS = {:.4}  [{}]  (completeness {:.2}, potential if complete {:.4})",
        score.total(),
        score.priority_label(),
        score.completeness(),
        score.potential_if_complete(),
    );
    ExitCode::SUCCESS
}

fn cmd_inventory() -> ExitCode {
    let inventory = Inventory::paper_table3();
    println!("{:<8} {:<10} {:<8} applications", "node", "name", "os");
    for node in inventory.nodes() {
        println!(
            "{:<8} {:<10} {:<8} {}",
            node.id.to_string(),
            node.name,
            node.operating_system,
            node.applications.join(", ")
        );
    }
    println!(
        "common keywords: {}",
        inventory.common_keywords().join(", ")
    );
    ExitCode::SUCCESS
}

fn cmd_classify(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("usage: cais classify <text…>");
        return ExitCode::from(2);
    }
    let text = args.join(" ");
    let verdict = ThreatClassifier::new().classify(&text);
    println!(
        "relevant: {}  confidence: {:.2}",
        verdict.is_relevant(),
        verdict.confidence()
    );
    for (threat, score) in verdict.scores() {
        println!("  {threat}: {score:.2}");
    }
    if !verdict.matched_keywords().is_empty() {
        println!("  keywords: {}", verdict.matched_keywords().join(", "));
    }
    ExitCode::SUCCESS
}

fn cmd_check(args: &[String]) -> ExitCode {
    let Some(value) = args.first() else {
        eprintln!("usage: cais check <value>");
        return ExitCode::from(2);
    };
    match ObservableKind::detect(value) {
        Some(kind) => {
            println!("kind: {kind}");
            match cais::misp::warninglist::check(value) {
                Some(warning) => println!("warninglist: {warning} (known-benign)"),
                None => println!("warninglist: clean"),
            }
            ExitCode::SUCCESS
        }
        None => {
            println!("not a recognizable observable");
            ExitCode::from(1)
        }
    }
}

fn cmd_demo() -> ExitCode {
    let mut platform = Platform::paper_use_case();
    let now = platform.context().now;
    let advisory = FeedRecord::new(
        Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
        ThreatCategory::VulnerabilityExploitation,
        "nvd-feed",
        now.add_days(-100),
    )
    .with_cve("CVE-2017-9805")
    .with_description("remote code execution in apache struts");
    match platform.ingest_feed_records(vec![advisory]) {
        Ok(report) => {
            println!("{report:?}");
            for rioc in platform.riocs() {
                println!(
                    "rIoC: {} TS={:.4} [{}] nodes={:?}",
                    rioc.cve.as_deref().unwrap_or("-"),
                    rioc.threat_score,
                    rioc.priority_label(),
                    rioc.nodes
                );
            }
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("demo failed: {err}");
            ExitCode::FAILURE
        }
    }
}
