//! # CAIS — Context-Aware Intelligence Sharing platform
//!
//! A Rust implementation of the Context-Aware OSINT Platform of
//! *"Enhancing Information Sharing and Visualization Capabilities in
//! Security Data Analytic Platforms"* (DSN 2019): OSINT collection,
//! deduplication and aggregation into composed IoCs, heuristic threat
//! scoring against the monitored infrastructure (`TS = Cp × Σ Xi·Pi`),
//! enrichment, reduction, dashboard visualization and MISP/STIX/TAXII
//! sharing.
//!
//! This facade crate re-exports every workspace crate under one root:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`common`] | `cais-common` | timestamps, UUIDs, observables |
//! | [`stix`] | `cais-stix` | STIX 2.0 objects + patterning |
//! | [`cvss`] | `cais-cvss` | CVSS scoring, CVE database |
//! | [`bus`] | `cais-bus` | pub/sub messaging (zeroMQ stand-in) |
//! | [`feeds`] | `cais-feeds` | OSINT feed formats + synthesis |
//! | [`nlp`] | `cais-nlp` | threat-keyword classification |
//! | [`infra`] | `cais-infra` | inventory, sensors, alarms |
//! | [`misp`] | `cais-misp` | MISP-like TI platform |
//! | [`search`] | `cais-search` | incremental inverted index + query language |
//! | [`taxii`] | `cais-taxii` | TAXII-like sharing |
//! | [`core`] | `cais-core` | ★ the paper's platform core |
//! | [`decay`] | `cais-decay` | indicator lifecycle: decay scoring + expiry |
//! | [`federation`] | `cais-federation` | N-instance sharing with tenant policy |
//! | [`dashboard`] | `cais-dashboard` | the output module |
//! | [`telemetry`] | `cais-telemetry` | metrics registry, tracing, scrape endpoint |
//!
//! # Quickstart
//!
//! ```
//! use cais::core::{Platform, ReducedIoc};
//! use cais::common::{Observable, ObservableKind};
//! use cais::feeds::{FeedRecord, ThreatCategory};
//!
//! // The platform of the paper's Section IV use case.
//! let mut platform = Platform::paper_use_case();
//! let dashboard_feed = platform.broker().subscribe("cais.rioc.published");
//!
//! // A vulnerability advisory arrives from an OSINT feed…
//! let now = platform.context().now;
//! let advisory = FeedRecord::new(
//!     Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
//!     ThreatCategory::VulnerabilityExploitation,
//!     "nvd-feed",
//!     now.add_days(-100),
//! )
//! .with_cve("CVE-2017-9805")
//! .with_description("remote code execution in apache struts");
//!
//! // …is deduplicated, aggregated, scored and reduced…
//! let report = platform.ingest_feed_records(vec![advisory])?;
//! assert_eq!(report.riocs, 1);
//!
//! // …and the rIoC reaches the dashboard topic.
//! let rioc: ReducedIoc = dashboard_feed.try_recv().unwrap().decode().unwrap();
//! assert_eq!(rioc.cve.as_deref(), Some("CVE-2017-9805"));
//! # Ok::<(), cais::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cais_bus as bus;
pub use cais_common as common;
pub use cais_core as core;
pub use cais_cvss as cvss;
pub use cais_dashboard as dashboard;
pub use cais_decay as decay;
pub use cais_federation as federation;
pub use cais_feeds as feeds;
pub use cais_infra as infra;
pub use cais_misp as misp;
pub use cais_nlp as nlp;
pub use cais_search as search;
pub use cais_stix as stix;
pub use cais_taxii as taxii;
pub use cais_telemetry as telemetry;
