//! End-to-end integration across the whole workspace: synthetic feeds
//! through collection, MISP storage, scoring, reduction, the dashboard
//! stream and federation.

use cais::common::{Observable, ObservableKind};
use cais::core::Platform;
use cais::dashboard::{DashboardState, DashboardStream};
use cais::feeds::synth::{SyntheticConfig, SyntheticFeedSet};
use cais::feeds::{parse, FeedRecord, ThreatCategory};
use cais::infra::inventory::Inventory;
use cais::infra::sensors::nids;
use cais::misp::MispApi;

fn struts_advisory(platform: &Platform) -> FeedRecord {
    let now = platform.context().now;
    FeedRecord::new(
        Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
        ThreatCategory::VulnerabilityExploitation,
        "nvd-feed",
        now.add_days(-100),
    )
    .with_cve("CVE-2017-9805")
    .with_description("remote code execution in apache struts")
}

#[test]
fn synthetic_feeds_deduplicate_to_ground_truth() {
    let mut platform = Platform::paper_use_case();
    let set = SyntheticFeedSet::generate(&SyntheticConfig {
        seed: 99,
        feeds: 5,
        records_per_feed: 200,
        duplicate_rate: 0.3,
        overlap_rate: 0.3,
        base_time: platform.context().now.add_days(-5),
        ..SyntheticConfig::default()
    });
    let mut records = Vec::new();
    for feed in &set.feeds {
        records.extend(
            parse::parse_payload(feed.format, &feed.payload, &feed.name, feed.category).unwrap(),
        );
    }
    let total = records.len();
    let report = platform.ingest_feed_records(records).unwrap();
    assert_eq!(report.records_in, total);
    // The collector must recover exactly the generator's ground truth
    // (dedup keys survive all three wire formats).
    assert_eq!(
        report.records_in - report.duplicates_dropped,
        set.unique_record_count(),
        "dedup output disagrees with ground truth"
    );
    assert!(report.ciocs > 0);
    assert_eq!(report.eiocs, report.ciocs);
    // Every cIoC became a stored MISP event with a threat score.
    assert_eq!(platform.misp().store().len(), report.ciocs);
    platform.misp().store().for_each(|event| {
        assert!(
            event.threat_score().is_some(),
            "event {} unscored",
            event.id
        );
        assert!(event.published);
    });
}

#[test]
fn dashboard_stream_tracks_the_platform() {
    let mut platform = Platform::paper_use_case();
    let mut stream = DashboardStream::attach(
        DashboardState::new(Inventory::paper_table3()),
        platform.broker(),
    );

    // Alarms from attack traffic…
    let inventory = Inventory::paper_table3();
    let packets = nids::generate_traffic(5, 500, 0.1, &inventory, platform.context().now);
    platform.ingest_packets(&packets);
    // …and a relevant advisory.
    platform
        .ingest_feed_records(vec![struts_advisory(&platform)])
        .unwrap();

    let applied = stream.pump();
    assert!(applied >= 2, "expected alarms + rIoC, applied {applied}");
    assert_eq!(stream.state().riocs().len(), 1);
    assert!(!stream.state().alarms().is_empty());
    assert_eq!(stream.decode_failures(), 0);

    // The rendered dashboard shows the score.
    let text = cais::dashboard::render::ascii(stream.state());
    assert!(text.contains("CVE-2017-9805"));
    let doc = cais::dashboard::render::json(stream.state());
    assert_eq!(doc["rioc_total"], 1);
}

#[test]
fn alarm_context_raises_the_use_case_score() {
    // Without alarms the use case scores 2.7407; Struts exploitation
    // traffic observed by the NIDS must raise it.
    let mut quiet = Platform::paper_use_case();
    quiet
        .ingest_feed_records(vec![struts_advisory(&quiet)])
        .unwrap();
    let quiet_score = quiet.eiocs()[0].score();

    let mut noisy = Platform::paper_use_case();
    let packet = nids::Packet {
        at: noisy.context().now,
        src_ip: "203.0.113.9".into(),
        dst_ip: "192.168.1.14".into(),
        dst_port: 8080,
        payload: "XStreamHandler xstream RCE attempt".into(),
    };
    noisy.ingest_packets(&[packet]);
    noisy
        .ingest_feed_records(vec![struts_advisory(&noisy)])
        .unwrap();
    let noisy_score = noisy.eiocs()[0].score();

    assert!(
        noisy_score > quiet_score,
        "alarm context must raise the score: {noisy_score} !> {quiet_score}"
    );
}

#[test]
fn federation_shares_enriched_events() {
    let mut platform = Platform::paper_use_case();
    platform
        .ingest_feed_records(vec![struts_advisory(&platform)])
        .unwrap();
    let partner = MispApi::new("partner");
    assert_eq!(platform.share_with(&partner), 1);
    // The partner received the event with its threat-score attribute
    // and criterion tags intact.
    let event = partner.store().snapshot().events()[0].event.clone();
    assert!(event.threat_score().is_some());
    assert!(event
        .tags
        .iter()
        .any(|t| t.namespace() == Some("cais") && t.predicate() == Some("relevance")));
    // Re-sharing is idempotent.
    assert_eq!(platform.share_with(&partner), 0);
}

#[test]
fn misp_export_formats_agree_on_content() {
    let mut platform = Platform::paper_use_case();
    platform
        .ingest_feed_records(vec![struts_advisory(&platform)])
        .unwrap();
    let event_id = platform.eiocs()[0].misp_event_id.unwrap();

    let misp_json = platform
        .misp()
        .export_event(event_id, "misp-json")
        .unwrap()
        .unwrap();
    let stix = platform
        .misp()
        .export_event(event_id, "stix2")
        .unwrap()
        .unwrap();
    let csv = platform
        .misp()
        .export_event(event_id, "csv")
        .unwrap()
        .unwrap();
    for (name, payload) in [("misp-json", &misp_json), ("stix2", &stix), ("csv", &csv)] {
        assert!(
            payload.contains("CVE-2017-9805"),
            "{name} export lost the CVE"
        );
    }
    // The MISP JSON round-trips through the importer.
    let event = cais::misp::export::misp_json::from_document(&misp_json).unwrap();
    assert!(event.threat_score().is_some());
    // The STIX export parses as a bundle whose indicator patterns
    // compile.
    let bundle = cais::stix::Bundle::from_json(&stix).unwrap();
    assert!(bundle.len() >= 2);
    let findings = cais::stix::validate::validate_bundle(&bundle);
    assert!(
        cais::stix::validate::is_acceptable(&findings),
        "{findings:?}"
    );
}

#[test]
fn reports_and_state_survive_many_rounds() {
    let mut platform = Platform::paper_use_case();
    let now = platform.context().now;
    let mut total_riocs = 0;
    for round in 0..10 {
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Domain, format!("c2-{round}.evil.example")),
            ThreatCategory::CommandAndControl,
            "feed",
            now.add_days(-(round as i64) - 1),
        );
        let report = platform
            .ingest_feed_records(vec![record, struts_advisory(&platform)])
            .unwrap();
        total_riocs += report.riocs;
    }
    // The struts advisory deduplicates after round 0; each c2 domain is
    // fresh.
    assert_eq!(platform.eiocs().len(), 11);
    assert_eq!(total_riocs, 1);
    assert_eq!(platform.misp().store().len(), 11);
}

#[test]
fn feed_scoreboard_ranks_sources() {
    let mut platform = Platform::paper_use_case();
    let now = platform.context().now;
    // fast-feed delivers fresh, original records; slow-feed parrots them
    // three days late.
    let originals: Vec<FeedRecord> = (0..20)
        .map(|i| {
            FeedRecord::new(
                Observable::new(ObservableKind::Domain, format!("c2-{i}.threat.ru")),
                ThreatCategory::CommandAndControl,
                "fast-feed",
                now.add_days(-1),
            )
        })
        .collect();
    let parroted: Vec<FeedRecord> = originals
        .iter()
        .map(|r| {
            let mut copy = r.clone();
            copy.source = "slow-feed".into();
            copy.seen_at = now.add_days(-4);
            copy
        })
        .collect();
    platform.ingest_feed_records(originals).unwrap();
    platform.ingest_feed_records(parroted).unwrap();
    let board = platform.feed_scoreboard();
    assert_eq!(board.len(), 2);
    assert_eq!(board[0].0, "fast-feed");
    assert!(board[0].1 > board[1].1, "{board:?}");
}

#[test]
fn scheduler_drives_the_platform() {
    use cais::feeds::{FeedFormat, FeedScheduler, MemorySource};
    use std::sync::mpsc;
    use std::time::Duration;

    // The scheduler polls a source and hands records over a channel;
    // the platform drains the channel — the paper's Fig. 1 input loop.
    let (tx, rx) = mpsc::channel::<Vec<FeedRecord>>();
    let mut scheduler = FeedScheduler::new(move |records| {
        let _ = tx.send(records);
    });
    scheduler.add_source(
        Box::new(MemorySource::new(
            "polled-feed",
            FeedFormat::PlainText,
            ThreatCategory::MalwareDomain,
            "c2.threat-domain.ru\ndrop.threat-domain.ru\n",
        )),
        Duration::from_millis(10),
    );
    let handle = scheduler.start(Duration::from_millis(2));

    let mut platform = Platform::paper_use_case();
    let mut rounds = 0;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while rounds < 3 && std::time::Instant::now() < deadline {
        if let Ok(records) = rx.recv_timeout(Duration::from_millis(200)) {
            platform.ingest_feed_records(records).unwrap();
            rounds += 1;
        }
    }
    handle.stop();
    assert!(rounds >= 3, "scheduler delivered only {rounds} rounds");
    // The same payload re-fetched repeatedly: exactly one cIoC ever
    // forms (both domains share an apex and correlate), repeats dedup.
    assert_eq!(platform.eiocs().len(), 1);
    assert!(platform.misp().store().len() == 1);
}
