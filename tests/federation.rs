//! Federation scenarios: multiple CAIS platforms exchanging
//! intelligence over every channel the paper names — MISP sync over
//! real framed-TCP federation peers with distribution downgrades, the
//! MISP feed loop, STIX bundles over TAXII — and re-scoring received
//! intelligence against their own context.

use std::sync::Arc;

use cais::common::resilience::FaultPlan;
use cais::common::serve::{NoServeMetrics, ServeConfig};
use cais::common::{Observable, ObservableKind};
use cais::core::Platform;
use cais::federation::{
    sharing_group_tag, FedResponse, FederationClient, FederationHarness, FederationPeer,
    SharingPolicy, Tenant, Topology,
};
use cais::feeds::{parse, FeedRecord, ThreatCategory};
use cais::misp::event::Distribution;
use cais::misp::{AttributeCategory, MispAttribute, MispEvent};
use cais::stix::prelude::*;
use cais::taxii::{Collection, TaxiiClient, TaxiiServer};
use parking_lot::RwLock;

fn struts_advisory(platform: &Platform) -> FeedRecord {
    FeedRecord::new(
        Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
        ThreatCategory::VulnerabilityExploitation,
        "nvd-feed",
        platform.context().now.add_days(-100),
    )
    .with_cve("CVE-2017-9805")
    .with_description("remote code execution in apache struts")
}

/// Extracts a push ack or panics with the unexpected response.
fn ack(response: FedResponse) -> (usize, usize) {
    match response {
        FedResponse::Ack {
            inserted, withheld, ..
        } => (inserted, withheld),
        other => panic!("unexpected response {other:?}"),
    }
}

/// Producer platform → framed-TCP push → partner → second hop: the
/// distribution level decays per hop until the intelligence pins.
/// The in-proc `sync::push` version of this scenario now travels the
/// real transport — client, server, serving core — end to end.
#[test]
fn three_hop_distribution_decay() {
    let mut producer = Platform::paper_use_case();
    producer
        .ingest_feed_records(vec![struts_advisory(&producer)])
        .unwrap();
    // Mark the event for two-hop propagation.
    let event_id = producer.eiocs()[0].misp_event_id.unwrap();
    producer
        .misp()
        .store()
        .update(event_id, |event| {
            event.distribution = Distribution::ConnectedCommunities;
        })
        .unwrap();

    // Three federated hops, each a real TCP endpoint on the serving
    // core, sharing one all-access policy.
    let mut policy = SharingPolicy::new();
    for org in ["hop-1", "hop-2", "hop-3"] {
        policy.admit(Tenant::new(org, Vec::<String>::new()));
    }
    let policy = Arc::new(RwLock::new(policy));
    let hops: Vec<FederationPeer> = ["hop-1", "hop-2", "hop-3"]
        .iter()
        .map(|org| FederationPeer::new(*org, Arc::clone(&policy)))
        .collect();
    let handles: Vec<_> = hops
        .iter()
        .map(|hop| {
            hop.serve_on_core("127.0.0.1:0", ServeConfig::default(), NoServeMetrics)
                .expect("bind federation peer")
        })
        .collect();

    // Producer → hop-1: ConnectedCommunities arrives CommunityOnly.
    let wire_event = producer.misp().store().snapshot().events()[0]
        .event
        .as_ref()
        .clone();
    let mut client = FederationClient::new(handles[0].local_addr(), "producer");
    let (inserted, _) = ack(client.push_faulted(None, None, vec![wire_event]).unwrap());
    assert_eq!(inserted, 1);
    let on_hop1 = hops[0].api().store().snapshot().events()[0]
        .event
        .as_ref()
        .clone();
    assert_eq!(on_hop1.distribution, Distribution::CommunityOnly);
    assert!(on_hop1.published, "published state rides the wire");

    // Hop-1 → hop-2: CommunityOnly arrives OrganizationOnly.
    let mut client = FederationClient::new(handles[1].local_addr(), "hop-1");
    let (inserted, _) = ack(client.push_faulted(None, None, vec![on_hop1]).unwrap());
    assert_eq!(inserted, 1);
    let on_hop2 = hops[1].api().store().snapshot().events()[0]
        .event
        .as_ref()
        .clone();
    assert_eq!(on_hop2.distribution, Distribution::OrganizationOnly);

    // The intelligence itself survived both wire hops.
    assert!(on_hop2.threat_score().is_some());

    // Hop-2 → hop-3: OrganizationOnly pins; the receiver's hop gate
    // withholds it and stores nothing.
    let mut client = FederationClient::new(handles[2].local_addr(), "hop-2");
    let (inserted, withheld) = ack(client.push_faulted(None, None, vec![on_hop2]).unwrap());
    assert_eq!((inserted, withheld), (0, 1));
    assert_eq!(hops[2].api().store().len(), 0);

    for handle in handles {
        handle.shutdown();
    }
}

/// An event whose attributes split across sharing groups is partially
/// delivered: each tenant receives the event with exactly the
/// attributes its groups allow — over real TCP, with zero leaks.
#[test]
fn sharing_groups_split_attributes_across_tenants() {
    let tenants = vec![
        Tenant::new("org-fin", ["fin"]),
        Tenant::new("org-gov", ["gov"]),
        Tenant::new("org-open", Vec::<String>::new()),
    ];
    let mut harness =
        FederationHarness::tcp(Topology::Mesh, tenants, FaultPlan::healthy()).unwrap();

    // One broadcast event, attributes fanned across groups.
    let mut event = MispEvent::new("split intel");
    event.distribution = Distribution::AllCommunities;
    let mut fin = MispAttribute::new(
        "domain",
        AttributeCategory::NetworkActivity,
        "fin-only.example",
    );
    fin.tags.push(sharing_group_tag("fin"));
    let mut gov = MispAttribute::new(
        "domain",
        AttributeCategory::NetworkActivity,
        "gov-only.example",
    );
    gov.tags.push(sharing_group_tag("gov"));
    let open = MispAttribute::new("domain", AttributeCategory::NetworkActivity, "open.example");
    event.add_attribute(fin);
    event.add_attribute(gov);
    event.add_attribute(open);
    let uuid = harness.seed_event(0, event).unwrap();

    let report = harness.run_until_quiescent(16);
    assert!(report.converged, "mesh failed to converge: {report:?}");
    assert!(harness.leaks().is_empty(), "leaks: {:?}", harness.leaks());

    let values = |peer: usize| -> Vec<String> {
        let event = harness
            .peer(peer)
            .api()
            .store()
            .get_by_uuid(&uuid)
            .expect("event delivered");
        let mut values: Vec<String> = event.attributes.iter().map(|a| a.value.clone()).collect();
        values.sort();
        values
    };
    // org-gov got the event, minus the fin-only attribute.
    assert_eq!(values(1), ["gov-only.example", "open.example"]);
    // org-open (no groups) got only the unrestricted attribute.
    assert_eq!(values(2), ["open.example"]);
    harness.shutdown();
}

/// A tenant revoked mid-round receives nothing new — its store diff
/// across later rounds is empty, while the remaining tenants keep
/// converging.
#[test]
fn revoked_tenant_receives_nothing_new() {
    let tenants = vec![
        Tenant::new("org-0", Vec::<String>::new()),
        Tenant::new("org-1", Vec::<String>::new()),
        Tenant::new("org-2", Vec::<String>::new()),
    ];
    let mut harness =
        FederationHarness::tcp(Topology::Mesh, tenants, FaultPlan::healthy()).unwrap();

    let mut before = MispEvent::new("before revocation");
    before.distribution = Distribution::AllCommunities;
    harness.seed_event(0, before).unwrap();
    assert!(harness.run_until_quiescent(16).converged);
    let revoked_view = harness.stored_uuids(2);
    assert_eq!(revoked_view.len(), 1, "org-2 synced while admitted");

    // Revoke org-2 mid-run, then publish more intelligence.
    assert!(harness.policy().write().revoke("org-2"));
    for info in ["after one", "after two"] {
        let mut event = MispEvent::new(info);
        event.distribution = Distribution::AllCommunities;
        harness.seed_event(1, event).unwrap();
    }
    let report = harness.run_until_quiescent(16);
    assert!(report.converged);

    // The survivors converged on the new intelligence…
    assert_eq!(harness.stored_uuids(0).len(), 3);
    assert_eq!(harness.stored_uuids(1).len(), 3);
    // …while the revoked tenant's store diff is empty: it kept what it
    // had and received nothing new.
    assert_eq!(harness.stored_uuids(2), revoked_view);
    assert!(harness.leaks().is_empty());
    harness.shutdown();
}

/// Producer exports a MISP feed; a downstream platform ingests it with
/// its ordinary OSINT collector and re-scores against its *own*
/// context.
#[test]
fn feed_export_closes_the_loop() {
    let mut producer = Platform::paper_use_case();
    producer
        .ingest_feed_records(vec![struts_advisory(&producer)])
        .unwrap();
    let event_id = producer.eiocs()[0].misp_event_id.unwrap();
    let feed_doc = producer
        .misp()
        .export_event(event_id, "misp-feed")
        .unwrap()
        .expect("misp-feed module installed");

    // Downstream parses the feed like any OSINT source…
    let records = parse::misp_feed::parse(
        &feed_doc,
        "upstream-cais",
        ThreatCategory::VulnerabilityExploitation,
    )
    .unwrap();
    assert!(!records.is_empty());

    // …and scores it against its own (identical, here) inventory.
    let mut downstream = Platform::paper_use_case();
    let report = downstream.ingest_feed_records(records).unwrap();
    assert!(report.eiocs > 0);
    assert!(report.riocs > 0, "downstream also runs apache");
}

/// STIX bundles travel over the TAXII channel and are scored on
/// arrival by the receiver's heuristics.
#[test]
fn taxii_delivery_feeds_the_heuristics() {
    // A sharing point with one collection.
    let mut server = TaxiiServer::new("community sharing point");
    let collection = server.add_collection(Collection::new("stix", "raw STIX objects"));
    let addr = server.serve("127.0.0.1:0").unwrap();

    // The producer pushes a STIX bundle.
    let producer = TaxiiClient::connect(addr).unwrap();
    let stamp = cais::common::Timestamp::from_ymd_hms(2018, 5, 30, 0, 0, 0);
    let mut malware = Malware::builder("emotet");
    malware
        .label("trojan")
        .status("active")
        .operating_system("windows")
        .created(stamp)
        .modified(stamp);
    let mut indicator = Indicator::builder("[ipv4-addr:value = '203.0.113.50']", stamp);
    indicator
        .name("emotet-c2")
        .label("malicious-activity")
        .created(stamp)
        .modified(stamp);
    let bundle = Bundle::new(vec![malware.build().into(), indicator.build().into()]);
    let objects: Vec<serde_json::Value> = bundle
        .objects()
        .iter()
        .map(|o| serde_json::to_value(o).unwrap())
        .collect();
    producer.add_objects(&collection, objects).unwrap();

    // The consumer pulls, reassembles the bundle, and ingests it.
    let consumer = TaxiiClient::connect(addr).unwrap();
    let pulled = consumer.all_objects(&collection).unwrap();
    let mut reassembled = Bundle::empty();
    for value in pulled {
        let object: StixObject = serde_json::from_value(value).unwrap();
        reassembled.push(object);
    }
    assert_eq!(reassembled.len(), 2);

    let mut receiver = Platform::paper_use_case();
    let scored = receiver.ingest_stix_bundle(&reassembled).unwrap();
    assert_eq!(scored, 2);
    assert_eq!(receiver.armed_indicators(), 1);
    // The received indicator now defends the receiver's network.
    let packet = cais::infra::sensors::nids::Packet {
        at: receiver.context().now,
        src_ip: "203.0.113.50".into(),
        dst_ip: "192.168.1.11".into(),
        dst_port: 443,
        payload: "beacon".into(),
    };
    receiver.ingest_packets(&[packet]);
    assert_eq!(receiver.detections().len(), 1);
}

/// The same intelligence scores differently on platforms with different
/// inventories — the essence of context-awareness.
#[test]
fn context_changes_the_verdict() {
    use cais::core::EvaluationContext;
    use cais::cvss::CveDatabase;
    use cais::infra::inventory::{Inventory, NodeType};
    use cais::infra::SightingStore;
    use std::sync::Arc;

    // Platform A: the paper's inventory (runs apache).
    let mut apache_shop = Platform::paper_use_case();
    let report = apache_shop
        .ingest_feed_records(vec![struts_advisory(&apache_shop)])
        .unwrap();
    assert_eq!(report.riocs, 1, "apache shop must alert");

    // Platform B: a windows-only shop.
    let mut builder = Inventory::builder();
    builder
        .node("AD-Controller", NodeType::Server, "windows")
        .applications(&["windows", "active directory", "exchange"])
        .ip("10.1.1.10")
        .network("LAN");
    let inventory = builder.build();
    let ctx = EvaluationContext::new(
        Arc::new(inventory),
        Arc::new(CveDatabase::synthetic(0, 200)),
        Arc::new(SightingStore::new()),
        cais::common::Timestamp::from_ymd_hms(2018, 6, 1, 0, 0, 0),
    );
    let mut windows_shop = Platform::new(cais::core::PlatformConfig::default(), ctx);
    let report = windows_shop
        .ingest_feed_records(vec![struts_advisory(&windows_shop)])
        .unwrap();
    assert_eq!(report.eiocs, 1, "still stored and scored");
    assert_eq!(report.riocs, 0, "but no dashboard noise: no apache here");
}
