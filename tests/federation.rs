//! Federation scenarios: multiple CAIS platforms exchanging
//! intelligence over every channel the paper names — MISP sync with
//! distribution downgrades, the MISP feed loop, STIX bundles over
//! TAXII — and re-scoring received intelligence against their own
//! context.

use cais::common::{Observable, ObservableKind};
use cais::core::Platform;
use cais::feeds::{parse, FeedRecord, ThreatCategory};
use cais::misp::event::Distribution;
use cais::misp::{sync, MispApi};
use cais::stix::prelude::*;
use cais::taxii::{Collection, TaxiiClient, TaxiiServer};

fn struts_advisory(platform: &Platform) -> FeedRecord {
    FeedRecord::new(
        Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
        ThreatCategory::VulnerabilityExploitation,
        "nvd-feed",
        platform.context().now.add_days(-100),
    )
    .with_cve("CVE-2017-9805")
    .with_description("remote code execution in apache struts")
}

/// Producer platform → MISP sync → partner → second hop: the
/// distribution level decays per hop until the intelligence pins.
#[test]
fn three_hop_distribution_decay() {
    let mut producer = Platform::paper_use_case();
    producer
        .ingest_feed_records(vec![struts_advisory(&producer)])
        .unwrap();
    // Mark the event for two-hop propagation.
    let event_id = producer.eiocs()[0].misp_event_id.unwrap();
    producer
        .misp()
        .store()
        .update(event_id, |event| {
            event.distribution = Distribution::ConnectedCommunities;
        })
        .unwrap();

    let hop1 = MispApi::new("hop-1");
    assert_eq!(sync::push(producer.misp(), &hop1).transferred, 1);
    let on_hop1 = hop1.store().snapshot().events()[0].event.clone();
    assert_eq!(on_hop1.distribution, Distribution::CommunityOnly);

    hop1.publish_event(on_hop1.id).unwrap();
    let hop2 = MispApi::new("hop-2");
    assert_eq!(sync::push(&hop1, &hop2).transferred, 1);
    let on_hop2 = hop2.store().snapshot().events()[0].event.clone();
    assert_eq!(on_hop2.distribution, Distribution::OrganizationOnly);

    // The intelligence itself survived both hops.
    assert!(on_hop2.threat_score().is_some());
    hop2.publish_event(on_hop2.id).unwrap();
    let hop3 = MispApi::new("hop-3");
    let report = sync::push(&hop2, &hop3);
    assert_eq!(report.withheld, 1);
    assert_eq!(hop3.store().len(), 0);
}

/// Producer exports a MISP feed; a downstream platform ingests it with
/// its ordinary OSINT collector and re-scores against its *own*
/// context.
#[test]
fn feed_export_closes_the_loop() {
    let mut producer = Platform::paper_use_case();
    producer
        .ingest_feed_records(vec![struts_advisory(&producer)])
        .unwrap();
    let event_id = producer.eiocs()[0].misp_event_id.unwrap();
    let feed_doc = producer
        .misp()
        .export_event(event_id, "misp-feed")
        .unwrap()
        .expect("misp-feed module installed");

    // Downstream parses the feed like any OSINT source…
    let records = parse::misp_feed::parse(
        &feed_doc,
        "upstream-cais",
        ThreatCategory::VulnerabilityExploitation,
    )
    .unwrap();
    assert!(!records.is_empty());

    // …and scores it against its own (identical, here) inventory.
    let mut downstream = Platform::paper_use_case();
    let report = downstream.ingest_feed_records(records).unwrap();
    assert!(report.eiocs > 0);
    assert!(report.riocs > 0, "downstream also runs apache");
}

/// STIX bundles travel over the TAXII channel and are scored on
/// arrival by the receiver's heuristics.
#[test]
fn taxii_delivery_feeds_the_heuristics() {
    // A sharing point with one collection.
    let mut server = TaxiiServer::new("community sharing point");
    let collection = server.add_collection(Collection::new("stix", "raw STIX objects"));
    let addr = server.serve("127.0.0.1:0").unwrap();

    // The producer pushes a STIX bundle.
    let producer = TaxiiClient::connect(addr).unwrap();
    let stamp = cais::common::Timestamp::from_ymd_hms(2018, 5, 30, 0, 0, 0);
    let mut malware = Malware::builder("emotet");
    malware
        .label("trojan")
        .status("active")
        .operating_system("windows")
        .created(stamp)
        .modified(stamp);
    let mut indicator = Indicator::builder("[ipv4-addr:value = '203.0.113.50']", stamp);
    indicator
        .name("emotet-c2")
        .label("malicious-activity")
        .created(stamp)
        .modified(stamp);
    let bundle = Bundle::new(vec![malware.build().into(), indicator.build().into()]);
    let objects: Vec<serde_json::Value> = bundle
        .objects()
        .iter()
        .map(|o| serde_json::to_value(o).unwrap())
        .collect();
    producer.add_objects(&collection, objects).unwrap();

    // The consumer pulls, reassembles the bundle, and ingests it.
    let consumer = TaxiiClient::connect(addr).unwrap();
    let pulled = consumer.all_objects(&collection).unwrap();
    let mut reassembled = Bundle::empty();
    for value in pulled {
        let object: StixObject = serde_json::from_value(value).unwrap();
        reassembled.push(object);
    }
    assert_eq!(reassembled.len(), 2);

    let mut receiver = Platform::paper_use_case();
    let scored = receiver.ingest_stix_bundle(&reassembled).unwrap();
    assert_eq!(scored, 2);
    assert_eq!(receiver.armed_indicators(), 1);
    // The received indicator now defends the receiver's network.
    let packet = cais::infra::sensors::nids::Packet {
        at: receiver.context().now,
        src_ip: "203.0.113.50".into(),
        dst_ip: "192.168.1.11".into(),
        dst_port: 443,
        payload: "beacon".into(),
    };
    receiver.ingest_packets(&[packet]);
    assert_eq!(receiver.detections().len(), 1);
}

/// The same intelligence scores differently on platforms with different
/// inventories — the essence of context-awareness.
#[test]
fn context_changes_the_verdict() {
    use cais::core::EvaluationContext;
    use cais::cvss::CveDatabase;
    use cais::infra::inventory::{Inventory, NodeType};
    use cais::infra::SightingStore;
    use std::sync::Arc;

    // Platform A: the paper's inventory (runs apache).
    let mut apache_shop = Platform::paper_use_case();
    let report = apache_shop
        .ingest_feed_records(vec![struts_advisory(&apache_shop)])
        .unwrap();
    assert_eq!(report.riocs, 1, "apache shop must alert");

    // Platform B: a windows-only shop.
    let mut builder = Inventory::builder();
    builder
        .node("AD-Controller", NodeType::Server, "windows")
        .applications(&["windows", "active directory", "exchange"])
        .ip("10.1.1.10")
        .network("LAN");
    let inventory = builder.build();
    let ctx = EvaluationContext::new(
        Arc::new(inventory),
        Arc::new(CveDatabase::synthetic(0, 200)),
        Arc::new(SightingStore::new()),
        cais::common::Timestamp::from_ymd_hms(2018, 6, 1, 0, 0, 0),
    );
    let mut windows_shop = Platform::new(cais::core::PlatformConfig::default(), ctx);
    let report = windows_shop
        .ingest_feed_records(vec![struts_advisory(&windows_shop)])
        .unwrap();
    assert_eq!(report.eiocs, 1, "still stored and scored");
    assert_eq!(report.riocs, 0, "but no dashboard noise: no apache here");
}
