//! Chaos integration tests: the sharing channels (TAXII, MISP sync)
//! against servers that drop, corrupt and replay frames on a seeded
//! schedule.
//!
//! Every test derives its fault schedule from `CAIS_CHAOS_SEED`
//! (default 42) and prints the seed up front, so a CI failure is
//! reproducible with `CAIS_CHAOS_SEED=<seed> cargo test --test chaos`.

use std::io;

use cais::common::resilience::{
    BreakerConfig, FaultKind, FaultPlan, RecordingSleeper, RetryPolicy, ThreadSleeper,
};
use cais::misp::event::Distribution;
use cais::misp::sync::push_resilient;
use cais::misp::{MispApi, MispEvent};
use cais::taxii::{Collection, Request, ResilientTaxiiClient, TaxiiServer};
use cais::telemetry::Registry;

fn chaos_seed() -> u64 {
    let seed = std::env::var("CAIS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    eprintln!("chaos seed: {seed} (set CAIS_CHAOS_SEED to reproduce)");
    seed
}

/// The TAXII client converges to the full object set even when the
/// server kills the connection on every third request frame.
#[test]
fn taxii_client_converges_against_a_frame_dropping_server() {
    let seed = chaos_seed();
    let mut server = TaxiiServer::new("chaos point");
    let id = server.add_collection(Collection::new("iocs", "chaos collection"));
    // 250 objects force three pages at the client's limit of 100, so
    // the walk spans enough frames for the schedule to fire mid-fetch.
    // Batched with distinct timestamps to keep pagination watermarks
    // meaningful.
    for batch in 0..5 {
        server.handle(Request::AddObjects {
            collection: id,
            objects: (0..50)
                .map(|i| serde_json::json!({ "type": "indicator", "b": batch, "i": i }))
                .collect(),
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let plan = FaultPlan::new(seed).every_nth("taxii.frame", 3, FaultKind::Error);
    let addr = server
        .serve_chaos("127.0.0.1:0", plan.clone(), "taxii.frame")
        .expect("bind chaos server");

    let registry = Registry::new();
    let mut client =
        ResilientTaxiiClient::new(addr, RetryPolicy::fast(6), BreakerConfig::disabled(), seed);
    client.instrument(&registry);

    assert_eq!(
        client.discovery(&ThreadSleeper).expect("discovery"),
        "chaos point",
        "seed {seed}"
    );
    let objects = client
        .all_objects(&id, &ThreadSleeper)
        .expect("all_objects");
    assert_eq!(objects.len(), 250, "seed {seed}");
    assert!(client.retries() > 0, "seed {seed}: no fault ever fired");
    let counters = registry.snapshot().counters;
    assert!(counters["taxii_retries_total"] > 0, "seed {seed}");
    assert!(plan.total_injected() > 0, "seed {seed}");
}

/// Resilient MISP push against scheduled ack loss: the transfer
/// converges, re-deliveries are confirmed rather than re-inserted, and
/// the target ends with zero duplicate events.
#[test]
fn misp_sync_survives_ack_loss_without_duplicates() {
    let seed = chaos_seed();
    let source = MispApi::new("chaos-src");
    for i in 0..30 {
        let mut event = MispEvent::new(format!("chaos intel {i}"));
        event.distribution = Distribution::AllCommunities;
        let id = source.add_event(event).expect("add");
        source.publish_event(id).expect("publish");
    }
    let target = MispApi::new("chaos-dst");
    // Every second delivery attempt is applied but un-acked.
    let plan = FaultPlan::new(seed).every_nth("misp.push", 2, FaultKind::AckLost);
    let policy = RetryPolicy::fast(4);
    let sleeper = RecordingSleeper::default();

    let mut redelivered = 0;
    let mut passes = 0;
    loop {
        let report = push_resilient(
            &source,
            &target,
            &plan,
            "misp.push",
            &policy,
            &sleeper,
            seed,
        );
        redelivered += report.redelivered;
        passes += 1;
        if report.failed == 0 {
            break;
        }
        assert!(
            passes < 10,
            "seed {seed}: no convergence after {passes} passes"
        );
    }
    assert_eq!(target.store().len(), 30, "seed {seed}");
    assert!(redelivered > 0, "seed {seed}: ack loss never exercised");
    // Zero duplicates: every UUID appears exactly once on the target.
    let mut uuids: Vec<_> = target
        .store()
        .snapshot()
        .iter()
        .map(|v| v.event.uuid)
        .collect();
    let total = uuids.len();
    uuids.sort_unstable();
    uuids.dedup();
    assert_eq!(
        uuids.len(),
        total,
        "seed {seed}: duplicate events on target"
    );
    // A follow-up pass is a no-op: everything is already present.
    let healthy = FaultPlan::healthy();
    let again = push_resilient(
        &source,
        &target,
        &healthy,
        "misp.push",
        &policy,
        &sleeper,
        seed,
    );
    assert_eq!(again.base.already_present, 30, "seed {seed}");
    assert_eq!(again.base.transferred, 0, "seed {seed}");
}

/// A dead TAXII peer trips the circuit breaker; the transition is
/// visible in the telemetry registry and further calls are denied
/// without touching the network.
#[test]
fn dead_peer_breaker_transitions_surface_in_telemetry() {
    let seed = chaos_seed();
    // Bind-then-drop leaves a port that refuses connections.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let registry = Registry::new();
    let mut client = ResilientTaxiiClient::new(
        addr,
        RetryPolicy::fast(2),
        BreakerConfig {
            trip_after: 2,
            cooldown_probes: 2,
            half_open_successes: 1,
        },
        seed,
    );
    client.instrument(&registry);

    assert!(client.discovery(&ThreadSleeper).is_err(), "seed {seed}");
    assert!(client.discovery(&ThreadSleeper).is_err(), "seed {seed}");
    assert!(client.is_quarantined(), "seed {seed}");
    let denied = client.discovery(&ThreadSleeper).unwrap_err();
    assert_eq!(
        denied.kind(),
        io::ErrorKind::ConnectionRefused,
        "seed {seed}"
    );
    let counters = registry.snapshot().counters;
    assert_eq!(counters["taxii_breaker_opened_total"], 1, "seed {seed}");
    assert!(counters["taxii_retries_total"] >= 2, "seed {seed}");
    assert_eq!(client.breaker_transitions().opened, 1, "seed {seed}");
}
