//! Chaos integration tests: the sharing channels (TAXII, MISP sync)
//! against servers that drop, corrupt and replay frames on a seeded
//! schedule.
//!
//! Every test derives its fault schedule from `CAIS_CHAOS_SEED`
//! (default 42) and prints the seed up front, so a CI failure is
//! reproducible with `CAIS_CHAOS_SEED=<seed> cargo test --test chaos`.

use std::io;
use std::sync::Arc;

use cais::common::resilience::{
    BreakerConfig, Clock, FaultKind, FaultPlan, RecordingSleeper, RetryPolicy, ThreadSleeper,
    VirtualClock,
};
use cais::common::time::MILLIS_PER_DAY;
use cais::common::Timestamp;
use cais::decay::{BaseScorer, DecayEngine, DecayModel, RescoredEvent, SweepSummary};
use cais::misp::event::Distribution;
use cais::misp::sync::push_resilient;
use cais::misp::{MispApi, MispEvent, MispStore, Tag};
use cais::taxii::{Collection, Request, ResilientTaxiiClient, TaxiiServer};
use cais::telemetry::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn chaos_seed() -> u64 {
    let seed = std::env::var("CAIS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    eprintln!("chaos seed: {seed} (set CAIS_CHAOS_SEED to reproduce)");
    seed
}

/// The TAXII client converges to the full object set even when the
/// server kills the connection on every third request frame.
#[test]
fn taxii_client_converges_against_a_frame_dropping_server() {
    let seed = chaos_seed();
    let mut server = TaxiiServer::new("chaos point");
    let id = server.add_collection(Collection::new("iocs", "chaos collection"));
    // 250 objects force three pages at the client's limit of 100, so
    // the walk spans enough frames for the schedule to fire mid-fetch.
    // Batched with distinct timestamps to keep pagination watermarks
    // meaningful.
    for batch in 0..5 {
        server.handle(Request::AddObjects {
            collection: id,
            objects: (0..50)
                .map(|i| serde_json::json!({ "type": "indicator", "b": batch, "i": i }))
                .collect(),
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let plan = FaultPlan::new(seed).every_nth("taxii.frame", 3, FaultKind::Error);
    let addr = server
        .serve_chaos("127.0.0.1:0", plan.clone(), "taxii.frame")
        .expect("bind chaos server");

    let registry = Registry::new();
    let mut client =
        ResilientTaxiiClient::new(addr, RetryPolicy::fast(6), BreakerConfig::disabled(), seed);
    client.instrument(&registry);

    assert_eq!(
        client.discovery(&ThreadSleeper).expect("discovery"),
        "chaos point",
        "seed {seed}"
    );
    let objects = client
        .all_objects(&id, &ThreadSleeper)
        .expect("all_objects");
    assert_eq!(objects.len(), 250, "seed {seed}");
    assert!(client.retries() > 0, "seed {seed}: no fault ever fired");
    let counters = registry.snapshot().counters;
    assert!(counters["taxii_retries_total"] > 0, "seed {seed}");
    assert!(plan.total_injected() > 0, "seed {seed}");
}

/// Resilient MISP push against scheduled ack loss: the transfer
/// converges, re-deliveries are confirmed rather than re-inserted, and
/// the target ends with zero duplicate events.
#[test]
fn misp_sync_survives_ack_loss_without_duplicates() {
    let seed = chaos_seed();
    let source = MispApi::new("chaos-src");
    for i in 0..30 {
        let mut event = MispEvent::new(format!("chaos intel {i}"));
        event.distribution = Distribution::AllCommunities;
        let id = source.add_event(event).expect("add");
        source.publish_event(id).expect("publish");
    }
    let target = MispApi::new("chaos-dst");
    // Every second delivery attempt is applied but un-acked.
    let plan = FaultPlan::new(seed).every_nth("misp.push", 2, FaultKind::AckLost);
    let policy = RetryPolicy::fast(4);
    let sleeper = RecordingSleeper::default();

    let mut redelivered = 0;
    let mut passes = 0;
    loop {
        let report = push_resilient(
            &source,
            &target,
            &plan,
            "misp.push",
            &policy,
            &sleeper,
            seed,
        );
        redelivered += report.redelivered;
        passes += 1;
        if report.failed == 0 {
            break;
        }
        assert!(
            passes < 10,
            "seed {seed}: no convergence after {passes} passes"
        );
    }
    assert_eq!(target.store().len(), 30, "seed {seed}");
    assert!(redelivered > 0, "seed {seed}: ack loss never exercised");
    // Zero duplicates: every UUID appears exactly once on the target.
    let mut uuids: Vec<_> = target
        .store()
        .snapshot()
        .iter()
        .map(|v| v.event.uuid)
        .collect();
    let total = uuids.len();
    uuids.sort_unstable();
    uuids.dedup();
    assert_eq!(
        uuids.len(),
        total,
        "seed {seed}: duplicate events on target"
    );
    // A follow-up pass is a no-op: everything is already present.
    let healthy = FaultPlan::healthy();
    let again = push_resilient(
        &source,
        &target,
        &healthy,
        "misp.push",
        &policy,
        &sleeper,
        seed,
    );
    assert_eq!(again.base.already_present, 30, "seed {seed}");
    assert_eq!(again.base.transferred, 0, "seed {seed}");
}

/// Decay sweeps under a seeded random schedule of churn, sightings,
/// clock advances and sweeps are fully deterministic: two runs with
/// the same seed produce identical scores, flips and store state, and
/// at every step the incremental rescore matches the from-scratch
/// oracle.
#[test]
fn decay_sweep_is_deterministic_under_seeded_schedule() {
    let seed = chaos_seed();

    // Event uuids are random v4s, not part of the deterministic
    // surface: compare everything else.
    fn shape(scores: &[RescoredEvent]) -> Vec<(u64, f64, f64, bool)> {
        scores
            .iter()
            .map(|s| (s.event_id, s.base, s.score, s.expired))
            .collect()
    }

    /// Final scores, sweep summaries, and per-event store state
    /// `(id, published, tag count)`.
    type RunOutcome = (
        Vec<RescoredEvent>,
        Vec<SweepSummary>,
        Vec<(u64, bool, usize)>,
    );

    fn run(seed: u64) -> RunOutcome {
        let clock = VirtualClock::starting_at(Timestamp::from_unix_millis(40 * MILLIS_PER_DAY));
        let engine = DecayEngine::new(
            DecayModel::new(20.0, 1.0).with_threshold(1.0),
            BaseScorer::cais_default(),
            Arc::new(clock.clone()),
        );
        let store = MispStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let count = 12u64;
        for i in 0..count {
            let mut event = MispEvent::new(format!("chaos indicator {i}"));
            event.date = clock.now().add_days(-rng.gen_range(0i64..10));
            for predicate in ["reliability", "freshness", "corroboration"] {
                event.add_tag(Tag::machine(
                    "cais-conf",
                    predicate,
                    &rng.gen_range(1u8..6).to_string(),
                ));
            }
            let id = store.insert(event).expect("insert");
            store.publish(id).expect("publish");
        }

        let mut sweeps = Vec::new();
        for _ in 0..30 {
            let id = rng.gen_range(0..count) + 1;
            match rng.gen_range(0u8..4) {
                0 => store
                    .update(id, |event| event.info.push('!'))
                    .expect("churn"),
                1 => {
                    let uuid = store.get(id).expect("event").uuid;
                    let backdate = rng.gen_range(0i64..5);
                    engine.record_sighting(uuid, clock.now().add_days(-backdate));
                }
                2 => clock.advance_days(rng.gen_range(1i64..7)),
                _ => sweeps.push(engine.sweep(&store).expect("sweep")),
            }
            let (incremental, _) = engine.rescore(&store);
            assert_eq!(
                incremental,
                engine.score_from_scratch(&store),
                "seed {seed}: incremental diverged from the oracle"
            );
        }

        let (scores, _) = engine.rescore(&store);
        let state: Vec<(u64, bool, usize)> = store
            .snapshot()
            .iter()
            .map(|v| (v.event.id, v.event.published, v.event.tags.len()))
            .collect();
        (scores, sweeps, state)
    }

    let first = run(seed);
    let second = run(seed);
    assert_eq!(
        shape(&first.0),
        shape(&second.0),
        "seed {seed}: scores diverged"
    );
    assert_eq!(first.1, second.1, "seed {seed}: sweep summaries diverged");
    assert_eq!(first.2, second.2, "seed {seed}: store state diverged");
    assert!(!first.1.is_empty(), "seed {seed}: schedule never swept");
}

/// A dead TAXII peer trips the circuit breaker; the transition is
/// visible in the telemetry registry and further calls are denied
/// without touching the network.
#[test]
fn dead_peer_breaker_transitions_surface_in_telemetry() {
    let seed = chaos_seed();
    // Bind-then-drop leaves a port that refuses connections.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let registry = Registry::new();
    let mut client = ResilientTaxiiClient::new(
        addr,
        RetryPolicy::fast(2),
        BreakerConfig {
            trip_after: 2,
            cooldown_probes: 2,
            half_open_successes: 1,
        },
        seed,
    );
    client.instrument(&registry);

    assert!(client.discovery(&ThreadSleeper).is_err(), "seed {seed}");
    assert!(client.discovery(&ThreadSleeper).is_err(), "seed {seed}");
    assert!(client.is_quarantined(), "seed {seed}");
    let denied = client.discovery(&ThreadSleeper).unwrap_err();
    assert_eq!(
        denied.kind(),
        io::ErrorKind::ConnectionRefused,
        "seed {seed}"
    );
    let counters = registry.snapshot().counters;
    assert_eq!(counters["taxii_breaker_opened_total"], 1, "seed {seed}");
    assert!(counters["taxii_retries_total"] >= 2, "seed {seed}");
    assert_eq!(client.breaker_transitions().opened, 1, "seed {seed}");
}

/// A dead feed tripping its circuit breaker fires the flight recorder:
/// exactly one `breaker_trip` dump, naming the failing feed and
/// carrying the ingress spans of the rounds that led to the trip.
#[test]
fn breaker_trip_dumps_the_flight_recorder() {
    use cais::core::Platform;
    use cais::feeds::{FeedFormat, FlakySource, MemorySource, ResilienceConfig, ResilientSource};
    use cais::telemetry::FlightRecorder;

    let seed = chaos_seed();
    let dir = std::env::temp_dir().join(format!("cais-chaos-flight-{seed}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let mut platform = Platform::paper_use_case();
    let recorder = FlightRecorder::new(platform.tracer().clone(), &dir);
    platform.set_flight_recorder(&recorder);

    // One healthy feed and one that fails every fetch on the seeded
    // schedule; the default breaker trips after three failed rounds.
    let plan = FaultPlan::new(seed).always("feeds.dead", FaultKind::Error);
    let healthy = MemorySource::new(
        "healthy",
        FeedFormat::Csv,
        cais::feeds::ThreatCategory::CommandAndControl,
        "value,date\nalpha.evil.example,2018-06-01T00:00:00Z\n",
    );
    let dead = MemorySource::new(
        "dead-feed",
        FeedFormat::Csv,
        cais::feeds::ThreatCategory::CommandAndControl,
        "value,date\nnever-seen.evil.example,2018-06-01T00:00:00Z\n",
    );
    let config = ResilienceConfig::default();
    let mut sources = vec![
        ResilientSource::new(Box::new(healthy), &config, seed),
        ResilientSource::new(
            Box::new(FlakySource::scripted(dead, plan, "feeds.dead")),
            &config,
            seed,
        ),
    ];

    let mut rounds = 0;
    while recorder.dumps() == 0 {
        platform.ingest_from_sources(&mut sources, 1).unwrap();
        rounds += 1;
        assert!(rounds < 10, "seed {seed}: breaker never tripped");
    }
    assert!(sources[1].is_quarantined(), "seed {seed}");
    assert_eq!(recorder.dumps(), 1, "seed {seed}: one trip, one dump");

    // The dump path is deterministic (sequence-numbered, not
    // timestamped) and the document names the failing feed.
    let path = dir.join("flight-0000-breaker_trip.json");
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("dump written"))
            .expect("dump is JSON");
    assert_eq!(doc["reason"].as_str(), Some("breaker_trip"), "seed {seed}");
    assert_eq!(doc["detail"].as_str(), Some("dead-feed"), "seed {seed}");
    let ingress = doc["subsystems"]["ingress"]
        .as_array()
        .expect("ingress ring dumped");
    assert_eq!(
        ingress.len(),
        rounds - 1,
        "seed {seed}: the trip fires mid-poll, before the round's own span records"
    );
    for span in ingress {
        assert_eq!(span["name"].as_str(), Some("feed_poll"), "seed {seed}");
    }
    // The healthy feed's pipeline activity is captured alongside.
    assert!(
        doc["subsystems"]["pipeline"]
            .as_array()
            .is_some_and(|spans| !spans.is_empty()),
        "seed {seed}"
    );

    // Further quarantined rounds deny without re-tripping: no new dump.
    platform.ingest_from_sources(&mut sources, 1).unwrap();
    assert_eq!(recorder.dumps(), 1, "seed {seed}");
    std::fs::remove_dir_all(&dir).ok();
}
