//! Federation chaos: N real framed-TCP peers converging while the
//! wire drops, corrupts, truncates, replays and un-acks frames on a
//! seeded schedule.
//!
//! Every test derives its fault schedule from `CAIS_CHAOS_SEED`
//! (default 42) and prints the seed up front, so a CI failure is
//! reproducible with `CAIS_CHAOS_SEED=<seed> cargo test --test
//! federation_chaos`.

use cais::common::resilience::{FaultKind, FaultPlan};
use cais::common::{Timestamp, Uuid};
use cais::federation::{edge_site, FederationHarness, Tenant, Topology};
use cais::misp::event::Distribution;
use cais::misp::{AttributeCategory, MispAttribute, MispEvent};

fn chaos_seed() -> u64 {
    let seed = std::env::var("CAIS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    eprintln!("chaos seed: {seed} (set CAIS_CHAOS_SEED to reproduce)");
    seed
}

fn tenants(n: usize) -> Vec<Tenant> {
    (0..n)
        .map(|i| Tenant::new(format!("org-{i}"), Vec::<String>::new()))
        .collect()
}

/// Deterministic content (UUID and date derive from the label) so the
/// chaos run byte-matches its fault-free oracle.
fn broadcast_event(label: &str) -> MispEvent {
    let mut event = MispEvent::new(format!("intel {label}"));
    event.uuid = Uuid::new_v5(label);
    event.date = Timestamp::from_ymd_hms(2026, 8, 9, 0, 0, 0);
    event.distribution = Distribution::AllCommunities;
    let mut attribute = MispAttribute::new(
        "domain",
        AttributeCategory::NetworkActivity,
        format!("{label}.example"),
    );
    attribute.uuid = Uuid::new_v5(&format!("attr:{label}"));
    event.add_attribute(attribute);
    event
}

const EVENTS: usize = 3;
const PEERS: usize = 4;

fn seed_events(harness: &mut FederationHarness, label: &str) {
    for e in 0..EVENTS {
        harness
            .seed_event(e % PEERS, broadcast_event(&format!("{label}-ev-{e}")))
            .unwrap();
    }
}

/// The wire fault alphabet, rotated across edges so every kind lands
/// on real sockets somewhere.
const WIRE_KINDS: [FaultKind; 5] = [
    FaultKind::Error,
    FaultKind::Garbage,
    FaultKind::Truncate,
    FaultKind::Replay,
    FaultKind::AckLost,
];

/// Hub-spoke and mesh federations of real TCP endpoints converge to
/// the oracle fixpoint while every edge misbehaves 20% of the time —
/// with zero leaks and zero duplicates after replays and lost acks.
#[test]
fn tcp_federation_converges_under_wire_chaos() {
    let seed = chaos_seed();
    for topology in [Topology::HubSpoke, Topology::Mesh] {
        let mut faults = FaultPlan::new(seed);
        for (i, (src, dst)) in topology.edges(PEERS).into_iter().enumerate() {
            let site = edge_site(topology, src, dst);
            faults = faults.rate(&site, 0.2, WIRE_KINDS[i % WIRE_KINDS.len()]);
        }

        let label = format!("chaos-{seed}-{topology}");
        let mut chaos = FederationHarness::tcp(topology, tenants(PEERS), faults)
            .expect("bind federation peers");
        seed_events(&mut chaos, &label);
        let report = chaos.run_until_quiescent(96);
        assert!(
            report.converged,
            "{topology} did not converge under seed {seed}: {report:?}"
        );
        let injected: u64 = topology
            .edges(PEERS)
            .into_iter()
            .map(|(src, dst)| chaos.faults().injected(&edge_site(topology, src, dst)))
            .sum();
        assert!(
            injected > 0,
            "fault plan never fired — chaos test tested nothing"
        );

        // Zero leaks, zero duplicates.
        assert!(chaos.leaks().is_empty(), "leaks: {:?}", chaos.leaks());
        for peer in 0..PEERS {
            assert_eq!(chaos.stored_uuids(peer).len(), EVENTS);
            assert_eq!(chaos.peer(peer).api().store().len(), EVENTS);
        }

        // Byte-identical to the fault-free in-proc oracle, peer by
        // peer — the wire chaos changed nothing about the fixpoint.
        let mut oracle = FederationHarness::in_proc(topology, tenants(PEERS), FaultPlan::healthy());
        seed_events(&mut oracle, &label);
        assert!(oracle.run_until_quiescent(16).converged);
        assert_eq!(chaos.canonical_views(), oracle.canonical_views());
        assert!(chaos.views_identical());
        chaos.shutdown();
    }
}

/// A scripted ack-loss + replay storm on one edge: the re-deliveries
/// confirm idempotently — the hop downgrade applies once, the store
/// gains no duplicates, and the edge still converges.
#[test]
fn acklost_replay_storm_is_idempotent_on_the_wire() {
    let seed = chaos_seed();
    let topology = Topology::Ring;
    let site = edge_site(topology, 0, 1);
    let faults = FaultPlan::new(seed).script(
        &site,
        vec![
            Some(FaultKind::AckLost),
            Some(FaultKind::AckLost),
            Some(FaultKind::Replay),
            Some(FaultKind::AckLost),
            Some(FaultKind::Replay),
        ],
    );
    let mut harness =
        FederationHarness::tcp(topology, tenants(PEERS), faults).expect("bind federation peers");
    let mut event = broadcast_event(&format!("storm-{seed}"));
    event.distribution = Distribution::ConnectedCommunities;
    let uuid = harness.seed_event(0, event).unwrap();

    let report = harness.run_until_quiescent(32);
    assert!(report.converged, "storm edge never drained: {report:?}");

    // Peer 1 received the event over an edge that applied it several
    // times before an ack survived: exactly one copy, downgraded
    // exactly one hop.
    assert_eq!(harness.peer(1).api().store().len(), 1);
    let on_peer1 = harness
        .peer(1)
        .api()
        .store()
        .get_by_uuid(&uuid)
        .expect("delivered");
    assert_eq!(on_peer1.distribution, Distribution::CommunityOnly);
    // Second hop (peer 2) got the decayed copy; third hop pinned.
    assert_eq!(
        harness
            .peer(2)
            .api()
            .store()
            .get_by_uuid(&uuid)
            .expect("two hops")
            .distribution,
        Distribution::OrganizationOnly
    );
    assert!(!harness.stored_uuids(3).contains(&uuid));
    assert!(harness.leaks().is_empty());
    harness.shutdown();
}
