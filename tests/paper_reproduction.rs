//! Integration tests pinning every number the paper prints.

use cais::core::heuristics::{score, vulnerability, FeatureValue, HeuristicKind, WeightScheme};
use cais::core::EvaluationContext;
use cais::infra::inventory::Inventory;
use cais::infra::NodeId;

/// Table I: three heuristics over five features with static weights
/// P = (0.10, 0.25, 0.40, 0.15, 0.10).
#[test]
fn table1_threat_scores() {
    let weights = WeightScheme::fixed(vec![0.10, 0.25, 0.40, 0.15, 0.10]);
    let cases = [
        ([3, 4, 3, 1, 5], 3.15),
        ([5, 2, 2, 4, 0], 1.92),
        ([1, 1, 2, 3, 3], 1.90),
    ];
    for (values, expected) in cases {
        let ts = score::threat_score(&values.map(FeatureValue::scored), &weights);
        assert!(
            (ts.total() - expected).abs() < 1e-9,
            "X = {values:?}: got {}, paper says {expected}",
            ts.total()
        );
    }
}

/// Table II: the six selected heuristics and their feature sets.
#[test]
fn table2_heuristics_and_features() {
    assert_eq!(HeuristicKind::ALL.len(), 6);
    let vuln_features = cais::core::heuristics::feature_names(HeuristicKind::Vulnerability);
    for expected in [
        "operating_system",
        "source_diversity",
        "application",
        "vuln_app_in_alarm",
        "valid_from",
        "valid_until",
        "external_references",
        "cve",
    ] {
        assert!(vuln_features.contains(&expected), "{expected} missing");
    }
}

/// Table III: the four-node inventory plus the `linux` common keyword.
#[test]
fn table3_inventory() {
    let inventory = Inventory::paper_table3();
    assert_eq!(inventory.len(), 4);
    // The exact application sets of the table.
    let node1 = inventory.node(NodeId(1)).unwrap();
    assert_eq!(node1.name, "OwnCloud");
    assert_eq!(
        node1.applications,
        vec!["ubuntu", "owncloud", "ossec", "snort", "suricata", "nids", "hids"]
    );
    let node4 = inventory.node(NodeId(4)).unwrap();
    assert_eq!(
        node4.applications,
        vec![
            "debian",
            "apache",
            "apache storm",
            "apache zookeeper",
            "server"
        ]
    );
    assert_eq!(inventory.common_keywords(), ["linux"]);
}

/// Table IV/V + Section IV-B: the CVE-2017-9805 RCE IoC evaluates to
/// the printed feature vector and TS = 2.7406.
#[test]
fn table5_rce_threat_score() {
    let ctx = EvaluationContext::paper_use_case();
    let ioc = vulnerability::paper_rce_ioc();
    let ts = vulnerability::evaluate(&ioc, &ctx);

    // The printed Xi values.
    let xi: Vec<FeatureValue> = ts.breakdown().lines.iter().map(|l| l.value).collect();
    assert_eq!(
        xi,
        vec![
            FeatureValue::Scored(3),
            FeatureValue::Scored(1),
            FeatureValue::Scored(2),
            FeatureValue::Scored(1),
            FeatureValue::Scored(2),
            FeatureValue::Scored(1),
            FeatureValue::Empty,
            FeatureValue::Scored(5),
            FeatureValue::Scored(4),
        ]
    );
    // The printed Pi values (paper rounds to 4 decimals).
    let pi: Vec<f64> = ts.breakdown().lines.iter().map(|l| l.weight).collect();
    let printed = [
        0.0952, 0.0952, 0.1429, 0.0952, 0.0476, 0.0476, 0.0, 0.2738, 0.2024,
    ];
    for (got, want) in pi.iter().zip(printed) {
        assert!((got - want).abs() < 5e-5, "{got} vs printed {want}");
    }
    // Cp = 8/9 and the final score.
    assert!((ts.completeness() - 8.0 / 9.0).abs() < 1e-12);
    assert!((ts.total() - 2.7406).abs() < 1e-3, "TS = {}", ts.total());
    // "places the relevance of this IoC in the average position"
    assert_eq!(ts.priority_label(), "medium");
}

/// Section IV: the eIoC→rIoC reduction associates the RCE with node 4
/// (the only node running apache), and a Linux-keyword IoC with all
/// nodes.
#[test]
fn use_case_reduction_rules() {
    use cais::common::{Observable, ObservableKind};
    use cais::core::{ComposedIoc, Enricher, Reducer};
    use cais::feeds::{FeedRecord, ThreatCategory};
    use std::sync::Arc;

    let ctx = EvaluationContext::paper_use_case();
    let enricher = Enricher::new(ctx.clone());
    let reducer = Reducer::new(Arc::clone(&ctx.inventory));

    let make = |description: &str| {
        let record = FeedRecord::new(
            Observable::new(ObservableKind::Cve, "CVE-2017-9805"),
            ThreatCategory::VulnerabilityExploitation,
            "nvd-feed",
            ctx.now.add_days(-100),
        )
        .with_cve("CVE-2017-9805")
        .with_description(description);
        enricher.enrich(ComposedIoc::new(
            ThreatCategory::VulnerabilityExploitation,
            vec![record],
            ctx.now,
        ))
    };

    // Specific match → node 4 only.
    let rioc = reducer
        .reduce(&make("remote code execution in apache struts"))
        .expect("apache matches node 4");
    assert_eq!(rioc.nodes, vec![NodeId(4)]);
    assert!(!rioc.via_common_keyword);

    // Common keyword → all nodes.
    let rioc = reducer
        .reduce(&make("use-after-free in the linux kernel"))
        .expect("linux matches everything");
    assert_eq!(rioc.nodes.len(), 4);
    assert!(rioc.via_common_keyword);

    // No match → no rIoC ("the rIoC is not generated").
    assert!(reducer
        .reduce(&make("flaw in an appliance we do not own"))
        .is_none());
}

/// Score bounds of Section IV-C: 0 ≤ TS ≤ 5 over arbitrary evaluations.
#[test]
fn score_range_invariant() {
    let ctx = EvaluationContext::paper_use_case();
    // Sweep the fixture CVE database: every scored record stays in range.
    for record in ctx.cve_db.iter().take(300) {
        let mut builder = cais::stix::sdo::Vulnerability::builder(record.id.to_string());
        builder
            .created(record.published)
            .modified(record.published)
            .valid_from(record.published);
        for os in &record.affected_os {
            builder.operating_system(os);
        }
        for app in &record.affected_products {
            builder.affected_application(app);
        }
        let ts = vulnerability::evaluate(&builder.build(), &ctx);
        assert!(
            (0.0..=5.0).contains(&ts.total()),
            "{}: TS {} out of range",
            record.id,
            ts.total()
        );
    }
}
