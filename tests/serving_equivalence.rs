//! Proof that the multiplexed serving core answers **byte-identically**
//! to the historical thread-per-connection servers it replaced.
//!
//! Each suite serves the *same* state (one `TaxiiServer`, one frozen
//! `Registry`, one `Broker`) on both implementations at once and
//! compares raw response frames for the same request sequence —
//! including the `TRACE_FLAG` tagged-frame path, error responses and
//! the bus handshake/stream. Any divergence in framing, ordering or
//! serialization fails the diff, not a lossy JSON comparison.

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cais::bus::tcp::{BusServer, BusServerOptions};
use cais::bus::{Broker, Topic};
use cais::common::frame::{read_frame, write_frame, write_frame_traced, TraceHeader};
use cais::common::serve::{NoServeMetrics, ServeConfig};
use cais::taxii::{Collection, TaxiiServer};
use cais::telemetry::{labeled, Registry, TelemetryServer, Tracer};

/// One request/response exchange against `addr`; returns the raw
/// response frame.
fn roundtrip(addr: SocketAddr, request: &[u8], header: Option<TraceHeader>) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    write_frame_traced(&mut stream, header, request).expect("write");
    read_frame(&mut stream).expect("read")
}

/// Sends `request` to both servers and asserts the raw response frames
/// match byte for byte.
fn assert_equivalent(
    baseline: SocketAddr,
    core: SocketAddr,
    request: &[u8],
    header: Option<TraceHeader>,
    what: &str,
) {
    let expected = roundtrip(baseline, request, header);
    let actual = roundtrip(core, request, header);
    assert_eq!(expected, actual, "{what}: core response diverged");
}

#[test]
fn taxii_responses_match_thread_per_conn_baseline() {
    let mut server = TaxiiServer::new("equivalence fixture");
    let readable = server.add_collection(Collection::new("iocs", "indicators"));
    let readonly = server.add_collection(Collection::new("ro", "read only").read_only());
    let baseline = server
        .serve_thread_per_conn("127.0.0.1:0")
        .expect("baseline");
    let core = server
        .serve_on_core("127.0.0.1:0", ServeConfig::default(), NoServeMetrics)
        .expect("core");

    let add = serde_json::to_vec(&serde_json::json!({
        "op": "add-objects",
        "collection": readable,
        "objects": [{"type": "indicator", "value": "203.0.113.7"}],
    }))
    .unwrap();
    // The same AddObjects against shared state returns the same
    // deterministic `Accepted { stored }` from either endpoint.
    assert_equivalent(baseline, core.local_addr(), &add, None, "add_objects");

    let requests: Vec<(&str, Vec<u8>)> = vec![
        (
            "discovery",
            serde_json::to_vec(&serde_json::json!({"op": "discovery"})).unwrap(),
        ),
        (
            "collections",
            serde_json::to_vec(&serde_json::json!({"op": "collections"})).unwrap(),
        ),
        (
            "get_objects",
            serde_json::to_vec(&serde_json::json!({
                "op": "get-objects", "collection": readable, "limit": 10,
            }))
            .unwrap(),
        ),
        (
            "get_objects other collection",
            serde_json::to_vec(&serde_json::json!({
                "op": "get-objects", "collection": readonly, "limit": 10,
            }))
            .unwrap(),
        ),
        (
            "get_objects unknown collection",
            serde_json::to_vec(&serde_json::json!({
                "op": "get-objects",
                "collection": "99999999-9999-4999-8999-999999999999",
                "limit": 10,
            }))
            .unwrap(),
        ),
        ("malformed request", b"{not json".to_vec()),
    ];
    for (what, request) in &requests {
        assert_equivalent(baseline, core.local_addr(), request, None, what);
    }

    // The PR 7 trace path: a TRACE_FLAG-tagged request frame gets the
    // same (untagged) response bytes from both implementations.
    let header = TraceHeader {
        trace_id: 0xabad_cafe_d00d_f00d,
        span_id: 0x0123_4567_89ab_cdef,
    };
    let get = serde_json::to_vec(&serde_json::json!({
        "op": "get-objects", "collection": readable, "limit": 10,
    }))
    .unwrap();
    assert_equivalent(
        baseline,
        core.local_addr(),
        &get,
        Some(header),
        "traced get_objects",
    );
    core.shutdown();
}

#[test]
fn telemetry_scrapes_match_thread_per_conn_baseline() {
    // A frozen registry + tracer: neither server self-instruments, so
    // every scrape must serialize exactly this state.
    let registry = Registry::new();
    registry.counter("hits_total").add(5);
    registry.gauge("queue_depth").set(-3);
    registry
        .histogram(&labeled("stage_nanos", &[("stage", "dedup")]))
        .record(12_345);
    let tracer = Tracer::new();
    {
        let root = tracer.root("ingress", "feed_poll");
        let _child = tracer.child(root.context(), "pipeline", "ingest_round");
    }
    let baseline = TelemetryServer::bind_thread_per_conn(
        registry.clone(),
        Some(tracer.clone()),
        "127.0.0.1:0",
    )
    .expect("baseline");
    let core = TelemetryServer::bind_on_core(
        registry,
        Some(tracer),
        "127.0.0.1:0",
        ServeConfig::default(),
        NoServeMetrics,
    )
    .expect("core");

    for command in ["prometheus", "json", "trace", "trace_chrome", "trace_jsonl"] {
        let request = serde_json::to_vec(command).unwrap();
        assert_equivalent(
            baseline.local_addr(),
            core.local_addr(),
            &request,
            None,
            command,
        );
    }
    // Unknown commands answer a JSON error frame on both.
    let bogus = serde_json::to_vec("bogus").unwrap();
    assert_equivalent(
        baseline.local_addr(),
        core.local_addr(),
        &bogus,
        None,
        "unknown command",
    );
    // A non-JSON command frame closes both connections without a reply.
    for addr in [baseline.local_addr(), core.local_addr()] {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write_frame(&mut stream, b"{not a json string").unwrap();
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "{addr}: bad command frame must close");
    }
    core.shutdown();
}

/// Reads frames from a raw bus-client stream until `count`
/// non-keepalive frames arrive (keepalive cadence is an internal
/// liveness detail, not protocol content).
fn read_messages(stream: &mut TcpStream, count: usize) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    while frames.len() < count {
        let frame = read_frame(stream).expect("stream frame");
        if !frame.is_empty() {
            frames.push(frame);
        }
    }
    frames
}

#[test]
fn bus_stream_matches_thread_per_conn_baseline() {
    let broker = Broker::new();
    let baseline =
        BusServer::bind_thread_per_conn(broker.clone(), "127.0.0.1:0", BusServerOptions::default())
            .expect("baseline");
    let (_core_server, core) = BusServer::bind_on_core(
        broker.clone(),
        "127.0.0.1:0",
        BusServerOptions::default(),
        ServeConfig::default(),
        NoServeMetrics,
    )
    .expect("core");

    let connect = |addr: SocketAddr| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        write_frame(&mut stream, &serde_json::to_vec("misp.#").unwrap()).expect("pattern");
        let ack = read_frame(&mut stream).expect("ack");
        assert!(ack.is_empty(), "handshake ack must be an empty frame");
        stream
    };
    let mut baseline_client = connect(baseline.local_addr());
    let mut core_client = connect(core.local_addr());
    // Both subscriptions are registered (ack received), so both see
    // every publish from here on.
    for i in 0..5 {
        broker.publish(
            Topic::new("misp.event.created"),
            serde_json::json!({"seq": i}),
        );
    }
    broker.publish(Topic::new("other.topic"), serde_json::json!("filtered out"));
    let expected = read_messages(&mut baseline_client, 5);
    let actual = read_messages(&mut core_client, 5);
    assert_eq!(expected, actual, "bus stream diverged");
    core.shutdown();
}
