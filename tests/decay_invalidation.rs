//! Regression tests for the decay → sharing invalidation contract: a
//! sweep's write-back (tag + publish flip → version and generation
//! bump) must drop every downstream byte cache. Covers the share
//! exporter's per-event and assembled caches and the TAXII server's
//! version-keyed page cache once the refreshed export is re-pushed.

use std::sync::Arc;

use cais::common::resilience::{Clock, VirtualClock};
use cais::common::time::MILLIS_PER_DAY;
use cais::common::Timestamp;
use cais::decay::{BaseScorer, DecayEngine, DecayModel};
use cais::misp::{MispEvent, MispStore, ShareExporter, Tag};
use cais::taxii::{Collection, TaxiiClient, TaxiiServer};

/// Day-40 clock, τ=30 model: advancing 31 days expires anything
/// unsighted.
fn engine_and_clock() -> (DecayEngine, VirtualClock) {
    let clock = VirtualClock::starting_at(Timestamp::from_unix_millis(40 * MILLIS_PER_DAY));
    let engine = DecayEngine::new(
        DecayModel::new(30.0, 1.0).with_threshold(1.0),
        BaseScorer::cais_default(),
        Arc::new(clock.clone()),
    );
    (engine, clock)
}

fn seeded_store(n: u64, clock: &VirtualClock) -> MispStore {
    let store = MispStore::new();
    for i in 0..n {
        let mut event = MispEvent::new(format!("indicator {i}"));
        event.date = clock.now();
        event.add_tag(Tag::machine("cais-conf", "reliability", "4"));
        event.add_tag(Tag::machine("cais-conf", "freshness", "4"));
        event.add_tag(Tag::machine("cais-conf", "corroboration", "4"));
        let id = store.insert(event).expect("insert");
        store.publish(id).expect("publish");
    }
    store
}

/// The share exporter serves sweep-flipped events fresh: the per-event
/// byte cache re-serializes them and the assembled `pull_published`
/// memo drops the expired events instead of replaying stale bytes.
#[test]
fn sweep_flips_invalidate_share_byte_caches() {
    let (engine, clock) = engine_and_clock();
    let store = seeded_store(3, &clock);
    let share = ShareExporter::default();

    // Warm both cache layers.
    let first = share
        .export_event_bytes(&store, 1, "misp-json")
        .unwrap()
        .unwrap();
    let again = share
        .export_event_bytes(&store, 1, "misp-json")
        .unwrap()
        .unwrap();
    assert!(Arc::ptr_eq(&first, &again), "warm per-event cache replays");
    let assembled = share.pull_published(&store, "misp-json").unwrap().unwrap();
    let warm = share.pull_published(&store, "misp-json").unwrap().unwrap();
    assert!(
        Arc::ptr_eq(&assembled, &warm),
        "warm assembled memo replays"
    );
    let baseline = share.stats();

    // Event 2 is re-sighted and survives; 1 and 3 decay out.
    clock.advance_days(31);
    engine.record_sighting(store.get(2).unwrap().uuid, clock.now());
    let summary = engine.sweep(&store).expect("sweep");
    assert_eq!(summary.flipped_expired, 2);

    // The flipped event re-serializes (version moved): new bytes that
    // carry the lifecycle tag, counted as a fresh miss.
    let flipped = share
        .export_event_bytes(&store, 1, "misp-json")
        .unwrap()
        .unwrap();
    assert!(
        !Arc::ptr_eq(&first, &flipped),
        "stale bytes replayed after flip"
    );
    let text = std::str::from_utf8(&flipped).unwrap();
    assert!(
        text.contains("decay-state"),
        "lifecycle tag missing: {text}"
    );
    assert!(text.contains("expired"));
    assert!(share.stats().misses > baseline.misses);

    // The assembled export rebuilds (generation moved) and now only
    // contains the surviving event.
    let pruned = share.pull_published(&store, "misp-json").unwrap().unwrap();
    assert!(!Arc::ptr_eq(&assembled, &pruned));
    let text = std::str::from_utf8(&pruned).unwrap();
    assert!(text.contains("indicator 1"), "survivor dropped from export");
    assert!(
        !text.contains("indicator 0"),
        "expired event still exported"
    );
    assert!(
        !text.contains("indicator 2"),
        "expired event still exported"
    );
    assert!(share.stats().assembled_misses > baseline.assembled_misses);
}

/// A MISP→TAXII bridge republished after a sweep must serve a fresh
/// page: the collection write bumps its version, so the version-keyed
/// page cache misses instead of replaying the pre-flip bytes.
#[test]
fn sweep_flips_invalidate_taxii_page_cache() {
    let (engine, clock) = engine_and_clock();
    let store = seeded_store(2, &clock);
    let share = ShareExporter::default();

    let (server, collection) = {
        let mut server = TaxiiServer::new("decay bridge");
        let id = server.add_collection(Collection::new("events", "decayed intel"));
        (server, id)
    };
    let addr = server.serve("127.0.0.1:0").expect("bind");
    let client = TaxiiClient::connect(addr).expect("connect");

    // Push every published event's export into the collection.
    let export = |share: &ShareExporter| -> Vec<serde_json::Value> {
        store
            .snapshot()
            .iter()
            .filter(|v| v.event.published)
            .map(|v| {
                let bytes = share
                    .export_event_bytes(&store, v.event.id, "misp-json")
                    .unwrap()
                    .unwrap();
                serde_json::from_slice(&bytes).unwrap()
            })
            .collect()
    };
    client
        .add_objects(&collection, export(&share))
        .expect("push");

    // Two identical pulls: the second replays cached page bytes.
    let cold = client.all_objects(&collection).expect("pull");
    assert_eq!(cold.len(), 2);
    client.all_objects(&collection).expect("pull");
    let (hits, misses) = server.page_cache_stats();
    assert!(hits >= 1, "second pull must hit the page cache");

    // Expire everything, re-export, re-push: the write bumps the
    // collection version, so the next pull is a miss with fresh bytes.
    clock.advance_days(31);
    let summary = engine.sweep(&store).expect("sweep");
    assert_eq!(summary.flipped_expired, 2);
    let refreshed: Vec<serde_json::Value> = store
        .snapshot()
        .iter()
        .map(|v| {
            let bytes = share
                .export_event_bytes(&store, v.event.id, "misp-json")
                .unwrap()
                .unwrap();
            serde_json::from_slice(&bytes).unwrap()
        })
        .collect();
    client.add_objects(&collection, refreshed).expect("re-push");

    let fresh = client.all_objects(&collection).expect("pull");
    let (_, misses_after) = server.page_cache_stats();
    assert!(
        misses_after > misses,
        "post-flip pull served stale page bytes"
    );
    let page = serde_json::to_string(&fresh).unwrap();
    assert!(
        page.contains("decay-state"),
        "fresh page lacks lifecycle tag"
    );
    assert!(page.contains("expired"));
}
