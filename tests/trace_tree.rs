//! Causal-tracing acceptance: a single TAXII pull of a feed-ingested
//! event yields **one connected span tree** — ingress → pipeline →
//! store → share → taxii — verified by walking parent ids over the
//! Perfetto (Chrome `trace_event`) export.

use cais::core::Platform;
use cais::feeds::{FeedFormat, MemorySource, ResilienceConfig, ResilientSource, ThreatCategory};
use cais::taxii::{Collection, TaxiiClient, TaxiiServer};
use cais::telemetry::chrome_trace_json;

/// One C2 feed with a domain the paper context's sightings know.
fn feed_source() -> MemorySource {
    MemorySource::new(
        "osint-c2",
        FeedFormat::Csv,
        ThreatCategory::CommandAndControl,
        "value,date\nalpha.evil.example,2018-06-01T00:00:00Z\n",
    )
}

#[test]
fn taxii_pull_of_an_ingested_event_is_one_connected_span_tree() {
    let mut platform = Platform::paper_use_case();
    let tracer = platform.tracer().clone();

    // Ingress: poll the feed through the resilient-source path, which
    // roots the trace, and run the full pipeline beneath it.
    let mut sources = vec![ResilientSource::new(
        Box::new(feed_source()),
        &ResilienceConfig::default(),
        7,
    )];
    let outcome = platform.ingest_from_sources(&mut sources, 1).unwrap();
    assert_eq!(outcome.delivered, 1);
    assert!(outcome.report.eiocs > 0);

    // Share: serialize the stored event through the export cache; the
    // share seam chains its span onto the event's trace link.
    let store = platform.misp().store();
    let event_id = 1;
    let bytes = platform
        .misp()
        .share()
        .export_event_bytes(store, event_id, "misp-json")
        .unwrap()
        .expect("misp-json is a builtin format");
    let doc: serde_json::Value = serde_json::from_slice(&bytes).unwrap();
    let object = doc.get("Event").cloned().unwrap();
    let uuid = object.get("uuid").and_then(|v| v.as_str()).unwrap();
    assert!(!uuid.is_empty());

    // TAXII: a sharing point on the same tracer serves the exported
    // event to a legacy (untraced) client.
    let mut server = TaxiiServer::new("trace point");
    let collection = server.add_collection(Collection::new("iocs", "traced intel"));
    server.set_tracer(&tracer);
    let addr = server.serve("127.0.0.1:0").unwrap();
    let client = TaxiiClient::connect(addr).unwrap();
    client.add_objects(&collection, vec![object]).unwrap();
    let envelope = client.objects(&collection, None).unwrap();
    assert_eq!(envelope.objects.len(), 1);

    // Walk the Perfetto export (not the in-memory rings): every event
    // carries trace_id/span_id/parent_id in its args.
    let exported = chrome_trace_json(&tracer.snapshot());
    let trace: serde_json::Value = serde_json::from_str(&exported).unwrap();
    let events = trace
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("chrome trace wraps traceEvents");
    let spans: Vec<(&str, &str, u64, u64, u64)> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
        .map(|e| {
            let args = e.get("args").unwrap();
            (
                e.get("name").and_then(|v| v.as_str()).unwrap(),
                e.get("cat").and_then(|v| v.as_str()).unwrap(),
                args.get("trace_id").and_then(|v| v.as_u64()).unwrap(),
                args.get("span_id").and_then(|v| v.as_u64()).unwrap(),
                args.get("parent_id").and_then(|v| v.as_u64()).unwrap(),
            )
        })
        .collect();

    let (_, _, root_trace, root_span, root_parent) = *spans
        .iter()
        .find(|(name, cat, ..)| *name == "feed_poll" && *cat == "ingress")
        .expect("the feed poll rooted an ingress span");
    assert_eq!(root_parent, 0, "the ingress span is the trace root");

    // The pull's taxii span belongs to the same trace…
    let (_, _, taxii_trace, _, taxii_parent) = *spans
        .iter()
        .find(|(name, cat, ..)| *name == "taxii_get_objects" && *cat == "taxii")
        .expect("the pull recorded a taxii span");
    assert_eq!(taxii_trace, root_trace, "the pull joined the ingress trace");

    // …and walking parent ids from it reaches the ingress root through
    // the share, store and pipeline layers: one connected tree.
    let mut visited = Vec::new();
    let mut cursor = taxii_parent;
    while cursor != 0 {
        let (_, cat, trace_id, span_id, parent_id) = *spans
            .iter()
            .find(|(.., span_id, _)| *span_id == cursor)
            .expect("parent id resolves inside the export");
        assert_eq!(trace_id, root_trace);
        visited.push(cat);
        if span_id == root_span {
            break;
        }
        cursor = parent_id;
    }
    for layer in ["share", "store", "pipeline", "ingress"] {
        assert!(
            visited.contains(&layer),
            "walk {visited:?} misses the {layer} layer"
        );
    }
    assert_eq!(*visited.last().unwrap(), "ingress", "walk ends at the root");
}

/// Every span of the ingest trace is reachable from the ingress root —
/// the tree has no orphans pointing at missing parents.
#[test]
fn ingest_trace_has_no_orphan_spans() {
    let mut platform = Platform::paper_use_case();
    let mut sources = vec![ResilientSource::new(
        Box::new(feed_source()),
        &ResilienceConfig::default(),
        7,
    )];
    platform.ingest_from_sources(&mut sources, 1).unwrap();

    let spans = platform.tracer().snapshot();
    let root = spans
        .iter()
        .find(|s| s.subsystem == "ingress")
        .expect("ingress root");
    let in_trace: Vec<_> = spans
        .iter()
        .filter(|s| s.trace_id == root.trace_id)
        .collect();
    assert!(in_trace.len() >= 3, "expected a multi-layer trace");
    for span in &in_trace {
        if span.span_id == root.span_id {
            continue;
        }
        assert!(
            in_trace.iter().any(|p| p.span_id == span.parent_id),
            "span {} ({}) has no recorded parent",
            span.name,
            span.subsystem
        );
    }
}
