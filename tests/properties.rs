//! Property-based tests over the core invariants.

use cais::common::{Timestamp, Uuid};
use cais::core::heuristics::{score, CriteriaPoints, FeatureValue, WeightScheme};
use proptest::prelude::*;

fn feature_values(max_len: usize) -> impl Strategy<Value = Vec<FeatureValue>> {
    prop::collection::vec(0u8..=5, 1..=max_len)
        .prop_map(|raw| raw.into_iter().map(FeatureValue::scored).collect())
}

proptest! {
    /// Eq. 1 with normalized weights always lands in 0 ≤ TS ≤ 5.
    #[test]
    fn threat_score_stays_in_range(values in feature_values(12)) {
        let n = values.len();
        let weights = WeightScheme::fixed(vec![1.0 / n as f64; n]);
        let ts = score::threat_score(&values, &weights);
        prop_assert!(ts.total() >= 0.0);
        prop_assert!(ts.total() <= 5.0 + 1e-9);
        prop_assert!(ts.completeness() >= 0.0 && ts.completeness() <= 1.0);
    }

    /// Criteria-derived weights always resolve to a distribution over
    /// the evaluated features (sum 1, or all-zero when nothing is
    /// evaluated).
    #[test]
    fn criteria_weights_form_distribution(
        raw in prop::collection::vec((0u8..=5, 1u32..20, 1u32..20, 1u32..20, 1u32..20), 1..10)
    ) {
        let values: Vec<FeatureValue> =
            raw.iter().map(|(x, ..)| FeatureValue::scored(*x)).collect();
        let points: Vec<CriteriaPoints> = raw
            .iter()
            .map(|(_, r, a, t, v)| CriteriaPoints::new(*r, *a, *t, *v))
            .collect();
        let scheme = WeightScheme::from_criteria(points);
        let weights = scheme.resolve(&values);
        let sum: f64 = weights.iter().sum();
        let any_evaluated = values.iter().any(|v| v.is_evaluated());
        if any_evaluated {
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        } else {
            prop_assert_eq!(sum, 0.0);
        }
        // Empty features never carry weight.
        for (w, v) in weights.iter().zip(&values) {
            if !v.is_evaluated() {
                prop_assert_eq!(*w, 0.0);
            }
        }
    }

    /// Raising any single feature value never lowers the score
    /// (monotonicity of Eq. 1 under fixed weights).
    #[test]
    fn threat_score_is_monotone(
        values in feature_values(8),
        index in 0usize..8,
    ) {
        let n = values.len();
        let index = index % n;
        let weights = WeightScheme::fixed(vec![1.0 / n as f64; n]);
        let base = score::threat_score(&values, &weights).total();
        let mut raised = values.clone();
        raised[index] = FeatureValue::Scored(5);
        let after = score::threat_score(&raised, &weights).total();
        prop_assert!(after + 1e-9 >= base, "raising x{index} lowered TS: {base} -> {after}");
    }

    /// Timestamps round-trip through RFC 3339 for four decades around
    /// the epoch of interest.
    #[test]
    fn timestamp_rfc3339_roundtrip(millis in -500_000_000_000i64..2_500_000_000_000i64) {
        let ts = Timestamp::from_unix_millis(millis);
        let text = ts.to_rfc3339();
        let back = Timestamp::parse_rfc3339(&text).unwrap();
        prop_assert_eq!(back, ts, "{}", text);
    }

    /// UUID parse/format round-trips for arbitrary random bytes.
    #[test]
    fn uuid_roundtrip(bytes in prop::array::uniform16(any::<u8>())) {
        let id = Uuid::from_random_bytes(bytes);
        let back: Uuid = id.to_string().parse().unwrap();
        prop_assert_eq!(back, id);
        prop_assert_eq!(id.version(), 4);
    }

    /// The deduplicator is idempotent: a second pass over the same data
    /// drops everything, and kept + dropped = seen.
    #[test]
    fn dedup_accounting(values in prop::collection::vec("[a-z]{3,8}", 1..50)) {
        use cais::core::collector::Deduplicator;
        use cais::common::{Observable, ObservableKind};
        use cais::feeds::{FeedRecord, ThreatCategory};

        let records: Vec<FeedRecord> = values
            .iter()
            .map(|v| {
                FeedRecord::new(
                    Observable::new(ObservableKind::Domain, format!("{v}.example")),
                    ThreatCategory::MalwareDomain,
                    "feed",
                    Timestamp::EPOCH,
                )
            })
            .collect();
        let mut dedup = Deduplicator::new();
        let kept = dedup.filter_batch(records.clone());
        let again = dedup.filter_batch(records.clone());
        prop_assert!(again.is_empty());
        let stats = dedup.stats();
        prop_assert_eq!(stats.kept + stats.dropped, stats.seen);
        prop_assert_eq!(stats.kept, kept.len());
        prop_assert_eq!(kept.len(), dedup.distinct());
    }

    /// The sharded deduplicator is observationally equal to the
    /// sequential one at any shard count, serially and in parallel:
    /// identical kept records (same order) and identical aggregated
    /// stats. Short random alphabets force heavy key collisions.
    #[test]
    fn sharded_dedup_matches_sequential(values in prop::collection::vec("[a-c]{1,3}", 1..60)) {
        use cais::core::collector::{Deduplicator, ShardedDeduplicator};
        use cais::common::{Observable, ObservableKind};
        use cais::feeds::{FeedRecord, ThreatCategory};

        let records: Vec<FeedRecord> = values
            .iter()
            .map(|v| {
                FeedRecord::new(
                    Observable::new(ObservableKind::Domain, format!("{v}.example")),
                    ThreatCategory::MalwareDomain,
                    "feed",
                    Timestamp::EPOCH,
                )
            })
            .collect();
        let mut sequential = Deduplicator::new();
        let expected = sequential.filter_batch(records.clone());
        for shards in [1usize, 2, 8] {
            let mut serial = ShardedDeduplicator::new(shards);
            let kept = serial.filter_batch(records.clone());
            prop_assert_eq!(&kept, &expected, "serial, {} shards", shards);
            prop_assert_eq!(serial.stats(), sequential.stats());
            prop_assert_eq!(serial.distinct(), sequential.distinct());

            let mut parallel = ShardedDeduplicator::new(shards);
            let kept = parallel.filter_batch_parallel(records.clone(), 4);
            prop_assert_eq!(&kept, &expected, "parallel, {} shards", shards);
            prop_assert_eq!(parallel.stats(), sequential.stats());
        }
    }

    /// Aggregation conserves records: every input record lands in
    /// exactly one cIoC of its own category.
    #[test]
    fn aggregation_conserves_records(
        domains in prop::collection::vec("[a-z]{3,8}", 1..40),
    ) {
        use cais::core::collector::aggregate_into_ciocs;
        use cais::common::{Observable, ObservableKind};
        use cais::feeds::{FeedRecord, ThreatCategory};

        let mut records: Vec<FeedRecord> = domains
            .iter()
            .map(|v| {
                FeedRecord::new(
                    Observable::new(ObservableKind::Domain, format!("{v}.example")),
                    ThreatCategory::MalwareDomain,
                    "feed",
                    Timestamp::EPOCH,
                )
            })
            .collect();
        records.dedup_by_key(|r| r.dedup_key());
        let total: usize = records.len();
        let ciocs = aggregate_into_ciocs(records, Timestamp::EPOCH);
        let clustered: usize = ciocs.iter().map(|c| c.records.len()).sum();
        prop_assert_eq!(clustered, total);
        for cioc in &ciocs {
            prop_assert!(cioc.records.iter().all(|r| r.category == cioc.category));
        }
    }

    /// CVSS v3 base scores stay within [0, 10] and severity bands agree
    /// with the score.
    #[test]
    fn cvss_score_and_severity_agree(
        av in 0usize..4, ac in 0usize..2, pr in 0usize..3,
        ui in 0usize..2, s in 0usize..2, c in 0usize..3,
        i in 0usize..3, a in 0usize..3,
    ) {
        use cais::cvss::v3::*;
        let vector = CvssV3 {
            attack_vector: [AttackVector::Network, AttackVector::Adjacent, AttackVector::Local, AttackVector::Physical][av],
            attack_complexity: [AttackComplexity::Low, AttackComplexity::High][ac],
            privileges_required: [PrivilegesRequired::None, PrivilegesRequired::Low, PrivilegesRequired::High][pr],
            user_interaction: [UserInteraction::None, UserInteraction::Required][ui],
            scope: [Scope::Unchanged, Scope::Changed][s],
            confidentiality: [Impact::None, Impact::Low, Impact::High][c],
            integrity: [Impact::None, Impact::Low, Impact::High][i],
            availability: [Impact::None, Impact::Low, Impact::High][a],
            exploit_maturity: ExploitMaturity::NotDefined,
            remediation_level: RemediationLevel::NotDefined,
            report_confidence: ReportConfidence::NotDefined,
        };
        let score = vector.base_score();
        prop_assert!((0.0..=10.0).contains(&score));
        prop_assert_eq!(vector.severity(), Severity::from_score(score));
        // Display → parse round-trip.
        let reparsed: CvssV3 = vector.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, vector);
    }

    /// Topic pattern `#` matches everything; a topic always matches its
    /// own literal pattern.
    #[test]
    fn topic_matching_laws(segments in prop::collection::vec("[a-z]{1,6}", 1..5)) {
        use cais::bus::{Topic, TopicPattern};
        let name = segments.join(".");
        let topic = Topic::new(&name);
        prop_assert!(TopicPattern::new("#").matches(&topic));
        prop_assert!(TopicPattern::new(&name).matches(&topic));
        let wild = segments
            .iter()
            .enumerate()
            .map(|(i, s)| if i == 0 { "*" } else { s.as_str() })
            .collect::<Vec<_>>()
            .join(".");
        prop_assert!(TopicPattern::new(&wild).matches(&topic));
    }
}

proptest! {
    /// The STIX pattern parser never panics, whatever bytes arrive —
    /// it either parses or returns a structured error.
    #[test]
    fn pattern_parser_never_panics(input in "\\PC{0,80}") {
        let _ = cais::stix::pattern::Pattern::parse(&input);
    }

    /// Structured random patterns parse and evaluate without panicking.
    #[test]
    fn generated_patterns_parse_and_evaluate(
        ty in "[a-z]{2,8}",
        path in "[a-z_]{2,8}",
        value in "[a-zA-Z0-9.]{1,12}",
        op in prop::sample::select(vec!["=", "!=", "<", ">", "<=", ">=", "LIKE"]),
    ) {
        use cais::stix::pattern::{Observation, Pattern};
        use cais::stix::sdo::CyberObservable;
        use cais::common::Timestamp;

        let source = format!("[{ty}-x:{path} {op} '{value}']");
        let pattern = Pattern::parse(&source).expect("generated pattern is valid");
        let hit = Observation::at(Timestamp::EPOCH).with_object(
            CyberObservable::new(format!("{ty}-x"), "v").with_property(&path, &value),
        );
        let miss = Observation::at(Timestamp::EPOCH)
            .with_object(CyberObservable::new("other-type", "v"));
        // Evaluation must be total; outcomes depend on the operator.
        let _ = pattern.matches(&[hit]);
        prop_assert!(!pattern.matches(&[miss]) || op == "!=");
    }

    /// The MISP JSON export/import round-trip preserves events, for
    /// arbitrary attribute content.
    #[test]
    fn misp_json_roundtrip(values in prop::collection::vec("[a-z0-9.]{4,20}", 1..8)) {
        use cais::misp::{export::misp_json, AttributeCategory, MispAttribute, MispEvent};
        let mut event = MispEvent::new("property event");
        for v in &values {
            event.add_attribute(MispAttribute::new(
                "text",
                AttributeCategory::Other,
                v.clone(),
            ));
        }
        let doc = misp_json::to_document(&event).unwrap();
        let back = misp_json::from_document(&doc).unwrap();
        prop_assert_eq!(back, event);
    }

    /// The feed plaintext parser never panics and only produces
    /// normalized observables.
    #[test]
    fn plaintext_parser_is_total(payload in "\\PC{0,200}") {
        use cais::feeds::{parse::plaintext, ThreatCategory};
        if let Ok(records) = plaintext::parse(&payload, "fuzz", ThreatCategory::Spam) {
            for record in records {
                prop_assert!(!record.observable.value().is_empty());
            }
        }
    }

    /// CSV record splitting is total and consistent with quoting.
    #[test]
    fn csv_parser_is_total(payload in "\\PC{0,200}") {
        use cais::feeds::{parse::csv, ThreatCategory};
        let _ = csv::parse(&payload, "fuzz", ThreatCategory::Spam);
    }

    /// Tuning profiles keep scores within bounds whatever the expert
    /// points are.
    #[test]
    fn tuning_preserves_score_bounds(
        points in prop::collection::vec((1u32..50, 1u32..50, 1u32..50, 1u32..50), 9),
        raw in prop::collection::vec(0u8..=5, 9),
    ) {
        use cais::core::heuristics::{
            feature_names, score::threat_score_named, tuning::TuningProfile, CriteriaPoints,
            FeatureValue, HeuristicKind,
        };
        let mut profile = TuningProfile::builtin();
        let names = feature_names(HeuristicKind::Vulnerability);
        for (name, (r, a, t, v)) in names.iter().zip(&points) {
            profile = profile.with_points(
                HeuristicKind::Vulnerability,
                name,
                CriteriaPoints::new(*r, *a, *t, *v),
            );
        }
        let values: Vec<FeatureValue> = raw.into_iter().map(FeatureValue::scored).collect();
        let ts = threat_score_named(
            &names,
            &values,
            &profile.weight_scheme(HeuristicKind::Vulnerability),
        );
        prop_assert!(ts.total() >= 0.0 && ts.total() <= 5.0 + 1e-9);
    }

    /// Telemetry histogram merge is associative and commutative, and a
    /// merged snapshot equals recording the concatenated samples — the
    /// property that lets parallel shard recorders fold into exact
    /// serial totals.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        a in prop::collection::vec(any::<u64>(), 0..20),
        b in prop::collection::vec(any::<u64>(), 0..20),
        c in prop::collection::vec(any::<u64>(), 0..20),
    ) {
        use cais::telemetry::HistogramSnapshot;

        let fold = |samples: &[u64]| {
            let mut h = HistogramSnapshot::default();
            for &s in samples {
                h.record(s);
            }
            h
        };
        let (ha, hb, hc) = (fold(&a), fold(&b), fold(&c));

        // Commutative: a ⊕ b == b ⊕ a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Merging equals recording the concatenation.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&ab_c, &fold(&all));
        prop_assert_eq!(ab_c.count as usize, all.len());
        prop_assert_eq!(ab_c.sum, all.iter().fold(0u64, |acc, &s| acc.wrapping_add(s)));
    }
}

proptest! {
    /// Graceful degradation under seeded fault injection: whatever
    /// subset of feeds is permanently dead and however many transient
    /// failures the rest throw (within the retry budget), ingestion
    /// through retries and breakers yields exactly the rIoC/eIoC output
    /// of a fault-free run over the healthy subset — serial and
    /// parallel alike.
    #[test]
    fn faulted_ingestion_matches_fault_free_healthy_subset(
        seed in 0u64..1_000,
        dead in prop::collection::vec(any::<bool>(), 4),
        transient in prop::collection::vec(0u64..=3, 4),
        workers in 1usize..5,
    ) {
        use cais::common::resilience::{FaultKind, FaultPlan};
        use cais::core::Platform;
        use cais::feeds::{
            FeedFormat, FlakySource, MemorySource, ResilienceConfig, ResilientSource,
            ThreatCategory,
        };

        // CSV with explicit timestamps: re-fetches parse into
        // byte-identical records, so output equality is exact.
        let csv = |feed: usize| {
            let mut payload = String::from("value,date\n");
            for i in 0..8 {
                payload.push_str(&format!(
                    "feed{feed}-{i}.evil.example,2018-05-{:02}T00:00:00Z\n",
                    i + 1
                ));
            }
            payload
        };
        let memory = |feed: usize| {
            MemorySource::new(
                format!("feed-{feed}"),
                FeedFormat::Csv,
                ThreatCategory::CommandAndControl,
                csv(feed),
            )
        };
        let site = |feed: usize| format!("feeds.feed-{feed}");

        let mut plan = FaultPlan::new(seed);
        for feed in 0..4 {
            if dead[feed] {
                plan = plan.always(&site(feed), FaultKind::Error);
            } else if transient[feed] > 0 {
                // Within the default budget of 4 attempts: recovers.
                plan = plan.fail_first(&site(feed), transient[feed], FaultKind::Error);
            }
        }
        let config = ResilienceConfig::default();
        let mut faulted: Vec<ResilientSource> = (0..4)
            .map(|feed| {
                ResilientSource::new(
                    Box::new(FlakySource::scripted(memory(feed), plan.clone(), site(feed))),
                    &config,
                    seed,
                )
            })
            .collect();
        let mut healthy: Vec<ResilientSource> = (0..4)
            .filter(|feed| !dead[*feed])
            .map(|feed| ResilientSource::new(Box::new(memory(feed)), &config, seed))
            .collect();

        let mut baseline = Platform::paper_use_case();
        let expected = baseline.ingest_from_sources(&mut healthy, 1).unwrap();
        let mut platform = Platform::paper_use_case();
        let outcome = platform.ingest_from_sources(&mut faulted, workers).unwrap();

        let dead_count = dead.iter().filter(|d| **d).count();
        prop_assert_eq!(outcome.delivered, 4 - dead_count, "seed={} workers={}", seed, workers);
        prop_assert_eq!(outcome.failed, dead_count, "seed={} workers={}", seed, workers);
        prop_assert!(
            outcome.report.same_counters(&expected.report),
            "seed={} workers={}:\n{:?}\nvs\n{:?}",
            seed, workers, outcome.report, expected.report
        );
        prop_assert_eq!(platform.eiocs(), baseline.eiocs(), "seed={} workers={}", seed, workers);
        prop_assert_eq!(platform.riocs(), baseline.riocs(), "seed={} workers={}", seed, workers);
    }

    /// Serial and parallel ingestion of the same workload produce
    /// identical telemetry counters — the observational-equivalence
    /// guarantee of the sharded pipeline (see
    /// `sharded_dedup_matches_sequential`), extended to the metrics
    /// registry. Wall times and queue-depth gauges are sampled, so only
    /// counters are compared.
    #[test]
    fn serial_and_parallel_ingestion_share_telemetry_counters(
        values in prop::collection::vec("[a-d]{1,3}", 1..30),
        workers in 1usize..5,
    ) {
        use cais::common::{Observable, ObservableKind};
        use cais::core::Platform;
        use cais::feeds::{FeedRecord, ThreatCategory};

        let records = |now: Timestamp| -> Vec<FeedRecord> {
            values
                .iter()
                .map(|v| {
                    FeedRecord::new(
                        Observable::new(ObservableKind::Domain, format!("{v}.example")),
                        ThreatCategory::MalwareDomain,
                        "feed",
                        now.add_days(-1),
                    )
                })
                .collect()
        };

        let mut serial = Platform::paper_use_case();
        let serial_report = serial
            .ingest_feed_records(records(serial.context().now))
            .unwrap();
        let mut parallel = Platform::paper_use_case();
        let parallel_report = parallel
            .ingest_feed_records_parallel(records(parallel.context().now), workers)
            .unwrap();

        prop_assert_eq!(serial_report.ciocs, parallel_report.ciocs);
        let serial_counters = serial.telemetry().snapshot().counters;
        let parallel_counters = parallel.telemetry().snapshot().counters;
        prop_assert_eq!(serial_counters, parallel_counters, "workers={}", workers);
    }
}
