//! Scale tests: the platform under volumes well past the paper's
//! worked example. These are correctness-under-load tests, not
//! benchmarks — they assert totals and bounded behaviour, with a loose
//! wall-clock ceiling so a pathological regression fails loudly.

use std::time::{Duration, Instant};

use cais::core::Platform;
use cais::dashboard::{render, DashboardState, DashboardStream};
use cais::feeds::synth::{SyntheticConfig, SyntheticFeedSet};
use cais::infra::inventory::Inventory;

#[test]
fn twenty_thousand_records_flow_through() {
    let mut platform = Platform::paper_use_case();
    let started = Instant::now();
    let mut total_in = 0;
    let mut total_dropped = 0;
    let mut total_eiocs = 0;
    // Four rounds of five feeds × 1000 records; seeds overlap so later
    // rounds are largely duplicates, as real re-fetches are.
    for round in 0..4u64 {
        let set = SyntheticFeedSet::generate(&SyntheticConfig {
            seed: round / 2, // rounds 0/1 and 2/3 share seeds
            feeds: 5,
            records_per_feed: 1_000,
            duplicate_rate: 0.3,
            overlap_rate: 0.3,
            base_time: platform.context().now.add_days(-20),
            ..SyntheticConfig::default()
        });
        let records = set.all_records();
        total_in += records.len();
        let report = platform.ingest_feed_records(records).expect("ingestion");
        total_dropped += report.duplicates_dropped;
        total_eiocs += report.eiocs;
    }
    assert_eq!(total_in, 20_000);
    // Re-fetched rounds must be recognized as duplicates.
    assert!(
        total_dropped > total_in / 3,
        "only {total_dropped} of {total_in} deduplicated"
    );
    assert_eq!(platform.eiocs().len(), total_eiocs);
    assert_eq!(platform.misp().store().len(), total_eiocs);
    // Every stored event is scored within bounds.
    for eioc in platform.eiocs() {
        let score = eioc.score();
        assert!((0.0..=5.0).contains(&score));
    }
    assert!(
        started.elapsed() < Duration::from_secs(120),
        "pipeline took {:?}",
        started.elapsed()
    );
}

#[test]
fn parallel_ingestion_matches_sequential_at_fifty_thousand_records() {
    let workload = || {
        let set = SyntheticFeedSet::generate(&SyntheticConfig {
            seed: 99,
            feeds: 10,
            records_per_feed: 5_000,
            duplicate_rate: 0.4,
            overlap_rate: 0.3,
            base_time: Platform::paper_use_case().context().now.add_days(-20),
            ..SyntheticConfig::default()
        });
        set.all_records()
    };

    let mut sequential = Platform::paper_use_case();
    let records = workload();
    assert_eq!(records.len(), 50_000);
    let started = Instant::now();
    let seq_report = sequential.ingest_feed_records(records).expect("sequential");
    let seq_elapsed = started.elapsed();

    let mut parallel = Platform::paper_use_case();
    let started = Instant::now();
    let par_report = parallel
        .ingest_feed_records_parallel(workload(), 4)
        .expect("parallel");
    let par_elapsed = started.elapsed();

    // The determinism contract: identical counters at every stage and
    // identical eIoC/rIoC sets, in order.
    assert!(
        seq_report.same_counters(&par_report),
        "counter mismatch:\n{seq_report:?}\nvs\n{par_report:?}"
    );
    assert_eq!(sequential.eiocs(), parallel.eiocs());
    assert_eq!(sequential.riocs(), parallel.riocs());
    assert_eq!(
        sequential.misp().store().len(),
        parallel.misp().store().len()
    );
    // The per-stage ledger accounts for the whole batch.
    let stages = par_report.stages;
    assert_eq!(stages.dedup.records_in, 50_000);
    assert_eq!(stages.dedup.dropped, par_report.duplicates_dropped);
    assert_eq!(stages.enrich.records_out, par_report.eiocs);

    let speedup = seq_elapsed.as_secs_f64() / par_elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "50k-record ingest: sequential {seq_elapsed:?}, parallel(4) {par_elapsed:?}, speedup {speedup:.2}x"
    );
}

#[test]
fn indexed_reduction_keeps_serial_and_parallel_identical() {
    use cais::core::{EvaluationContext, PlatformConfig};
    use cais::cvss::CveDatabase;
    use cais::infra::inventory::NodeType;
    use cais::infra::SightingStore;
    use std::sync::Arc;

    // A fleet big enough that the match index does real work, sharing
    // a product pool with the record descriptions below.
    const POOL: &[&str] = &[
        "apache struts",
        "gitlab",
        "owncloud",
        "nginx",
        "redis",
        "postgresql",
        "jenkins",
        "tomcat",
        "elasticsearch",
        "suricata",
        "openssl",
        "docker engine",
    ];
    let mut builder = Inventory::builder();
    for i in 0..300usize {
        let mut node = builder.node(format!("fleet-{i}"), NodeType::Server, "ubuntu");
        for k in 0..5 {
            node.application(POOL[(i * 5 + k * 7) % POOL.len()]);
        }
    }
    builder.common_keyword("linux");
    let inventory = Arc::new(builder.build());

    let now = cais::common::Timestamp::from_ymd_hms(2018, 6, 1, 0, 0, 0);
    let ctx = EvaluationContext::new(
        inventory,
        Arc::new(CveDatabase::synthetic(0, 50)),
        Arc::new(SightingStore::new()),
        now,
    );
    let platform = || Platform::new(PlatformConfig::default(), ctx.clone());

    // Every record names a pool product (so reduction fires against
    // the index), with a unique leading token to avoid family
    // clustering; a slice mentions only the common keyword.
    let records: Vec<cais::feeds::FeedRecord> = (0..4_000usize)
        .map(|i| {
            let description = if i % 17 == 0 {
                format!("advisory{i} privilege escalation in linux hosts")
            } else {
                format!(
                    "advisory{i} exploitation of {} observed",
                    POOL[i % POOL.len()]
                )
            };
            cais::feeds::FeedRecord::new(
                cais::common::Observable::new(
                    cais::common::ObservableKind::Url,
                    // Unique apex per record: a shared apex (or family
                    // word) would correlate the whole burst into one
                    // cluster.
                    format!("https://osint{i}.example/adv"),
                ),
                cais::feeds::ThreatCategory::VulnerabilityExploitation,
                "scale-feed",
                now.add_days(-3),
            )
            .with_description(description)
        })
        .collect();

    let mut serial = platform();
    let serial_report = serial.ingest_feed_records(records.clone()).expect("serial");
    let mut parallel = platform();
    let parallel_report = parallel
        .ingest_feed_records_parallel(records, 4)
        .expect("parallel");

    assert!(
        serial_report.same_counters(&parallel_report),
        "counter mismatch:\n{serial_report:?}\nvs\n{parallel_report:?}"
    );
    assert!(serial_report.riocs > 0, "workload never reduced");
    // rIoC output — node sets, common-keyword flags, ordering — is
    // identical with the match index and memos active on both paths.
    assert_eq!(serial.riocs(), parallel.riocs());
    assert!(serial.riocs().iter().any(|r| r.via_common_keyword));
    assert!(serial.riocs().iter().any(|r| !r.via_common_keyword));

    // Both paths built the index exactly once and leaned on the memo.
    for p in [&serial, &parallel] {
        let stats = p.reduce_cache_stats();
        assert_eq!(stats.index_rebuilds, 1);
        assert!(
            stats.match_memo_hits > stats.match_memo_misses,
            "memo ineffective: {stats:?}"
        );
    }
}

#[test]
fn faulted_feeds_recover_and_match_fault_free_ingestion() {
    use cais::common::resilience::{FaultKind, FaultPlan};
    use cais::feeds::synth::SyntheticFeed;
    use cais::feeds::{FeedFormat, FlakySource, MemorySource, ResilienceConfig, ResilientSource};

    // CSV only: timestamps ride the payload, so every fetch parses
    // into byte-identical records and output equality is exact.
    let set = SyntheticFeedSet::generate(&SyntheticConfig {
        seed: 7,
        feeds: 6,
        records_per_feed: 400,
        duplicate_rate: 0.2,
        overlap_rate: 0.3,
        formats: vec![FeedFormat::Csv],
        base_time: Platform::paper_use_case().context().now.add_days(-20),
        ..SyntheticConfig::default()
    });
    let memory = |feed: &SyntheticFeed| {
        MemorySource::new(&feed.name, feed.format, feed.category, &feed.payload)
    };
    let site = |feed: &SyntheticFeed| format!("feeds.{}", feed.name);
    let config = ResilienceConfig::default();

    // Fault-free baseline: all six feeds healthy.
    let mut healthy: Vec<ResilientSource> = set
        .feeds
        .iter()
        .map(|feed| ResilientSource::new(Box::new(memory(feed)), &config, 7))
        .collect();
    let mut baseline = Platform::paper_use_case();
    let expected = baseline
        .ingest_from_sources(&mut healthy, 1)
        .expect("baseline");
    assert_eq!(expected.delivered, 6);
    assert!(!baseline.riocs().is_empty() || !baseline.eiocs().is_empty());

    // Three of six feeds fail transiently (twice each, within the
    // default budget of 4 attempts): full recovery, identical output,
    // serial == parallel.
    for workers in [1usize, 4] {
        let mut plan = FaultPlan::new(7);
        for feed in [0, 2, 4] {
            plan = plan.fail_first(&site(&set.feeds[feed]), 2, FaultKind::Error);
        }
        let mut sources: Vec<ResilientSource> = set
            .feeds
            .iter()
            .map(|feed| {
                ResilientSource::new(
                    Box::new(FlakySource::scripted(
                        memory(feed),
                        plan.clone(),
                        site(feed),
                    )),
                    &config,
                    7,
                )
            })
            .collect();
        let mut platform = Platform::paper_use_case();
        let outcome = platform
            .ingest_from_sources(&mut sources, workers)
            .expect("faulted round");
        assert_eq!(outcome.delivered, 6, "{workers} workers");
        assert_eq!(outcome.failed, 0, "{workers} workers");
        assert_eq!(outcome.retries, 6, "{workers} workers"); // 2 × 3 feeds
        assert!(
            outcome.report.same_counters(&expected.report),
            "{workers} workers:\n{:?}\nvs\n{:?}",
            outcome.report,
            expected.report
        );
        assert_eq!(platform.eiocs(), baseline.eiocs(), "{workers} workers");
        assert_eq!(platform.riocs(), baseline.riocs(), "{workers} workers");
    }
}

#[test]
fn dead_feed_trips_the_breaker_and_healthy_feeds_still_deliver() {
    use cais::common::resilience::{FaultKind, FaultPlan};
    use cais::feeds::synth::SyntheticFeed;
    use cais::feeds::{FeedFormat, FlakySource, MemorySource, ResilienceConfig, ResilientSource};

    let set = SyntheticFeedSet::generate(&SyntheticConfig {
        seed: 11,
        feeds: 6,
        records_per_feed: 200,
        formats: vec![FeedFormat::Csv],
        base_time: Platform::paper_use_case().context().now.add_days(-20),
        ..SyntheticConfig::default()
    });
    let memory = |feed: &SyntheticFeed| {
        MemorySource::new(&feed.name, feed.format, feed.category, &feed.payload)
    };
    let config = ResilienceConfig::default();

    // Baseline: the five surviving feeds, fault-free.
    let mut healthy: Vec<ResilientSource> = set.feeds[..5]
        .iter()
        .map(|feed| ResilientSource::new(Box::new(memory(feed)), &config, 11))
        .collect();
    let mut baseline = Platform::paper_use_case();
    let expected = baseline
        .ingest_from_sources(&mut healthy, 1)
        .expect("baseline");

    // Feed 5 is permanently dead.
    let dead_site = format!("feeds.{}", set.feeds[5].name);
    let plan = FaultPlan::new(11).always(&dead_site, FaultKind::Error);
    let mut sources: Vec<ResilientSource> = set
        .feeds
        .iter()
        .enumerate()
        .map(|(i, feed)| {
            let source: Box<dyn cais::feeds::FeedSource> = if i == 5 {
                Box::new(FlakySource::scripted(
                    memory(feed),
                    plan.clone(),
                    &dead_site,
                ))
            } else {
                Box::new(memory(feed))
            };
            ResilientSource::new(source, &config, 11)
        })
        .collect();

    let mut platform = Platform::paper_use_case();
    let outcome = platform
        .ingest_from_sources(&mut sources, 4)
        .expect("first round");
    assert_eq!(outcome.delivered, 5);
    assert_eq!(outcome.failed, 1);
    // The healthy feeds' output is exactly the fault-free baseline.
    assert!(
        outcome.report.same_counters(&expected.report),
        "{:?}\nvs\n{:?}",
        outcome.report,
        expected.report
    );
    assert_eq!(platform.riocs(), baseline.riocs());
    assert_eq!(platform.eiocs(), baseline.eiocs());

    // Two more all-duplicate rounds: the third consecutive failure
    // trips the breaker…
    for _ in 0..2 {
        let outcome = platform
            .ingest_from_sources(&mut sources, 4)
            .expect("repeat round");
        assert_eq!(outcome.failed, 1);
    }
    assert!(sources[5].is_quarantined());
    assert_eq!(sources[5].breaker_transitions().opened, 1);
    // …and the next round skips the dead feed without spending retries
    // on it, while output stays exactly the baseline's.
    let outcome = platform
        .ingest_from_sources(&mut sources, 4)
        .expect("quarantined round");
    assert_eq!(outcome.quarantined, 1);
    assert_eq!(outcome.delivered, 5);
    assert_eq!(platform.riocs(), baseline.riocs());
}

#[test]
fn dashboard_renders_thousands_of_updates() {
    let mut platform = Platform::paper_use_case();
    let mut stream = DashboardStream::attach(
        DashboardState::new(Inventory::paper_table3()),
        platform.broker(),
    );
    // A burst of advisories that all reduce onto the inventory.
    let now = platform.context().now;
    let records: Vec<cais::feeds::FeedRecord> = (0..2_000)
        .map(|i| {
            cais::feeds::FeedRecord::new(
                cais::common::Observable::new(
                    cais::common::ObservableKind::Domain,
                    format!("c2.evil{i}.example"),
                ),
                cais::feeds::ThreatCategory::CommandAndControl,
                "feed",
                now.add_days(-1),
            )
            // Each description names an inventory app so reduction
            // fires; the leading word is unique per record so the
            // family-correlation handle does not collapse the burst
            // into one cluster.
            .with_description(format!("campaign{i} beacon targeting gitlab instance"))
        })
        .collect();
    let report = platform.ingest_feed_records(records).expect("ingestion");
    assert!(report.riocs > 0);
    let applied = stream.pump();
    assert_eq!(applied, report.riocs);

    let started = Instant::now();
    let ascii = render::ascii(stream.state());
    let html = render::html(stream.state());
    let json = render::json(stream.state());
    assert!(ascii.len() > 1_000);
    assert!(html.len() > 1_000);
    assert!(json["rioc_total"].as_u64().unwrap() as usize == report.riocs);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "rendering took {:?}",
        started.elapsed()
    );
}

#[test]
fn bus_sustains_wide_fanout() {
    let broker = cais::bus::Broker::new();
    let subscriptions: Vec<_> = (0..64).map(|_| broker.subscribe("load.#")).collect();
    for i in 0..1_000 {
        broker.publish(
            cais::bus::Topic::new(format!("load.item.{}", i % 10)),
            serde_json::json!({ "i": i }),
        );
    }
    for subscription in &subscriptions {
        assert_eq!(subscription.queued(), 1_000);
    }
    // Drain one fully; the others are unaffected.
    assert_eq!(subscriptions[0].drain().len(), 1_000);
    assert_eq!(subscriptions[1].queued(), 1_000);
}

#[test]
fn misp_store_handles_bulk_search() {
    use cais::misp::{AttributeCategory, MispApi, MispAttribute, MispEvent};
    let api = MispApi::new("scale");
    for i in 0..3_000 {
        let mut event = MispEvent::new(format!("event {i}"));
        event.add_attribute(MispAttribute::new(
            "domain",
            AttributeCategory::NetworkActivity,
            format!("host-{i}.example"),
        ));
        if i % 10 == 0 {
            event.add_attribute(MispAttribute::new(
                "domain",
                AttributeCategory::NetworkActivity,
                "shared-c2.example",
            ));
        }
        api.add_event(event).expect("insert");
    }
    assert_eq!(api.store().len(), 3_000);
    // Value-index lookups stay exact at volume.
    assert_eq!(api.search_value("shared-c2.example").len(), 300);
    // Correlation across 300 events sharing one value.
    let any_shared = api.search_value("shared-c2.example")[0].event.id;
    assert_eq!(api.correlations(any_shared).len(), 299);
}
