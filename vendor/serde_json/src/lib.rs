//! Offline stand-in for the `serde_json` crate.
//!
//! Re-exports the vendored `serde` value model and adds the JSON text
//! layer: a recursive-descent parser ([`from_str`]/[`from_slice`]),
//! renderers ([`to_string`]/[`to_string_pretty`]/[`to_vec`]), value
//! conversions ([`to_value`]/[`from_value`]) and the [`json!`] macro.

use std::fmt;

pub use serde::value::{Map, Number, Value};

/// Error produced by any serde_json operation.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    /// Wraps an I/O error (mirrors `serde_json::Error::io`).
    pub fn io(err: std::io::Error) -> Error {
        Error {
            message: err.to_string(),
        }
    }

    fn msg(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::msg(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::msg(msg.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Propagates custom errors raised by manual `Serialize` impls.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    serde::ser::to_value(&value).map_err(|e| Error::msg(e.to_string()))
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns a message naming the first mismatch encountered.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T, Error> {
    serde::de::from_value(value).map_err(|e| Error::msg(e.to_string()))
}

/// Renders a value as compact JSON text.
///
/// # Errors
///
/// Propagates custom errors raised by manual `Serialize` impls.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(to_value(value)?.to_json_string())
}

/// Renders a value as two-space-indented JSON text.
///
/// # Errors
///
/// Propagates custom errors raised by manual `Serialize` impls.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(to_value(value)?.to_json_string_pretty())
}

/// Renders a value as compact JSON bytes.
///
/// # Errors
///
/// Propagates custom errors raised by manual `Serialize` impls.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

std::thread_local! {
    /// Scratch buffer shared by the writer-based renderers so hot
    /// export paths do not allocate a fresh `String` per value.
    static WRITE_SCRATCH: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
}

fn write_rendered<T, F>(value: &T, out: &mut dyn std::io::Write, render: F) -> Result<(), Error>
where
    T: serde::Serialize + ?Sized,
    F: FnOnce(&Value, &mut String),
{
    let value = to_value(value)?;
    WRITE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        render(&value, &mut buf);
        out.write_all(buf.as_bytes()).map_err(Error::io)
    })
}

/// Renders a value as compact JSON into an [`std::io::Write`] sink,
/// reusing a thread-local scratch buffer between calls.
///
/// # Errors
///
/// Propagates serialization errors and I/O failures from the sink.
pub fn to_writer<T: serde::Serialize + ?Sized>(
    out: &mut dyn std::io::Write,
    value: &T,
) -> Result<(), Error> {
    write_rendered(value, out, |v, buf| v.write_json_string(buf))
}

/// Renders a value as two-space-indented JSON into an
/// [`std::io::Write`] sink, reusing a thread-local scratch buffer.
///
/// # Errors
///
/// Propagates serialization errors and I/O failures from the sink.
pub fn to_writer_pretty<T: serde::Serialize + ?Sized>(
    out: &mut dyn std::io::Write,
    value: &T,
) -> Result<(), Error> {
    write_rendered(value, out, |v, buf| v.write_json_string_pretty(buf))
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns a positioned message on malformed JSON, or a mismatch
/// message if the shape does not fit `T`.
pub fn from_str<T: serde::de::DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    from_value(value)
}

/// Parses JSON bytes (UTF-8) into a typed value.
///
/// # Errors
///
/// Returns an error on invalid UTF-8 or malformed JSON.
pub fn from_slice<T: serde::de::DeserializeOwned>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|e| Error::msg(e.to_string()))?;
    from_str(text)
}

// ---- JSON text parser --------------------------------------------------

fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::msg(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low half must follow.
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?
                            };
                            out.push(ch);
                            // parse_hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return Err(Error::msg("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte aware).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|e| Error::msg(e.to_string()))?;
                    let ch = text.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|e| Error::msg(e.to_string()))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::msg(e.to_string()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(v)));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))?;
        Ok(Value::Number(Number::from(v)))
    }
}

// ---- json! macro -------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $crate::json_object_internal!(__map ($($tt)*));
        $crate::Value::Object(__map)
    }};
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut __vec: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_internal!(__vec ($($tt)*));
        $crate::Value::Array(__vec)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value must be serializable")
    };
}

/// Implementation detail of [`json!`]: object entry muncher.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_internal {
    ($map:ident ()) => {};
    ($map:ident ($key:literal : null $(, $($rest:tt)*)?)) => {
        $map.insert($key, $crate::Value::Null);
        $crate::json_object_internal!($map ($($($rest)*)?));
    };
    ($map:ident ($key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?)) => {
        $map.insert($key, $crate::json!({ $($inner)* }));
        $crate::json_object_internal!($map ($($($rest)*)?));
    };
    ($map:ident ($key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?)) => {
        $map.insert($key, $crate::json!([ $($inner)* ]));
        $crate::json_object_internal!($map ($($($rest)*)?));
    };
    ($map:ident ($key:literal : $value:expr , $($rest:tt)*)) => {
        $map.insert($key, $crate::json!($value));
        $crate::json_object_internal!($map ($($rest)*));
    };
    ($map:ident ($key:literal : $value:expr)) => {
        $map.insert($key, $crate::json!($value));
    };
}

/// Implementation detail of [`json!`]: array element muncher.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array_internal {
    ($vec:ident ()) => {};
    ($vec:ident (null $(, $($rest:tt)*)?)) => {
        $vec.push($crate::Value::Null);
        $crate::json_array_internal!($vec ($($($rest)*)?));
    };
    ($vec:ident ({ $($inner:tt)* } $(, $($rest:tt)*)?)) => {
        $vec.push($crate::json!({ $($inner)* }));
        $crate::json_array_internal!($vec ($($($rest)*)?));
    };
    ($vec:ident ([ $($inner:tt)* ] $(, $($rest:tt)*)?)) => {
        $vec.push($crate::json!([ $($inner)* ]));
        $crate::json_array_internal!($vec ($($($rest)*)?));
    };
    ($vec:ident ($value:expr , $($rest:tt)*)) => {
        $vec.push($crate::json!($value));
        $crate::json_array_internal!($vec ($($rest)*));
    };
    ($vec:ident ($value:expr)) => {
        $vec.push($crate::json!($value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a":[1,-2,3.5],"b":{"c":"d\n\"e\""},"t":true,"n":null}"#;
        let value: Value = from_str(text).unwrap();
        assert_eq!(value["a"][0], 1);
        assert_eq!(value["a"][1], -2);
        assert_eq!(value["a"][2], 3.5);
        assert_eq!(value["b"]["c"], "d\n\"e\"");
        assert_eq!(value["t"], true);
        assert!(value["n"].is_null());
        let rendered = to_string(&value).unwrap();
        let back: Value = from_str(&rendered).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn parse_unicode_escapes() {
        let value: Value = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(value, "aé😀b");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("07a").is_err());
        assert!(from_str::<Value>("{\"a\":1} x").is_err());
    }

    #[test]
    fn integers_preserved() {
        let value: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(value.as_u64(), Some(u64::MAX));
        let value: Value = from_str("-9223372036854775808").unwrap();
        assert_eq!(value.as_i64(), Some(i64::MIN));
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({"node": "gitlab", "severity": 3});
        assert_eq!(v["node"], "gitlab");
        assert_eq!(v["severity"], 3);
        let v = json!({ "outer": { "inner": [1, 2, {"x": null}] }, "n": 1 + 1 });
        assert_eq!(v["outer"]["inner"][2]["x"], Value::Null);
        assert_eq!(v["n"], 2);
        assert_eq!(json!(7), 7);
        assert_eq!(json!("just a string"), "just a string");
        assert_eq!(json!({}), Value::Object(Map::new()));
    }

    #[test]
    fn pretty_renders_indented() {
        let v = json!({"a": 1});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"), "{pretty}");
    }
}
