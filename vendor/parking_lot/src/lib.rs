//! Offline stand-in for the `parking_lot` crate, implemented over
//! `std::sync` primitives.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the `parking_lot` API the workspace uses:
//! [`Mutex`] and [`RwLock`] whose lock methods return guards directly
//! (no poisoning `Result`). Poisoned std locks are recovered from
//! transparently, matching `parking_lot`'s poison-free semantics.

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
