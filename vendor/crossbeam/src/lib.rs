//! Offline stand-in for the `crossbeam` crate: the `channel` module
//! with unbounded MPMC channels, implemented over a mutex-protected
//! queue and a condition variable.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the rejected message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing when every receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_back(msg);
            self.shared.available.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake blocked receivers so they observe disconnection.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            match queue.pop_front() {
                Some(msg) => Ok(msg),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or the timeout elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self
                    .shared
                    .available
                    .wait_timeout(queue, remaining)
                    .unwrap_or_else(|p| p.into_inner());
                queue = guard;
                if result.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_wakes_on_send() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                tx.send(7u8).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
            handle.join().unwrap();
        }
    }
}
