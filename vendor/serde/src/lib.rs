//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of serde the workspace uses, over a concrete
//! JSON-like data model ([`value::Value`]) instead of serde's visitor
//! architecture:
//!
//! - [`Serialize`] produces a [`value::Value`] through a [`Serializer`];
//! - [`Deserialize`] consumes a [`value::Value`] through a
//!   [`Deserializer`];
//! - the `derive` feature re-exports `serde_derive`'s hand-rolled
//!   `#[derive(Serialize, Deserialize)]`, which understands the
//!   container/field/variant attributes used in this repository
//!   (`rename`, `rename_all`, `default`, `skip_serializing_if`,
//!   `flatten`, `transparent`, `tag`, `untagged`, `try_from`/`into`).
//!
//! The shape of the public traits matches real serde closely enough
//! that the workspace's manual `impl Serialize`/`impl Deserialize`
//! blocks (which only use `serialize_str`, `String::deserialize` and
//! `de::Error::custom`) compile unchanged.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
