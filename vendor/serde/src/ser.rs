//! Serialization: [`Serialize`] types render themselves into a
//! [`Value`] through a [`Serializer`].

use std::fmt;

use crate::value::{Map, Number, Value};

/// Error raised by a [`Serializer`].
pub trait Error: Sized + fmt::Display {
    /// Builds an error from any displayable message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A sink for one serialized value.
///
/// Unlike real serde's 29-method visitor surface, everything funnels
/// through [`Serializer::serialize_value`]; the typed helpers exist so
/// manual impls written against the real API keep compiling.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes a fully-built value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::String(v.to_owned()))
    }

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Number(Number::from(v)))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Number(Number::from(v)))
    }

    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Number(Number::from(v)))
    }

    /// Serializes a unit/null.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// A value that can serialize itself.
pub trait Serialize {
    /// Feeds this value into the serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Error of the built-in [`ValueSerializer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerError(pub(crate) String);

impl fmt::Display for SerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SerError {}

impl Error for SerError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SerError(msg.to_string())
    }
}

/// The canonical serializer: produces the [`Value`] itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = SerError;

    fn serialize_value(self, value: Value) -> Result<Value, SerError> {
        Ok(value)
    }
}

/// Serializes any value to a [`Value`] tree.
///
/// # Errors
///
/// Propagates custom errors raised by manual `Serialize` impls; the
/// built-in impls never fail.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, SerError> {
    value.serialize(ValueSerializer)
}

// ---- Serialize impls for std types ------------------------------------

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

macro_rules! impl_serialize_num {
    ($($ty:ty),*) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Number(Number::from(*self)))
            }
        })*
    };
}
impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(inner) => inner.serialize(serializer),
            None => serializer.serialize_unit(),
        }
    }
}

fn collect_seq<'a, S, T, I>(serializer: S, items: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut out = Vec::new();
    for item in items {
        out.push(to_value(item).map_err(S::Error::custom)?);
    }
    serializer.serialize_value(Value::Array(out))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

/// Renders a map key: strings pass through, numbers stringify (the
/// same widening serde_json applies to integer-keyed maps).
fn key_string<K: Serialize>(key: &K) -> Result<String, SerError> {
    match to_value(key)? {
        Value::String(s) => Ok(s),
        Value::Number(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        _ => Err(SerError(
            "map keys must serialize to strings or numbers".to_owned(),
        )),
    }
}

fn collect_map<'a, S, K, V, I>(serializer: S, entries: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
{
    let mut out = Map::new();
    for (key, value) in entries {
        out.insert(
            key_string(key).map_err(S::Error::custom)?,
            to_value(value).map_err(S::Error::custom)?,
        );
    }
    serializer.serialize_value(Value::Object(out))
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_map(serializer, self.iter())
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Sort rendered keys for deterministic output, unlike the
        // hash order.
        let mut entries: Vec<(String, Value)> = Vec::with_capacity(self.len());
        for (key, value) in self {
            entries.push((
                key_string(key).map_err(S::Error::custom)?,
                to_value(value).map_err(S::Error::custom)?,
            ));
        }
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        let mut out = Map::new();
        for (key, value) in entries {
            out.insert(key, value);
        }
        serializer.serialize_value(Value::Object(out))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(to_value(&self.$idx).map_err(S::Error::custom)?,)+
                ];
                serializer.serialize_value(Value::Array(items))
            }
        })*
    };
}
impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_to_value() {
        assert_eq!(to_value(&true).unwrap(), Value::Bool(true));
        assert_eq!(to_value(&7u32).unwrap(), Value::from(7));
        assert_eq!(to_value(&-2i64).unwrap(), Value::from(-2i64));
        assert_eq!(to_value("hi").unwrap(), Value::from("hi"));
        assert_eq!(to_value(&Some(1u8)).unwrap(), Value::from(1));
        assert_eq!(to_value(&None::<u8>).unwrap(), Value::Null);
    }

    #[test]
    fn collections_to_value() {
        let v = to_value(&vec![1u8, 2]).unwrap();
        assert_eq!(v, Value::Array(vec![Value::from(1), Value::from(2)]));
        let mut map = std::collections::BTreeMap::new();
        map.insert("k".to_owned(), 5u8);
        assert_eq!(to_value(&map).unwrap()["k"], 5);
    }
}
