//! Deserialization: [`Deserialize`] types rebuild themselves from a
//! [`Value`] obtained through a [`Deserializer`].

use std::fmt;

use crate::value::Value;

/// Error raised by a [`Deserializer`].
pub trait Error: Sized + fmt::Display {
    /// Builds an error from any displayable message.
    fn custom<T: fmt::Display>(msg: T) -> Self;

    /// A required field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }
}

/// A source of one deserialized value.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Yields the complete value to rebuild from.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// A value that can rebuild itself from the data model.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds from the deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Error of the built-in [`ValueDeserializer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub(crate) String);

impl DeError {
    /// The error message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// The canonical deserializer: wraps an owned [`Value`].
#[derive(Debug, Clone)]
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn into_value(self) -> Result<Value, DeError> {
        Ok(self.0)
    }
}

/// Rebuilds a `T` from an owned value.
///
/// # Errors
///
/// Returns a message naming the first mismatch encountered.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, DeError> {
    T::deserialize(ValueDeserializer(value))
}

/// Rebuilds a `T` from a borrowed value (clones the subtree).
///
/// # Errors
///
/// Returns a message naming the first mismatch encountered.
pub fn from_value_ref<T: DeserializeOwned>(value: &Value) -> Result<T, DeError> {
    from_value(value.clone())
}

fn type_name(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

// ---- Deserialize impls for std types ----------------------------------

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.into_value()
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format_args!(
                "expected boolean, found {}",
                type_name(&other)
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::String(s) => Ok(s),
            other => Err(D::Error::custom(format_args!(
                "expected string, found {}",
                type_name(&other)
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected single-character string")),
        }
    }
}

macro_rules! impl_deserialize_uint {
    ($($ty:ty),*) => {
        $(impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.into_value()?;
                value
                    .as_u64()
                    .and_then(|v| <$ty>::try_from(v).ok())
                    .ok_or_else(|| D::Error::custom(format_args!(
                        concat!("expected ", stringify!($ty), ", found {}"),
                        type_name(&value)
                    )))
            }
        })*
    };
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($ty:ty),*) => {
        $(impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.into_value()?;
                value
                    .as_i64()
                    .and_then(|v| <$ty>::try_from(v).ok())
                    .ok_or_else(|| D::Error::custom(format_args!(
                        concat!("expected ", stringify!($ty), ", found {}"),
                        type_name(&value)
                    )))
            }
        })*
    };
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_deserialize_float {
    ($($ty:ty),*) => {
        $(impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.into_value()?;
                value.as_f64().map(|v| v as $ty).ok_or_else(|| {
                    D::Error::custom(format_args!(
                        concat!("expected ", stringify!($ty), ", found {}"),
                        type_name(&value)
                    ))
                })
            }
        })*
    };
}
impl_deserialize_float!(f32, f64);

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Null => Ok(None),
            value => from_value(value).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        from_value(value).map(Box::new).map_err(D::Error::custom)
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|item| from_value(item).map_err(D::Error::custom))
                .collect(),
            other => Err(D::Error::custom(format_args!(
                "expected array, found {}",
                type_name(&other)
            ))),
        }
    }
}

/// Rebuilds a map key from its rendered string: tried as a string
/// first, then as an integer (mirroring serde_json's integer keys).
fn key_from_string<K: DeserializeOwned>(key: String) -> Result<K, DeError> {
    match from_value(Value::String(key.clone())) {
        Ok(parsed) => Ok(parsed),
        Err(err) => {
            if let Ok(n) = key.parse::<u64>() {
                if let Ok(parsed) = from_value(Value::from(n)) {
                    return Ok(parsed);
                }
            }
            if let Ok(n) = key.parse::<i64>() {
                if let Ok(parsed) = from_value(Value::from(n)) {
                    return Ok(parsed);
                }
            }
            Err(err)
        }
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: DeserializeOwned + Ord,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Object(map) => map
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        key_from_string(k).map_err(D::Error::custom)?,
                        from_value(v).map_err(D::Error::custom)?,
                    ))
                })
                .collect(),
            other => Err(D::Error::custom(format_args!(
                "expected object, found {}",
                type_name(&other)
            ))),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::HashMap<K, V>
where
    K: DeserializeOwned + std::hash::Hash + Eq,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Object(map) => map
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        key_from_string(k).map_err(D::Error::custom)?,
                        from_value(v).map_err(D::Error::custom)?,
                    ))
                })
                .collect(),
            other => Err(D::Error::custom(format_args!(
                "expected object, found {}",
                type_name(&other)
            ))),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal: $($name:ident . $idx:tt),+))*) => {
        $(impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.into_value()? {
                    Value::Array(items) if items.len() == $len => {
                        let mut items = items.into_iter();
                        Ok(($(
                            from_value::<$name>(items.next().expect("length checked"))
                                .map_err(D::Error::custom)?,
                        )+))
                    }
                    other => Err(D::Error::custom(format_args!(
                        concat!("expected array of ", $len, ", found {}"),
                        type_name(&other)
                    ))),
                }
            }
        })*
    };
}
impl_deserialize_tuple! {
    (1: T0.0)
    (2: T0.0, T1.1)
    (3: T0.0, T1.1, T2.2)
    (4: T0.0, T1.1, T2.2, T3.3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Map;

    #[test]
    fn primitives_from_value() {
        assert_eq!(from_value::<bool>(Value::Bool(true)).unwrap(), true);
        assert_eq!(from_value::<u8>(Value::from(200)).unwrap(), 200);
        assert!(from_value::<u8>(Value::from(300)).is_err());
        assert_eq!(from_value::<i64>(Value::from(-5)).unwrap(), -5);
        assert_eq!(from_value::<f64>(Value::from(3)).unwrap(), 3.0);
        assert_eq!(
            from_value::<String>(Value::from("x")).unwrap(),
            "x".to_owned()
        );
    }

    #[test]
    fn options_and_collections() {
        assert_eq!(from_value::<Option<u8>>(Value::Null).unwrap(), None);
        assert_eq!(from_value::<Option<u8>>(Value::from(4)).unwrap(), Some(4));
        let arr = Value::Array(vec![Value::from(1), Value::from(2)]);
        assert_eq!(from_value::<Vec<u8>>(arr).unwrap(), vec![1, 2]);
        let mut obj = Map::new();
        obj.insert("a", Value::from(1));
        let map: std::collections::BTreeMap<String, u8> = from_value(Value::Object(obj)).unwrap();
        assert_eq!(map["a"], 1);
    }

    #[test]
    fn mismatch_reports_found_type() {
        let err = from_value::<String>(Value::from(1)).unwrap_err();
        assert!(err.to_string().contains("found number"), "{err}");
    }
}
