//! The concrete data model: a JSON-like [`Value`] tree with an
//! insertion-ordered object [`Map`] and an integer-preserving
//! [`Number`].

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer-preserving).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// The string content, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, when a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `i64`, when an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `u64`, when a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `f64`, for any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The elements, when an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable elements, when an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entries, when an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable entries, when an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Indexes into an object by key or an array by position.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// Replaces this value with `Null`, returning the original.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => n.write_json(out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_newline_indent(out, indent, level + 1);
                    item.write_json(out, indent, level + 1);
                }
                push_newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_newline_indent(out, indent, level + 1);
                    write_escaped(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write_json(out, indent, level + 1);
                }
                push_newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Renders compact JSON into a caller-provided buffer, so hot
    /// paths can reuse one allocation across many renders.
    pub fn write_json_string(&self, out: &mut String) {
        self.write_json(out, None, 0);
    }

    /// Renders two-space-indented JSON into a caller-provided buffer.
    pub fn write_json_string_pretty(&self, out: &mut String) {
        self.write_json(out, Some(2), 0);
    }

    /// Renders two-space-indented JSON as if the value sat `level`
    /// nesting levels deep: the first token is written inline and
    /// every subsequent line is indented by `2 * (level + depth)`
    /// spaces. This lets callers splice independently rendered
    /// fragments into a surrounding pretty document byte-identically.
    pub fn write_json_string_pretty_at(&self, out: &mut String, level: usize) {
        self.write_json(out, Some(2), level);
    }

    /// Renders compact JSON.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Renders two-space-indented JSON.
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }
}

fn push_newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

/// Key- or position-based indexing into a [`Value`].
pub trait ValueIndex {
    /// The value at this index, when present.
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        value.as_object().and_then(|m| m.get(self))
    }
}

impl ValueIndex for String {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(value)
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        value.as_array().and_then(|a| a.get(*self))
    }
}

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;

    /// Missing keys and out-of-range positions yield `Null`, as in
    /// `serde_json`.
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

macro_rules! impl_value_eq_num {
    ($($ty:ty => $as:ident),*) => {
        $(
            impl PartialEq<$ty> for Value {
                fn eq(&self, other: &$ty) -> bool {
                    matches!(self, Value::Number(n) if n.$as() == Some(*other as _))
                }
            }
            impl PartialEq<Value> for $ty {
                fn eq(&self, other: &Value) -> bool {
                    other == self
                }
            }
        )*
    };
}
impl_value_eq_num!(u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64,
    usize => as_u64, i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64,
    isize => as_i64);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

macro_rules! impl_value_from_num {
    ($($ty:ty),*) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::Number(Number::from(v))
            }
        })*
    };
}
impl_value_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A JSON number, distinguishing integers from floats so `u64` ids
/// survive round-trips exactly.
#[derive(Debug, Clone, Copy)]
pub struct Number {
    repr: N,
}

#[derive(Debug, Clone, Copy)]
enum N {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// Builds from a float.
    pub fn from_f64(v: f64) -> Number {
        Number { repr: N::Float(v) }
    }

    /// As `i64`, when an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.repr {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(_) => None,
        }
    }

    /// As `u64`, when a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.repr {
            N::PosInt(v) => Some(v),
            N::NegInt(_) | N::Float(_) => None,
        }
    }

    /// As `f64` (always possible, possibly lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match self.repr {
            N::PosInt(v) => v as f64,
            N::NegInt(v) => v as f64,
            N::Float(v) => v,
        }
    }

    /// Whether this is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.repr, N::Float(_))
    }

    fn write_json(&self, out: &mut String) {
        match self.repr {
            N::PosInt(v) => out.push_str(&v.to_string()),
            N::NegInt(v) => out.push_str(&v.to_string()),
            N::Float(v) if v.is_finite() => {
                // Debug gives the shortest round-trip form and always
                // marks the value as a float ("1.0", not "1").
                out.push_str(&format!("{v:?}"));
            }
            // JSON has no NaN/Infinity; serde_json emits null too.
            N::Float(_) => out.push_str("null"),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.repr, other.repr) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            (N::Float(a), N::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_json(&mut out);
        f.write_str(&out)
    }
}

macro_rules! impl_number_from_unsigned {
    ($($ty:ty),*) => {
        $(impl From<$ty> for Number {
            fn from(v: $ty) -> Number {
                Number { repr: N::PosInt(v as u64) }
            }
        })*
    };
}
impl_number_from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_number_from_signed {
    ($($ty:ty),*) => {
        $(impl From<$ty> for Number {
            fn from(v: $ty) -> Number {
                let v = v as i64;
                if v >= 0 {
                    Number { repr: N::PosInt(v as u64) }
                } else {
                    Number { repr: N::NegInt(v) }
                }
            }
        })*
    };
}
impl_number_from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Number {
    fn from(v: f64) -> Number {
        Number { repr: N::Float(v) }
    }
}

impl From<f32> for Number {
    fn from(v: f32) -> Number {
        Number {
            repr: N::Float(v as f64),
        }
    }
}

/// An insertion-ordered string-keyed map, the object representation.
///
/// Backed by a vector of entries: lookups are linear, which is fine at
/// the object sizes JSON documents here carry, and iteration order is
/// the order keys were first inserted — matching `serde_json`'s
/// `preserve_order` behaviour so rendered documents keep field order.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Creates an empty map with capacity for `n` entries.
    pub fn with_capacity(n: usize) -> Map {
        Map {
            entries: Vec::with_capacity(n),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key, replacing in place (and returning) any previous
    /// value under it.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => Some(std::mem::replace(slot, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// The value under a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable value under a key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Removes a key, preserving the order of the rest.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(pos).1)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates entries mutably in insertion order.
    pub fn iter_mut(&mut self) -> impl ExactSizeIterator<Item = (&String, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl ExactSizeIterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl ExactSizeIterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Map {
    /// Order-insensitive, like `serde_json`'s object equality.
    fn eq(&self, other: &Map) -> bool {
        self.len() == other.len() && self.entries.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl Extend<(String, Value)> for Map {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut map = Map::new();
        map.insert("z", Value::from(1));
        map.insert("a", Value::from(2));
        map.insert("z", Value::from(3)); // replace keeps position
        let keys: Vec<&String> = map.keys().collect();
        assert_eq!(keys, ["z", "a"]);
        assert_eq!(map.get("z"), Some(&Value::from(3)));
    }

    #[test]
    fn object_equality_ignores_order() {
        let a: Map = [
            ("x".to_owned(), Value::from(1)),
            ("y".to_owned(), Value::from(2)),
        ]
        .into_iter()
        .collect();
        let b: Map = [
            ("y".to_owned(), Value::from(2)),
            ("x".to_owned(), Value::from(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn numbers_keep_integerness() {
        assert_eq!(Value::from(1).to_json_string(), "1");
        assert_eq!(Value::from(1.0).to_json_string(), "1.0");
        assert_eq!(Value::from(-3).to_json_string(), "-3");
        assert_eq!(Value::from(u64::MAX).to_json_string(), u64::MAX.to_string());
        assert_ne!(Value::from(1), Value::from(1.0));
    }

    #[test]
    fn string_escaping() {
        let v = Value::String("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(v.to_json_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        let plain = Value::String("plain".to_owned());
        assert_eq!(plain.to_json_string(), "\"plain\"");
    }

    #[test]
    fn index_missing_yields_null() {
        let v = Value::Object(Map::new());
        assert!(v["absent"].is_null());
        assert_eq!(v["absent"], Value::Null);
    }
}
