//! Offline stand-in for the `bytes` crate: the [`BytesMut`] buffer and
//! the [`Buf`]/[`BufMut`] cursor traits, over a plain `Vec<u8>`.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source: each getter consumes from the front.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_slice(b"ok");
        assert_eq!(buf.len(), 6);
        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.chunk(), b"ok");
    }
}
