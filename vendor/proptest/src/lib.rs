//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, integer range and
//! regex-literal strategies, `collection::vec`, `array::uniform16`,
//! `sample::select`, `any::<T>()`, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each `#[test]` runs a fixed number of deterministic cases
//! (the RNG is seeded per test run, not from entropy), so failures
//! reproduce across runs and CI.

pub mod test_runner {
    /// Cases generated per property.
    pub const CASES: u32 = 128;

    /// Deterministic xorshift RNG for strategy sampling.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a fixed seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed | 1 }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift bounded sampling; bias is negligible for
            // test-input purposes.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Per-test driver owning the RNG.
    pub struct TestRunner {
        /// The sampling RNG.
        pub rng: TestRng,
    }

    impl Default for TestRunner {
        fn default() -> TestRunner {
            TestRunner {
                rng: TestRng::new(0x05EE_DCA1_50D0_7E57),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {
            $(
                impl Strategy for std::ops::Range<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $ty
                    }
                }

                impl Strategy for std::ops::RangeInclusive<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi - lo + 1) as u64;
                        (lo + rng.below(span) as i128) as $ty
                    }
                }
            )*
        };
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    /// String-literal strategies: a small regex subset — character
    /// classes `[...]`, the `\PC` (non-control) class, literal
    /// characters, each optionally followed by `{n}` or `{m,n}`.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_regex(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);

                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.generate(rng),)+)
                    }
                }
            )*
        };
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    enum Atom {
        Class(Vec<char>),
        NotControl,
        Literal(char),
    }

    /// Characters sampled for `\PC`: printable ASCII plus a few
    /// multibyte code points to exercise UTF-8 handling.
    const NOT_CONTROL_EXTRA: [char; 8] = ['é', 'ß', 'Ω', '中', '文', '→', '😀', '\u{00A0}'];

    fn generate_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut out = String::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars.next().expect("unterminated character class");
                        if c == ']' {
                            break;
                        }
                        if c == '-' {
                            if let (Some(lo), Some(&hi)) = (prev, chars.peek()) {
                                if hi != ']' {
                                    chars.next();
                                    set.pop();
                                    for v in lo as u32..=hi as u32 {
                                        set.push(char::from_u32(v).expect("class range"));
                                    }
                                    prev = None;
                                    continue;
                                }
                            }
                        }
                        set.push(c);
                        prev = Some(c);
                    }
                    Atom::Class(set)
                }
                '\\' => match chars.next() {
                    Some('P') => {
                        assert_eq!(chars.next(), Some('C'), "only \\PC is supported");
                        Atom::NotControl
                    }
                    Some(esc) => Atom::Literal(esc),
                    None => panic!("dangling escape in pattern"),
                },
                c => Atom::Literal(c),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse::<u64>().expect("repetition bound"),
                        hi.parse::<u64>().expect("repetition bound"),
                    ),
                    None => {
                        let n = spec.parse::<u64>().expect("repetition bound");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                match &atom {
                    Atom::Class(set) => {
                        let idx = rng.below(set.len() as u64) as usize;
                        out.push(set[idx]);
                    }
                    Atom::NotControl => {
                        // ~1 in 8 draws lands on a multibyte character.
                        if rng.below(8) == 0 {
                            let idx = rng.below(NOT_CONTROL_EXTRA.len() as u64) as usize;
                            out.push(NOT_CONTROL_EXTRA[idx]);
                        } else {
                            out.push((0x20 + rng.below(0x5F) as u32 as u8) as char);
                        }
                    }
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {
            $(impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            })*
        };
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The full-domain strategy for `T` (see [`any`]).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy covering all of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`].
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of another strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating fixed 16-element arrays.
    pub struct Uniform16<S>(S);

    /// Generates `[T; 16]` from an element strategy.
    pub fn uniform16<S: Strategy>(element: S) -> Uniform16<S> {
        Uniform16(element)
    }

    impl<S: Strategy> Strategy for Uniform16<S> {
        type Value = [S::Value; 16];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 16] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed list.
    pub struct Select<T>(Vec<T>);

    /// Picks one of the given options per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].clone()
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body
/// runs [`test_runner::CASES`] times with freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runner = $crate::test_runner::TestRunner::default();
                for __case in 0..$crate::test_runner::CASES {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __runner.rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property-test condition (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts property-test equality (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespace mirror so `prop::collection::vec(...)` etc. resolve.
    pub mod prop {
        pub use crate::{array, collection, sample, strategy};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;
    use crate::test_runner::TestRunner;

    #[test]
    fn regex_subset_respects_shape() {
        let mut runner = TestRunner::default();
        for _ in 0..200 {
            let s = "[a-z]{3,8}".generate(&mut runner.rng);
            assert!((3..=8).contains(&s.chars().count()), "{s}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s}");

            let s = "[a-zA-Z0-9.]{1,12}".generate(&mut runner.rng);
            assert!((1..=12).contains(&s.chars().count()), "{s}");
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == '.'),
                "{s}"
            );

            let s = "\\PC{0,80}".generate(&mut runner.rng);
            assert!(s.chars().count() <= 80);
            assert!(!s.chars().any(char::is_control), "{s:?}");
        }
    }

    #[test]
    fn ranges_and_collections_stay_in_bounds() {
        let mut runner = TestRunner::default();
        for _ in 0..200 {
            let v = (-5i64..7).generate(&mut runner.rng);
            assert!((-5..7).contains(&v));
            let v = (0u8..=5).generate(&mut runner.rng);
            assert!(v <= 5);
            let xs = prop::collection::vec(0u32..10, 2..5).generate(&mut runner.rng);
            assert!((2..5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 10));
            let arr = prop::array::uniform16(any::<u8>()).generate(&mut runner.rng);
            assert_eq!(arr.len(), 16);
            let pick = prop::sample::select(vec!["a", "b"]).generate(&mut runner.rng);
            assert!(pick == "a" || pick == "b");
        }
    }

    proptest! {
        /// The macro itself compiles and drives tuples + prop_map.
        #[test]
        fn macro_smoke((a, b) in (0u8..10, 1u32..4), s in "[a-z]{2,4}") {
            prop_assert!(a < 10);
            prop_assert!((1..4).contains(&b));
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert!(s.len() >= 2 && s.len() <= 4);
        }
    }
}
