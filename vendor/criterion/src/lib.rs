//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the structural API the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! throughput annotation, `criterion_group!` / `criterion_main!` — but
//! measures with a simple calibrate-then-sample loop and prints one
//! plain-text line per benchmark instead of statistical HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let mean = run_calibrated(10, &mut f);
        report(&label, mean, None);
        self
    }
}

/// Throughput annotation used to report rates alongside times.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input elements processed per iteration.
    Elements(u64),
    /// Input bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; kept for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measured samples to average.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput of following benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mean = run_calibrated(self.sample_size, &mut f);
        report(&label, mean, self.throughput);
        self
    }

    /// Runs one benchmark closure with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mean = run_calibrated(self.sample_size, &mut |b: &mut Bencher| f(b, input));
        report(&label, mean, self.throughput);
        self
    }

    /// Ends the group (reports are already printed per benchmark).
    pub fn finish(self) {}
}

/// Measures the routine passed to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `iters` calls, excluding per-call setup.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Calibrates an iteration count against a ~50 ms budget, then reports
/// the mean time of one sampled run at that count.
fn run_calibrated<F: FnMut(&mut Bencher)>(sample_size: usize, f: &mut F) -> Duration {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = Duration::from_millis(50);
    let per_sample = (budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..sample_size {
        bencher.iters = per_sample;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        total += bencher.elapsed;
        iters += per_sample;
    }
    total / iters.max(1) as u32
}

fn report(label: &str, mean: Duration, throughput: Option<Throughput>) {
    let time = format_duration(mean);
    match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("{label:<50} time: {time:>12}   thrpt: {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
            println!("{label:<50} time: {time:>12}   thrpt: {rate:>11.2} MiB/s");
        }
        _ => println!("{label:<50} time: {time:>12}"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        let mut runs = 0u32;
        group.bench_function("sum", |b| {
            runs += 1;
            b.iter(|| (0..4u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter_batched(|| x, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert!(runs >= 2, "calibration plus samples should run the closure");
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("40pct").to_string(), "40pct");
    }
}
