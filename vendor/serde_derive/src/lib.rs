//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` without
//! `syn`/`quote`: the input item is parsed directly from the
//! `proc_macro::TokenStream` and the impls are generated as strings
//! targeting the value-based `serde` stub in `vendor/serde`.
//!
//! Supported attribute matrix (exactly what this workspace uses):
//!
//! - container: `rename_all = "kebab-case" | "snake_case"`,
//!   `tag = "..."` (internally tagged enums), `transparent`,
//!   `try_from = "Type"` + `into = "Type"`
//! - variant: `rename = "..."`, `untagged` (fallback newtype variant)
//! - field: `rename = "..."`, `default`, `default = "path"`,
//!   `skip_serializing_if = "path"`, `flatten`
//!
//! `Option<T>` fields are implicitly defaulted to `None` when missing,
//! unknown keys are ignored, and generics are not supported (the
//! workspace derives none).

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- parsed model ------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    rename_all: Option<String>,
    tag: Option<String>,
    transparent: bool,
    try_from: Option<String>,
    into: Option<String>,
}

#[derive(Default)]
struct FieldAttrs {
    rename: Option<String>,
    /// `Some(None)` = bare `default`, `Some(Some(path))` = `default = "path"`.
    default: Option<Option<String>>,
    skip_serializing_if: Option<String>,
    flatten: bool,
}

#[derive(Default)]
struct VariantAttrs {
    rename: Option<String>,
    untagged: bool,
}

struct Field {
    /// `None` for tuple-struct fields.
    name: Option<String>,
    /// First token of the type, for `Option` detection.
    ty_head: String,
    attrs: FieldAttrs,
}

enum Payload {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    attrs: VariantAttrs,
    payload: Payload,
}

enum Body {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Container {
    attrs: ContainerAttrs,
    name: String,
    body: Body,
}

// ---- token cursor ------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let tok = self.tokens.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.bump() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }
}

// ---- parsing -----------------------------------------------------------

/// Strips the surrounding quotes of a string-literal token.
fn literal_str(tok: &TokenTree) -> String {
    let raw = tok.to_string();
    let inner = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("serde_derive: expected string literal, found {raw}"));
    inner.to_owned()
}

/// Consumes leading attributes, returning all `#[serde(...)]` key/value
/// pairs (other attributes, including doc comments, are skipped).
fn parse_attr_kvs(cur: &mut Cursor) -> Vec<(String, Option<String>)> {
    let mut kvs = Vec::new();
    while matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        cur.bump();
        let group = match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde_derive: malformed attribute, found {other:?}"),
        };
        let mut inner = Cursor::new(group.stream());
        if !inner.eat_ident("serde") {
            continue;
        }
        let args = match inner.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
            other => panic!("serde_derive: malformed #[serde] attribute, found {other:?}"),
        };
        let mut args = Cursor::new(args.stream());
        while args.peek().is_some() {
            let key = args.expect_ident();
            let value = if args.eat_punct('=') {
                let tok = args
                    .bump()
                    .unwrap_or_else(|| panic!("serde_derive: missing value for `{key}`"));
                Some(literal_str(&tok))
            } else {
                None
            };
            kvs.push((key, value));
            args.eat_punct(',');
        }
    }
    kvs
}

fn container_attrs(kvs: Vec<(String, Option<String>)>) -> ContainerAttrs {
    let mut attrs = ContainerAttrs::default();
    for (key, value) in kvs {
        match key.as_str() {
            "rename_all" => attrs.rename_all = value,
            "tag" => attrs.tag = value,
            "transparent" => attrs.transparent = true,
            "try_from" => attrs.try_from = value,
            "into" => attrs.into = value,
            other => panic!("serde_derive: unsupported container attribute `{other}`"),
        }
    }
    attrs
}

fn field_attrs(kvs: Vec<(String, Option<String>)>) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    for (key, value) in kvs {
        match key.as_str() {
            "rename" => attrs.rename = value,
            "default" => attrs.default = Some(value),
            "skip_serializing_if" => attrs.skip_serializing_if = value,
            "flatten" => attrs.flatten = true,
            other => panic!("serde_derive: unsupported field attribute `{other}`"),
        }
    }
    attrs
}

fn variant_attrs(kvs: Vec<(String, Option<String>)>) -> VariantAttrs {
    let mut attrs = VariantAttrs::default();
    for (key, value) in kvs {
        match key.as_str() {
            "rename" => attrs.rename = value,
            "untagged" => attrs.untagged = true,
            other => panic!("serde_derive: unsupported variant attribute `{other}`"),
        }
    }
    attrs
}

/// Skips `pub`, `pub(crate)`, `pub(super)`, ...
fn skip_visibility(cur: &mut Cursor) {
    if cur.eat_ident("pub") {
        if let Some(TokenTree::Group(g)) = cur.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                cur.bump();
            }
        }
    }
}

/// Consumes one field type, returning its first token. Tracks angle
/// brackets so `BTreeMap<String, String>` is not split at the comma.
fn skip_type(cur: &mut Cursor) -> String {
    let mut head = String::new();
    let mut depth = 0i32;
    while let Some(tok) = cur.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => {}
        }
        let tok = cur.bump().expect("peeked");
        if head.is_empty() {
            head = tok.to_string();
        }
    }
    head
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let attrs = field_attrs(parse_attr_kvs(&mut cur));
        skip_visibility(&mut cur);
        let name = cur.expect_ident();
        assert!(
            cur.eat_punct(':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        let ty_head = skip_type(&mut cur);
        cur.eat_punct(',');
        fields.push(Field {
            name: Some(name),
            ty_head,
            attrs,
        });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    while cur.peek().is_some() {
        let _ = field_attrs(parse_attr_kvs(&mut cur));
        skip_visibility(&mut cur);
        skip_type(&mut cur);
        cur.eat_punct(',');
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        let attrs = variant_attrs(parse_attr_kvs(&mut cur));
        let name = cur.expect_ident();
        let payload = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = parse_tuple_fields(g.stream());
                assert!(
                    count == 1,
                    "serde_derive: only newtype tuple variants are supported ({name})"
                );
                cur.bump();
                Payload::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.bump();
                Payload::Struct(fields)
            }
            _ => Payload::Unit,
        };
        // Skip an explicit discriminant (`= expr`).
        if cur.eat_punct('=') {
            while let Some(tok) = cur.peek() {
                if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                cur.bump();
            }
        }
        cur.eat_punct(',');
        variants.push(Variant {
            name,
            attrs,
            payload,
        });
    }
    variants
}

fn parse_container(input: TokenStream) -> Container {
    let mut cur = Cursor::new(input);
    let attrs = container_attrs(parse_attr_kvs(&mut cur));
    skip_visibility(&mut cur);
    let is_enum = if cur.eat_ident("struct") {
        false
    } else if cur.eat_ident("enum") {
        true
    } else {
        panic!("serde_derive: expected `struct` or `enum`");
    };
    let name = cur.expect_ident();
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported ({name})");
    }
    let body = if is_enum {
        match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum body, found {other:?}"),
        }
    } else {
        match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(parse_tuple_fields(g.stream()))
            }
            _ => Body::UnitStruct,
        }
    };
    Container { attrs, name, body }
}

// ---- name conversion ---------------------------------------------------

/// Applies a `rename_all` style: camel boundaries and underscores both
/// become the style's separator.
fn apply_rename_all(style: &str, name: &str) -> String {
    let sep = match style {
        "kebab-case" => '-',
        "snake_case" => '_',
        other => panic!("serde_derive: unsupported rename_all style `{other}`"),
    };
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push(sep);
            }
            out.push(ch.to_ascii_lowercase());
        } else if ch == '_' {
            out.push(sep);
        } else {
            out.push(ch);
        }
    }
    out
}

fn field_wire_name(field: &Field, container: &ContainerAttrs) -> String {
    let raw = field.name.as_deref().expect("named field");
    match (&field.attrs.rename, &container.rename_all) {
        (Some(rename), _) => rename.clone(),
        (None, Some(style)) => apply_rename_all(style, raw),
        (None, None) => raw.to_owned(),
    }
}

fn variant_wire_name(variant: &Variant, container: &ContainerAttrs) -> String {
    match (&variant.attrs.rename, &container.rename_all) {
        (Some(rename), _) => rename.clone(),
        (None, Some(style)) => apply_rename_all(style, &variant.name),
        (None, None) => variant.name.clone(),
    }
}

// ---- codegen helpers ---------------------------------------------------

const SER_ERR: &str = "<__S::Error as ::serde::ser::Error>::custom";
const DE_ERR: &str = "<__D::Error as ::serde::de::Error>::custom";

fn lit(s: &str) -> String {
    format!("{s:?}")
}

/// Statements inserting one struct's fields into a `Map` named `__map`.
/// `access(field)` yields an expression of type `&FieldTy`.
fn gen_insert_stmts(
    fields: &[Field],
    container: &ContainerAttrs,
    access: impl Fn(usize, &Field) -> String,
) -> String {
    let mut out = String::new();
    for (i, field) in fields.iter().enumerate() {
        let expr = access(i, field);
        let body = if field.attrs.flatten {
            format!(
                "match ::serde::ser::to_value({expr}).map_err({SER_ERR})? {{\n\
                     ::serde::value::Value::Object(__inner) => {{\n\
                         for (__k, __v) in __inner {{ __map.insert(__k, __v); }}\n\
                     }}\n\
                     ::serde::value::Value::Null => {{}}\n\
                     _ => return ::core::result::Result::Err({SER_ERR}(\
                          \"`flatten` field must serialize to an object\")),\n\
                 }}\n"
            )
        } else {
            let wire = lit(&field_wire_name(field, container));
            format!("__map.insert({wire}, ::serde::ser::to_value({expr}).map_err({SER_ERR})?);\n")
        };
        if let Some(skip) = &field.attrs.skip_serializing_if {
            out.push_str(&format!("if !{skip}({expr}) {{\n{body}}}\n"));
        } else {
            out.push_str(&body);
        }
    }
    out
}

/// Statements extracting one struct's fields out of a `Map` named
/// `__map` into bindings `__f0..__fN`, plus the struct-literal body.
fn gen_extract_stmts(fields: &[Field], container: &ContainerAttrs) -> (String, String) {
    let mut stmts = String::new();
    let mut literal = String::new();
    // Plain fields claim their keys first; flattened fields then share
    // whatever remains.
    for (i, field) in fields.iter().enumerate() {
        if field.attrs.flatten {
            continue;
        }
        let wire = lit(&field_wire_name(field, container));
        let missing = match &field.attrs.default {
            Some(None) => "::core::default::Default::default()".to_owned(),
            Some(Some(path)) => format!("{path}()"),
            None if field.ty_head == "Option" => "::core::option::Option::None".to_owned(),
            None => format!(
                "return ::core::result::Result::Err({DE_ERR}(\
                 ::std::format!(\"missing field `{{}}`\", {wire})))"
            ),
        };
        stmts.push_str(&format!(
            "let __f{i} = match __map.remove({wire}) {{\n\
                 ::core::option::Option::Some(__v) => \
                     ::serde::de::from_value(__v).map_err({DE_ERR})?,\n\
                 ::core::option::Option::None => {missing},\n\
             }};\n"
        ));
    }
    for (i, field) in fields.iter().enumerate() {
        if !field.attrs.flatten {
            continue;
        }
        stmts.push_str(&format!(
            "let __f{i} = ::serde::de::from_value(\
                 ::serde::value::Value::Object(__map.clone()))\
                 .map_err({DE_ERR})?;\n"
        ));
    }
    for (i, field) in fields.iter().enumerate() {
        let name = field.name.as_deref().expect("named field");
        literal.push_str(&format!("{name}: __f{i}, "));
    }
    (stmts, literal)
}

fn impl_header_ser(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, unreachable_code, clippy::all)]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn impl_header_de(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, unreachable_code, clippy::all)]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

// ---- Serialize ---------------------------------------------------------

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    if let Some(into_ty) = &c.attrs.into {
        let body = format!(
            "let __conv: {into_ty} = \
                 ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::ser::Serialize::serialize(&__conv, __serializer)"
        );
        return impl_header_ser(name, &body);
    }
    let body = match &c.body {
        Body::UnitStruct => "__serializer.serialize_unit()".to_owned(),
        Body::TupleStruct(1) => {
            "::serde::ser::Serialize::serialize(&self.0, __serializer)".to_owned()
        }
        Body::TupleStruct(n) => {
            let mut items = String::new();
            for i in 0..*n {
                items.push_str(&format!(
                    "::serde::ser::to_value(&self.{i}).map_err({SER_ERR})?, "
                ));
            }
            format!(
                "__serializer.serialize_value(\
                     ::serde::value::Value::Array(::std::vec![{items}]))"
            )
        }
        Body::NamedStruct(fields) if c.attrs.transparent => {
            let field = fields
                .first()
                .unwrap_or_else(|| panic!("transparent struct {name} needs a field"));
            let fname = field.name.as_deref().expect("named field");
            format!("::serde::ser::Serialize::serialize(&self.{fname}, __serializer)")
        }
        Body::NamedStruct(fields) => {
            let inserts = gen_insert_stmts(fields, &c.attrs, |_, f| {
                format!("&self.{}", f.name.as_deref().expect("named field"))
            });
            format!(
                "let mut __map = ::serde::value::Map::new();\n{inserts}\
                 __serializer.serialize_value(::serde::value::Value::Object(__map))"
            )
        }
        Body::Enum(variants) => gen_serialize_enum(c, variants),
    };
    impl_header_ser(name, &body)
}

fn gen_serialize_enum(c: &Container, variants: &[Variant]) -> String {
    let name = &c.name;
    let mut arms = String::new();
    for variant in variants {
        let vname = &variant.name;
        let wire = lit(&variant_wire_name(variant, &c.attrs));
        let arm = match (&variant.payload, &c.attrs.tag, variant.attrs.untagged) {
            (Payload::Newtype, _, true) => format!(
                "{name}::{vname}(__inner) => \
                     ::serde::ser::Serialize::serialize(__inner, __serializer),\n"
            ),
            (Payload::Unit, None, _) => format!(
                "{name}::{vname} => __serializer.serialize_value(\
                     ::serde::value::Value::String({wire}.to_owned())),\n"
            ),
            (Payload::Unit, Some(tag), _) => format!(
                "{name}::{vname} => {{\n\
                     let mut __map = ::serde::value::Map::new();\n\
                     __map.insert({tag:?}, ::serde::value::Value::String({wire}.to_owned()));\n\
                     __serializer.serialize_value(::serde::value::Value::Object(__map))\n\
                 }}\n"
            ),
            (Payload::Newtype, None, _) => format!(
                "{name}::{vname}(__inner) => {{\n\
                     let mut __map = ::serde::value::Map::new();\n\
                     __map.insert({wire}, \
                         ::serde::ser::to_value(__inner).map_err({SER_ERR})?);\n\
                     __serializer.serialize_value(::serde::value::Value::Object(__map))\n\
                 }}\n"
            ),
            (Payload::Newtype, Some(tag), _) => format!(
                "{name}::{vname}(__inner) => {{\n\
                     let mut __map = ::serde::value::Map::new();\n\
                     __map.insert({tag:?}, ::serde::value::Value::String({wire}.to_owned()));\n\
                     match ::serde::ser::to_value(__inner).map_err({SER_ERR})? {{\n\
                         ::serde::value::Value::Object(__inner) => {{\n\
                             for (__k, __v) in __inner {{ __map.insert(__k, __v); }}\n\
                         }}\n\
                         ::serde::value::Value::Null => {{}}\n\
                         _ => return ::core::result::Result::Err({SER_ERR}(\
                              \"internally tagged newtype must serialize to an object\")),\n\
                     }}\n\
                     __serializer.serialize_value(::serde::value::Value::Object(__map))\n\
                 }}\n"
            ),
            (Payload::Struct(fields), tag, _) => {
                let mut bindings = String::new();
                for (i, field) in fields.iter().enumerate() {
                    let fname = field.name.as_deref().expect("named field");
                    bindings.push_str(&format!("{fname}: __b{i}, "));
                }
                let inserts = gen_insert_stmts(fields, &c.attrs, |i, _| format!("__b{i}"));
                match tag {
                    None => format!(
                        "{name}::{vname} {{ {bindings} }} => {{\n\
                             let mut __map = ::serde::value::Map::new();\n\
                             {inserts}\
                             let mut __outer = ::serde::value::Map::new();\n\
                             __outer.insert({wire}, ::serde::value::Value::Object(__map));\n\
                             __serializer.serialize_value(\
                                 ::serde::value::Value::Object(__outer))\n\
                         }}\n"
                    ),
                    Some(tag) => format!(
                        "{name}::{vname} {{ {bindings} }} => {{\n\
                             let mut __map = ::serde::value::Map::new();\n\
                             __map.insert({tag:?}, \
                                 ::serde::value::Value::String({wire}.to_owned()));\n\
                             {inserts}\
                             __serializer.serialize_value(\
                                 ::serde::value::Value::Object(__map))\n\
                         }}\n"
                    ),
                }
            }
        };
        arms.push_str(&arm);
    }
    format!("match self {{\n{arms}}}")
}

// ---- Deserialize -------------------------------------------------------

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    if let Some(from_ty) = &c.attrs.try_from {
        let body = format!(
            "let __raw: {from_ty} = ::serde::de::Deserialize::deserialize(__deserializer)?;\n\
             <Self as ::core::convert::TryFrom<{from_ty}>>::try_from(__raw)\
                 .map_err({DE_ERR})"
        );
        return impl_header_de(name, &body);
    }
    let body = match &c.body {
        Body::UnitStruct => format!(
            "let _ = ::serde::de::Deserializer::into_value(__deserializer)?;\n\
             ::core::result::Result::Ok({name})"
        ),
        Body::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(\
                 ::serde::de::Deserialize::deserialize(__deserializer)?))"
        ),
        Body::TupleStruct(n) => {
            let mut items = String::new();
            for _ in 0..*n {
                items.push_str(&format!(
                    "::serde::de::from_value(__items.next().expect(\"length checked\"))\
                         .map_err({DE_ERR})?, "
                ));
            }
            format!(
                "match ::serde::de::Deserializer::into_value(__deserializer)? {{\n\
                     ::serde::value::Value::Array(__items) if __items.len() == {n} => {{\n\
                         let mut __items = __items.into_iter();\n\
                         ::core::result::Result::Ok({name}({items}))\n\
                     }}\n\
                     _ => ::core::result::Result::Err({DE_ERR}(\
                          \"expected array of {n} for {name}\")),\n\
                 }}"
            )
        }
        Body::NamedStruct(fields) if c.attrs.transparent => {
            let field = fields
                .first()
                .unwrap_or_else(|| panic!("transparent struct {name} needs a field"));
            let fname = field.name.as_deref().expect("named field");
            format!(
                "::core::result::Result::Ok({name} {{ {fname}: \
                     ::serde::de::Deserialize::deserialize(__deserializer)? }})"
            )
        }
        Body::NamedStruct(fields) => {
            let (stmts, literal) = gen_extract_stmts(fields, &c.attrs);
            format!(
                "let mut __map = match \
                     ::serde::de::Deserializer::into_value(__deserializer)? {{\n\
                     ::serde::value::Value::Object(__m) => __m,\n\
                     _ => return ::core::result::Result::Err({DE_ERR}(\
                          \"expected object for {name}\")),\n\
                 }};\n\
                 {stmts}\
                 ::core::result::Result::Ok({name} {{ {literal} }})"
            )
        }
        Body::Enum(variants) => match &c.attrs.tag {
            Some(tag) => gen_deserialize_tagged_enum(c, variants, tag),
            None => gen_deserialize_plain_enum(c, variants),
        },
    };
    impl_header_de(name, &body)
}

fn gen_deserialize_tagged_enum(c: &Container, variants: &[Variant], tag: &str) -> String {
    let name = &c.name;
    let mut arms = String::new();
    for variant in variants {
        let vname = &variant.name;
        let wire = lit(&variant_wire_name(variant, &c.attrs));
        let arm = match &variant.payload {
            Payload::Unit => format!("{wire} => ::core::result::Result::Ok({name}::{vname}),\n"),
            Payload::Newtype => format!(
                "{wire} => ::serde::de::from_value(\
                     ::serde::value::Value::Object(__map))\
                     .map({name}::{vname}).map_err({DE_ERR}),\n"
            ),
            Payload::Struct(fields) => {
                let (stmts, literal) = gen_extract_stmts(fields, &c.attrs);
                format!(
                    "{wire} => {{\n{stmts}\
                         ::core::result::Result::Ok({name}::{vname} {{ {literal} }})\n\
                     }}\n"
                )
            }
        };
        arms.push_str(&arm);
    }
    format!(
        "let mut __map = match ::serde::de::Deserializer::into_value(__deserializer)? {{\n\
             ::serde::value::Value::Object(__m) => __m,\n\
             _ => return ::core::result::Result::Err({DE_ERR}(\
                  \"expected object for {name}\")),\n\
         }};\n\
         let __tag = match __map.remove({tag:?}) {{\n\
             ::core::option::Option::Some(::serde::value::Value::String(__s)) => __s,\n\
             _ => return ::core::result::Result::Err({DE_ERR}(\
                  \"missing or non-string tag `{tag}` for {name}\")),\n\
         }};\n\
         match __tag.as_str() {{\n\
             {arms}\
             __other => ::core::result::Result::Err({DE_ERR}(\
                 ::std::format!(\"unknown {name} tag `{{}}`\", __other))),\n\
         }}"
    )
}

fn gen_deserialize_plain_enum(c: &Container, variants: &[Variant]) -> String {
    let name = &c.name;
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    let mut untagged_attempts = String::new();
    for variant in variants {
        let vname = &variant.name;
        let wire = lit(&variant_wire_name(variant, &c.attrs));
        match (&variant.payload, variant.attrs.untagged) {
            (Payload::Newtype, true) => untagged_attempts.push_str(&format!(
                "if let ::core::result::Result::Ok(__inner) = \
                     ::serde::de::from_value(__value.clone()) {{\n\
                     return ::core::result::Result::Ok({name}::{vname}(__inner));\n\
                 }}\n"
            )),
            (Payload::Unit, _) => unit_arms.push_str(&format!(
                "{wire} => return ::core::result::Result::Ok({name}::{vname}),\n"
            )),
            (Payload::Newtype, _) => data_arms.push_str(&format!(
                "{wire} => return ::serde::de::from_value(__v)\
                     .map({name}::{vname}).map_err({DE_ERR}),\n"
            )),
            (Payload::Struct(fields), _) => {
                let (stmts, literal) = gen_extract_stmts(fields, &c.attrs);
                data_arms.push_str(&format!(
                    "{wire} => {{\n\
                         let mut __map = match __v {{\n\
                             ::serde::value::Value::Object(__m) => __m,\n\
                             _ => return ::core::result::Result::Err({DE_ERR}(\
                                  \"variant `\".to_owned() + {wire} + \
                                  \"` of {name} expects an object\")),\n\
                         }};\n\
                         {stmts}\
                         return ::core::result::Result::Ok(\
                             {name}::{vname} {{ {literal} }});\n\
                     }}\n"
                ));
            }
        }
    }
    let mut body =
        String::from("let __value = ::serde::de::Deserializer::into_value(__deserializer)?;\n");
    if !unit_arms.is_empty() {
        body.push_str(&format!(
            "if let ::serde::value::Value::String(ref __s) = __value {{\n\
                 match __s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
             }}\n"
        ));
    }
    if !data_arms.is_empty() {
        body.push_str(&format!(
            "if let ::serde::value::Value::Object(ref __obj) = __value {{\n\
                 if __obj.len() == 1 {{\n\
                     let (__k, __v) = {{\n\
                         let (__k, __v) = __obj.iter().next().expect(\"length checked\");\n\
                         (__k.clone(), __v.clone())\n\
                     }};\n\
                     match __k.as_str() {{\n{data_arms}_ => {{}}\n}}\n\
                 }}\n\
             }}\n"
        ));
    }
    body.push_str(&untagged_attempts);
    body.push_str(&format!(
        "::core::result::Result::Err({DE_ERR}(\"no variant of {name} matched the value\"))"
    ));
    body
}

// ---- entry points ------------------------------------------------------

/// Derives `serde::ser::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_serialize(&container)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::de::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_deserialize(&container)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
