//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements [`Rng`], [`SeedableRng`], [`rngs::StdRng`],
//! [`thread_rng`] and [`seq::SliceRandom`] over a xoshiro256**
//! generator seeded through splitmix64 — deterministic per seed, good
//! enough statistically for synthetic workload generation, and with no
//! external dependencies.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills the buffer with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS-derived entropy (here: clock-mixed).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 20))
            .unwrap_or(0x9E37_79B9);
        Self::seed_from_u64(nanos ^ (std::process::id() as u64).rotate_left(32))
    }
}

/// High-level sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fills the buffer with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {
        $(impl Standard for $ty {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value of `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $ty
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (start as i128 + offset) as $ty
                }
            }
        )*
    };
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream expands the seed into four lanes.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A freshly entropy-seeded [`StdRng`], handed out per call.
    #[derive(Debug)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            ThreadRng {
                inner: StdRng::from_entropy(),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// An entropy-seeded generator for one-off use.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(2);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
