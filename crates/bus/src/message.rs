//! The message envelope carried by the bus.

use cais_common::Timestamp;
use cais_telemetry::TraceContext;
use serde::{Deserialize, Serialize};

use crate::topic::Topic;

/// A published message: topic, JSON payload and delivery metadata.
///
/// Payloads are JSON values because everything the platform moves across
/// the bus (MISP events, IoCs, alarms) already has a JSON wire form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Monotonic per-broker sequence number.
    pub seq: u64,
    /// The topic the message was published under.
    pub topic: Topic,
    /// When the broker accepted the message.
    pub published_at: Timestamp,
    /// The JSON payload.
    pub payload: serde_json::Value,
    /// Causal trace context of the publish that produced the message,
    /// carried so subscribers (in-process or across the TCP bridge)
    /// record their handling as children of the publisher's span.
    /// Absent for untraced publishes and messages from pre-trace
    /// peers — both decode as `None` and the receiver starts a fresh
    /// root trace.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<TraceContext>,
}

impl Message {
    /// Deserializes the payload into a typed value.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error when the payload does
    /// not match `T`'s schema.
    pub fn decode<T: serde::de::DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        serde_json::from_value(self.payload.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Alarm {
        node: String,
        severity: u8,
    }

    #[test]
    fn decode_typed_payload() {
        let msg = Message {
            seq: 1,
            topic: Topic::new("infra.alarm.raised"),
            published_at: Timestamp::EPOCH,
            payload: serde_json::json!({"node": "gitlab", "severity": 3}),
            trace: None,
        };
        let alarm: Alarm = msg.decode().unwrap();
        assert_eq!(
            alarm,
            Alarm {
                node: "gitlab".into(),
                severity: 3
            }
        );
    }

    #[test]
    fn decode_mismatch_errors() {
        let msg = Message {
            seq: 1,
            topic: Topic::new("t"),
            published_at: Timestamp::EPOCH,
            payload: serde_json::json!("just a string"),
            trace: None,
        };
        assert!(msg.decode::<Alarm>().is_err());
    }
}
