//! Resilient TCP bus clients: connect retries and automatic reconnect
//! with backoff.
//!
//! [`BusClient::connect_with_retry`] rides a seeded
//! [`RetryPolicy`] ladder while a peer comes up;
//! [`ReconnectingBusClient`] additionally re-subscribes whenever the
//! connection drops mid-stream, counting every reconnect. Messages
//! published while disconnected are not replayed — the bus is a live
//! feed, and consumers that need gapless history resynchronise through
//! the TAXII/MISP pull paths instead.

use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use cais_common::resilience::{site_hash, RetryPolicy, Sleeper};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tcp::{BusClient, RecvStep, DEFAULT_IO_TIMEOUT};
use crate::Message;

impl BusClient {
    /// [`BusClient::connect`] under a retry ladder: each failed
    /// connect/handshake backs off on `sleeper` with jitter from a
    /// stream seeded by `seed`.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once the budget is spent, or
    /// [`io::ErrorKind::Interrupted`] when `sleeper` was woken by a
    /// stop signal mid-backoff.
    pub fn connect_with_retry(
        addr: SocketAddr,
        pattern: &str,
        policy: &RetryPolicy,
        seed: u64,
        sleeper: &impl Sleeper,
    ) -> io::Result<Self> {
        let mut rng = StdRng::seed_from_u64(seed ^ site_hash("bus.connect"));
        let outcome = policy.run(&mut rng, sleeper, |_| BusClient::connect(addr, pattern));
        if outcome.interrupted {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "stop signalled during connect backoff",
            ));
        }
        outcome.result
    }
}

/// A bus subscriber that transparently reconnects (and re-subscribes)
/// when its TCP connection drops.
pub struct ReconnectingBusClient {
    addr: SocketAddr,
    pattern: String,
    policy: RetryPolicy,
    rng: StdRng,
    client: Option<BusClient>,
    io_timeout: Option<Duration>,
    was_connected: bool,
    reconnects: u64,
    connect_retries: u64,
}

impl ReconnectingBusClient {
    /// Creates a client for `pattern` at `addr`; nothing connects until
    /// the first receive. Backoff jitter draws from a stream seeded by
    /// `seed` and the address.
    pub fn new(
        addr: SocketAddr,
        pattern: impl Into<String>,
        policy: RetryPolicy,
        seed: u64,
    ) -> Self {
        let rng = StdRng::seed_from_u64(seed ^ site_hash(&format!("bus.reconnect:{addr}")));
        ReconnectingBusClient {
            addr,
            pattern: pattern.into(),
            policy,
            rng,
            client: None,
            io_timeout: Some(DEFAULT_IO_TIMEOUT),
            was_connected: false,
            reconnects: 0,
            connect_retries: 0,
        }
    }

    /// Overrides the socket write/handshake timeout applied to every
    /// (re)connect — see [`BusClient::connect_with_timeout`]. Defaults
    /// to [`DEFAULT_IO_TIMEOUT`]; `None` restores the pre-timeout
    /// blocking writes. A half-dead peer then burns one timeout per
    /// retry-ladder rung instead of hanging the sync thread forever.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Times the connection was re-established after a drop (the
    /// initial connect does not count).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Retries spent inside connect ladders so far.
    pub fn connect_retries(&self) -> u64 {
        self.connect_retries
    }

    /// Whether a connection is currently established.
    pub fn is_connected(&self) -> bool {
        self.client.is_some()
    }

    fn ensure_connected(&mut self, sleeper: &impl Sleeper) -> io::Result<()> {
        if self.client.is_none() {
            let addr = self.addr;
            let pattern = self.pattern.as_str();
            let io_timeout = self.io_timeout;
            let outcome = self.policy.run(&mut self.rng, sleeper, |_| {
                BusClient::connect_with_timeout(addr, pattern, io_timeout)
            });
            self.connect_retries += u64::from(outcome.retries);
            if outcome.interrupted {
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "stop signalled during reconnect backoff",
                ));
            }
            self.client = Some(outcome.result?);
            // The first successful connect is not a *re*connect; every
            // later one is.
            if self.was_connected {
                self.reconnects += 1;
            }
            self.was_connected = true;
        }
        Ok(())
    }

    /// Receives the next message, waiting up to `timeout`; dropped
    /// connections are re-established (with backoff on `sleeper`)
    /// within the same wait.
    ///
    /// Returns `None` when the wait elapses or the peer stays
    /// unreachable past the retry budget.
    pub fn recv_timeout(&mut self, timeout: Duration, sleeper: &impl Sleeper) -> Option<Message> {
        let deadline = Instant::now() + timeout;
        loop {
            self.ensure_connected(sleeper).ok()?;
            let remaining = deadline.checked_duration_since(Instant::now())?;
            match self
                .client
                .as_ref()
                .expect("connected")
                .recv_step(remaining)
            {
                RecvStep::Message(message) => return Some(message),
                RecvStep::Timeout => return None,
                RecvStep::Closed => self.client = None,
            }
        }
    }
}

impl std::fmt::Debug for ReconnectingBusClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReconnectingBusClient")
            .field("addr", &self.addr)
            .field("pattern", &self.pattern)
            .field("connected", &self.client.is_some())
            .field("reconnects", &self.reconnects)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{read_frame, write_frame};
    use crate::Topic;
    use cais_common::resilience::ThreadSleeper;
    use cais_common::Timestamp;
    use std::net::TcpListener;

    fn message(seq: u64) -> Message {
        Message {
            seq,
            topic: Topic::new("chaos.test"),
            published_at: Timestamp::EPOCH,
            payload: serde_json::json!({ "seq": seq }),
            trace: None,
        }
    }

    /// A server that completes the handshake, sends one message, and
    /// hangs up — every connection. `refuse_first` connections are
    /// dropped before the handshake.
    fn one_shot_server(refuse_first: usize) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for (i, stream) in listener.incoming().enumerate() {
                let Ok(mut stream) = stream else { continue };
                if i < refuse_first {
                    continue; // drop without handshaking
                }
                let Ok(_pattern) = read_frame(&mut stream) else {
                    continue;
                };
                let _ = write_frame(&mut stream, &[]); // handshake ack
                let bytes = serde_json::to_vec(&message(i as u64)).unwrap();
                let _ = write_frame(&mut stream, &bytes);
                // connection drops here
            }
        });
        addr
    }

    #[test]
    fn connect_with_retry_rides_out_refused_handshakes() {
        let addr = one_shot_server(2);
        let client =
            BusClient::connect_with_retry(addr, "#", &RetryPolicy::fast(5), 42, &ThreadSleeper)
                .expect("connects within the budget");
        assert!(client.recv_timeout(Duration::from_secs(5)).is_some());
    }

    #[test]
    fn reconnecting_client_resumes_after_drops() {
        let addr = one_shot_server(0);
        let mut client = ReconnectingBusClient::new(addr, "#", RetryPolicy::fast(5), 42);
        let sleeper = ThreadSleeper;
        // Each connection serves exactly one message, so three receives
        // force two reconnects.
        for _ in 0..3 {
            assert!(client
                .recv_timeout(Duration::from_secs(5), &sleeper)
                .is_some());
        }
        assert!(
            client.reconnects() >= 2,
            "reconnects: {}",
            client.reconnects()
        );
        assert!(client.is_connected());
    }

    #[test]
    fn silent_peer_times_out_each_handshake_instead_of_hanging() {
        // A listener that accepts and never acks: every rung of the
        // retry ladder must fail on the configured handshake timeout,
        // so the whole receive returns within the budget rather than
        // pinning the sync thread on a dead socket.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming() {
                held.push(stream); // accept, hold open, never reply
            }
        });
        let mut client = ReconnectingBusClient::new(addr, "#", RetryPolicy::fast(2), 42)
            .with_io_timeout(Some(Duration::from_millis(100)));
        let started = std::time::Instant::now();
        assert!(client
            .recv_timeout(Duration::from_secs(30), &ThreadSleeper)
            .is_none());
        assert!(!client.is_connected());
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "handshakes must fail on the 100ms timeout, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn unreachable_peer_exhausts_the_budget() {
        // A bound-then-dropped listener leaves the port closed.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let mut client = ReconnectingBusClient::new(addr, "#", RetryPolicy::fast(2), 42);
        assert!(client
            .recv_timeout(Duration::from_millis(500), &ThreadSleeper)
            .is_none());
        assert!(!client.is_connected());
        assert_eq!(client.connect_retries(), 1);
    }
}
