//! Hierarchical topics and subscription patterns.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dot-separated hierarchical topic name, such as `misp.event.created`.
///
/// # Examples
///
/// ```
/// use cais_bus::Topic;
///
/// let t = Topic::new("misp.event.created");
/// assert_eq!(t.segments().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Topic(String);

impl Topic {
    /// Creates a topic from its dotted name.
    pub fn new(name: impl Into<String>) -> Self {
        Topic(name.into())
    }

    /// The dotted name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterates over the dot-separated segments.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Topic {
    fn from(s: &str) -> Self {
        Topic::new(s)
    }
}

impl From<String> for Topic {
    fn from(s: String) -> Self {
        Topic(s)
    }
}

/// A subscription pattern over topics.
///
/// Segments match literally; `*` matches exactly one segment; a trailing
/// `#` matches any remainder (including none). The bare pattern `#`
/// matches every topic.
///
/// # Examples
///
/// ```
/// use cais_bus::{Topic, TopicPattern};
///
/// let p = TopicPattern::new("misp.event.*");
/// assert!(p.matches(&Topic::new("misp.event.created")));
/// assert!(!p.matches(&Topic::new("misp.attribute.created")));
/// assert!(!p.matches(&Topic::new("misp.event.created.extra")));
///
/// let all = TopicPattern::new("misp.#");
/// assert!(all.matches(&Topic::new("misp.event.created.extra")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TopicPattern(String);

impl TopicPattern {
    /// Creates a pattern.
    pub fn new(pattern: impl Into<String>) -> Self {
        TopicPattern(pattern.into())
    }

    /// The pattern text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether the pattern matches a topic.
    pub fn matches(&self, topic: &Topic) -> bool {
        let mut pattern_segments = self.0.split('.').peekable();
        let mut topic_segments = topic.segments();
        loop {
            match (pattern_segments.next(), topic_segments.next()) {
                (None, None) => return true,
                (Some("#"), _) => return pattern_segments.next().is_none(),
                (Some("*"), Some(_)) => {}
                (Some(p), Some(t)) if p == t => {}
                _ => return false,
            }
        }
    }
}

impl From<&str> for TopicPattern {
    fn from(s: &str) -> Self {
        TopicPattern::new(s)
    }
}

impl fmt::Display for TopicPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches(pattern: &str, topic: &str) -> bool {
        TopicPattern::new(pattern).matches(&Topic::new(topic))
    }

    #[test]
    fn literal_match() {
        assert!(matches("a.b.c", "a.b.c"));
        assert!(!matches("a.b.c", "a.b.d"));
        assert!(!matches("a.b.c", "a.b"));
        assert!(!matches("a.b", "a.b.c"));
    }

    #[test]
    fn single_segment_wildcard() {
        assert!(matches("a.*.c", "a.b.c"));
        assert!(matches("a.*.c", "a.x.c"));
        assert!(!matches("a.*.c", "a.c"));
        assert!(!matches("a.*", "a.b.c"));
        assert!(matches("*", "anything"));
        assert!(!matches("*", "two.segments"));
    }

    #[test]
    fn multi_segment_wildcard() {
        assert!(matches("#", "a"));
        assert!(matches("#", "a.b.c"));
        assert!(matches("a.#", "a.b.c"));
        assert!(matches("a.#", "a"));
        assert!(!matches("a.#", "b.a"));
        // `#` must be terminal to act as a tail wildcard.
        assert!(!matches("a.#.c", "a.b.c"));
    }

    #[test]
    fn hash_matches_empty_tail() {
        // "a.#" matching bare "a": pattern `#` consumes nothing.
        assert!(matches("a.#", "a"));
    }
}
