//! A length-prefixed TCP transport bridging a [`Broker`] across
//! processes.
//!
//! The wire format is a 4-byte big-endian length followed by a JSON
//! [`Message`]. A client connects, sends one frame containing its
//! subscription pattern as a JSON string, and then receives every
//! matching message the broker publishes — the same shape as MISP's
//! zmq PUB socket.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use cais_common::frame::TraceHeader;
use cais_common::serve::{
    self, FrameService, NoServeMetrics, Outbox, ServeConfig, ServeHandle, ServeMetrics,
};
use cais_telemetry::Counter;

// The framing lives in cais-common so other TCP surfaces (the
// telemetry scrape endpoint) share one wire format; re-exported here
// for compatibility.
pub use cais_common::frame::{read_frame, write_frame, MAX_FRAME};

use crate::broker::Broker;
use crate::message::Message;

/// A TCP bridge publishing a broker's traffic to remote subscribers.
///
/// # Examples
///
/// ```
/// use cais_bus::{Broker, Topic};
/// use cais_bus::tcp::{BusServer, BusClient};
///
/// let broker = Broker::new();
/// let server = BusServer::bind(broker.clone(), "127.0.0.1:0")?;
/// let client = BusClient::connect(server.local_addr(), "misp.#")?;
/// broker.publish(Topic::new("misp.event.created"), serde_json::json!(7));
/// let msg = client.recv_timeout(std::time::Duration::from_secs(2)).expect("delivered");
/// assert_eq!(msg.payload, serde_json::json!(7));
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct BusServer {
    local_addr: SocketAddr,
    dropped: Arc<AtomicU64>,
}

/// Tuning for a [`BusServer`].
#[derive(Debug, Clone, Default)]
pub struct BusServerOptions {
    /// Bound on each client's send queue: when a slow client's queue
    /// exceeds this, the oldest messages are dropped (and accounted)
    /// rather than letting the queue grow without limit. `None` means
    /// unbounded, the legacy behaviour.
    pub max_queued: Option<usize>,
    /// When set, dropped messages are also counted in the registry
    /// under `bus_tcp_dropped_total`.
    pub registry: Option<cais_telemetry::Registry>,
}

impl BusServer {
    /// Binds a listener and serves broker traffic to every client that
    /// connects. The accept loop runs on a background thread for the
    /// lifetime of the process.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn bind(broker: Broker, addr: &str) -> io::Result<Self> {
        BusServer::bind_with(broker, addr, BusServerOptions::default())
    }

    /// [`BusServer::bind`] with an explicit send-queue bound and
    /// optional drop telemetry. Serves on the multiplexed core
    /// ([`cais_common::serve`]); use [`BusServer::bind_on_core`] for
    /// explicit core configuration, `serve_*` metrics and graceful
    /// shutdown.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn bind_with(broker: Broker, addr: &str, options: BusServerOptions) -> io::Result<Self> {
        let (server, handle) = BusServer::bind_on_core(
            broker,
            addr,
            options,
            ServeConfig::default(),
            NoServeMetrics,
        )?;
        // Dropping the handle leaves the core's threads detached, which
        // preserves this method's historical serve-forever contract.
        drop(handle);
        Ok(server)
    }

    /// [`BusServer::bind_with`] on an explicitly configured serving
    /// core, returning the [`ServeHandle`] alongside the server for
    /// counters and graceful shutdown. Pair with
    /// `cais_telemetry::RegistryServeMetrics::new(&registry, "bus")` to
    /// surface the bridge's `serve_*` family.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn bind_on_core<M: ServeMetrics>(
        broker: Broker,
        addr: &str,
        options: BusServerOptions,
        config: ServeConfig,
        metrics: M,
    ) -> io::Result<(Self, ServeHandle)> {
        let dropped = Arc::new(AtomicU64::new(0));
        let service = BusService {
            broker,
            max_queued: options.max_queued,
            dropped: Arc::clone(&dropped),
            counter: options
                .registry
                .as_ref()
                .map(|r| r.counter("bus_tcp_dropped_total")),
        };
        let handle = serve::serve(addr, config, service, metrics)?;
        let server = BusServer {
            local_addr: handle.local_addr(),
            dropped,
        };
        Ok((server, handle))
    }

    /// The historical thread-per-connection accept loop, kept as the
    /// measured baseline for the multiplexed core and for the
    /// serving-equivalence tests.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn bind_thread_per_conn(
        broker: Broker,
        addr: &str,
        options: BusServerOptions,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let dropped = Arc::new(AtomicU64::new(0));
        let accounting = Arc::clone(&dropped);
        thread::Builder::new()
            .name("cais-bus-server".into())
            .spawn(move || accept_loop(listener, broker, options, accounting))
            .expect("spawn bus server thread");
        Ok(BusServer {
            local_addr,
            dropped,
        })
    }

    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Messages dropped across all clients because a bounded send
    /// queue overflowed.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for BusServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BusServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    broker: Broker,
    options: BusServerOptions,
    dropped: Arc<AtomicU64>,
) {
    let counter = options
        .registry
        .as_ref()
        .map(|r| r.counter("bus_tcp_dropped_total"));
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let broker = broker.clone();
        let dropped = Arc::clone(&dropped);
        let counter = counter.clone();
        let max_queued = options.max_queued;
        let _ = thread::Builder::new()
            .name("cais-bus-conn".into())
            .spawn(move || {
                let _ = serve_client(stream, &broker, max_queued, &dropped, counter.as_ref());
            });
    }
}

fn serve_client(
    mut stream: TcpStream,
    broker: &Broker,
    max_queued: Option<usize>,
    dropped: &AtomicU64,
    counter: Option<&Counter>,
) -> io::Result<()> {
    // First frame: the subscription pattern as a JSON string.
    let frame = read_frame(&mut stream)?;
    let pattern: String = serde_json::from_slice(&frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let subscription = broker.subscribe(pattern.as_str());
    // Ack the handshake with an empty frame so the client knows the
    // subscription is live before it lets its caller publish.
    write_frame(&mut stream, &[])?;
    loop {
        // Enforce the send-queue bound before blocking: shed the oldest
        // messages a slow client will never catch up on, and account
        // for every one shed.
        if let Some(bound) = max_queued {
            let mut excess = subscription.queued().saturating_sub(bound);
            while excess > 0 && subscription.try_recv().is_some() {
                dropped.fetch_add(1, Ordering::Relaxed);
                if let Some(counter) = counter {
                    counter.inc();
                }
                excess -= 1;
            }
        }
        // Block in short slices so a closed socket is noticed eventually.
        if let Some(message) = subscription.recv_timeout(Duration::from_millis(200)) {
            let bytes = serde_json::to_vec(&message)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            write_frame(&mut stream, &bytes)?;
        } else {
            // Probe liveness with a zero-length keepalive frame.
            write_frame(&mut stream, &[])?;
        }
    }
}

/// How often a streaming connection with no traffic probes liveness
/// with a zero-length keepalive frame — the cadence the
/// thread-per-connection loop's 200 ms `recv_timeout` always had.
const KEEPALIVE_EVERY: Duration = Duration::from_millis(200);

/// Messages fanned out to one subscriber per sweep; bounds how long a
/// busy subscription can monopolize its worker shard.
const FANOUT_BUDGET: usize = 32;

/// One bridged subscriber's state on the multiplexed core.
enum BusConn {
    /// Waiting for the first frame: the subscription pattern.
    AwaitingPattern,
    /// Handshake done; the broker's traffic streams out.
    Streaming {
        subscription: crate::broker::Subscription,
        last_send: Instant,
    },
}

/// The PUB-style bridge protocol as a [`FrameService`]: a pattern
/// handshake, then push-only fan-out driven by [`FrameService::poll`]
/// (which the core skips while the connection's outbound queue is over
/// the backpressure bound — a slow consumer throttles its own stream).
struct BusService {
    broker: Broker,
    max_queued: Option<usize>,
    dropped: Arc<AtomicU64>,
    counter: Option<Counter>,
}

impl FrameService for BusService {
    type Conn = BusConn;

    fn on_connect(&self, _peer: SocketAddr) -> Self::Conn {
        BusConn::AwaitingPattern
    }

    fn on_frame(
        &self,
        conn: &mut Self::Conn,
        _header: Option<TraceHeader>,
        payload: Vec<u8>,
        out: &mut Outbox,
    ) {
        match conn {
            BusConn::AwaitingPattern => {
                let Ok(pattern) = serde_json::from_slice::<String>(&payload) else {
                    out.close();
                    return;
                };
                let subscription = self.broker.subscribe(pattern.as_str());
                // Ack the handshake with an empty frame so the client
                // knows the subscription is live before it lets its
                // caller publish.
                out.push_owned(Vec::new());
                *conn = BusConn::Streaming {
                    subscription,
                    last_send: Instant::now(),
                };
            }
            // The baseline loop never read after the handshake, so
            // frames a client sends mid-stream are silently ignored.
            BusConn::Streaming { .. } => {}
        }
    }

    fn poll(&self, conn: &mut Self::Conn, now: Instant, out: &mut Outbox) {
        let BusConn::Streaming {
            subscription,
            last_send,
        } = conn
        else {
            return;
        };
        // Enforce the send-queue bound first: shed the oldest messages
        // a slow client will never catch up on, and account for every
        // one shed.
        if let Some(bound) = self.max_queued {
            let mut excess = subscription.queued().saturating_sub(bound);
            while excess > 0 && subscription.try_recv().is_some() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                if let Some(counter) = &self.counter {
                    counter.inc();
                }
                excess -= 1;
            }
        }
        let mut sent = 0;
        while sent < FANOUT_BUDGET {
            let Some(message) = subscription.try_recv() else {
                break;
            };
            let Ok(bytes) = serde_json::to_vec(&message) else {
                out.close();
                return;
            };
            out.push_owned(bytes);
            *last_send = now;
            sent += 1;
        }
        if sent == 0 && now.duration_since(*last_send) >= KEEPALIVE_EVERY {
            // Probe liveness with a zero-length keepalive frame.
            out.push_owned(Vec::new());
            *last_send = now;
        }
    }
}

/// Default socket write/handshake timeout for [`BusClient::connect`].
/// A hung or half-dead server fails the handshake with a timeout error
/// instead of blocking the subscriber forever.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A remote subscriber receiving bus messages over TCP.
pub struct BusClient {
    stream: TcpStream,
}

impl BusClient {
    /// Connects and registers the given subscription pattern, with
    /// [`DEFAULT_IO_TIMEOUT`] on socket writes.
    ///
    /// # Errors
    ///
    /// Returns connection or handshake I/O errors.
    pub fn connect(addr: SocketAddr, pattern: &str) -> io::Result<Self> {
        Self::connect_with_timeout(addr, pattern, Some(DEFAULT_IO_TIMEOUT))
    }

    /// [`BusClient::connect`] with an explicit socket write/handshake
    /// timeout (`None` blocks writes indefinitely, the pre-timeout
    /// behaviour; the handshake ack read then falls back to a 10s
    /// guard). Receive timeouts are per-call — see
    /// [`BusClient::recv_timeout`] — and unaffected by this setting.
    ///
    /// # Errors
    ///
    /// Returns connection or handshake I/O errors.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        pattern: &str,
        timeout: Option<Duration>,
    ) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_write_timeout(timeout)?;
        let frame = serde_json::to_vec(pattern)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        write_frame(&mut stream, &frame)?;
        // Wait for the server's empty ack frame: once it arrives the
        // subscription is registered and no published message can race
        // past it.
        stream.set_read_timeout(Some(timeout.unwrap_or(Duration::from_secs(10))))?;
        let ack = read_frame(&mut stream)?;
        if !ack.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected empty handshake ack",
            ));
        }
        Ok(BusClient { stream })
    }

    /// Receives the next message, waiting up to `timeout`.
    ///
    /// Returns `None` on timeout or when the connection closed. Use
    /// [`BusClient::recv_step`] to tell the two apart (a reconnecting
    /// wrapper must).
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        match self.recv_step(timeout) {
            RecvStep::Message(message) => Some(message),
            RecvStep::Timeout | RecvStep::Closed => None,
        }
    }

    /// Receives the next message, distinguishing an idle timeout from a
    /// lost connection.
    pub fn recv_step(&self, timeout: Duration) -> RecvStep {
        let deadline = std::time::Instant::now() + timeout;
        let mut stream = &self.stream;
        loop {
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return RecvStep::Timeout;
            };
            if self.stream.set_read_timeout(Some(remaining)).is_err() {
                return RecvStep::Closed;
            }
            match read_frame(&mut stream) {
                Ok(frame) if frame.is_empty() => continue, // keepalive
                Ok(frame) => match serde_json::from_slice(&frame) {
                    Ok(message) => return RecvStep::Message(message),
                    Err(_) => return RecvStep::Closed,
                },
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return RecvStep::Timeout
                }
                Err(_) => return RecvStep::Closed,
            }
        }
    }
}

/// One step of [`BusClient::recv_step`].
#[derive(Debug)]
pub enum RecvStep {
    /// A message arrived.
    Message(Message),
    /// The wait elapsed with the connection still healthy.
    Timeout,
    /// The connection is gone (closed, reset, or corrupt frame).
    Closed,
}

impl std::fmt::Debug for BusClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BusClient")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::Topic;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(buf.len(), 9);
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
    }

    #[test]
    fn frame_rejects_oversize() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn silent_server_fails_handshake_instead_of_hanging() {
        // A listener that accepts and never acks the subscription: the
        // handshake must fail with a timeout, not block forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = thread::spawn(move || listener.accept());
        let error =
            BusClient::connect_with_timeout(addr, "misp.#", Some(Duration::from_millis(100)))
                .expect_err("silent server must time out the handshake");
        assert!(
            matches!(
                error.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "unexpected error kind: {error:?}"
        );
        drop(hold);
    }

    #[test]
    fn frame_eof_mid_payload_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6); // cut payload short
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn end_to_end_over_tcp() {
        let broker = Broker::new();
        let server = BusServer::bind(broker.clone(), "127.0.0.1:0").unwrap();
        let client = BusClient::connect(server.local_addr(), "misp.#").unwrap();
        // Give the server a moment to register the subscription.
        std::thread::sleep(Duration::from_millis(100));
        broker.publish(
            Topic::new("misp.event.created"),
            serde_json::json!({"id": 1}),
        );
        broker.publish(Topic::new("other.topic"), serde_json::json!({"id": 2}));
        broker.publish(
            Topic::new("misp.event.updated"),
            serde_json::json!({"id": 3}),
        );

        let first = client.recv_timeout(Duration::from_secs(5)).expect("first");
        assert_eq!(first.payload["id"], 1);
        let second = client.recv_timeout(Duration::from_secs(5)).expect("second");
        assert_eq!(second.payload["id"], 3);
    }

    #[test]
    fn bounded_queue_sheds_oldest_and_accounts_drops() {
        let broker = Broker::new();
        let registry = cais_telemetry::Registry::new();
        let server = BusServer::bind_with(
            broker.clone(),
            "127.0.0.1:0",
            BusServerOptions {
                max_queued: Some(5),
                registry: Some(registry.clone()),
            },
        )
        .unwrap();
        let client = BusClient::connect(server.local_addr(), "#").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // A burst far past the bound, faster than one-frame-per-loop
        // delivery can drain it.
        for i in 0..200 {
            broker.publish(Topic::new("burst.topic"), serde_json::json!({ "i": i }));
        }
        let mut received = 0;
        while client.recv_timeout(Duration::from_millis(300)).is_some() {
            received += 1;
        }
        assert!(received < 200, "nothing was shed");
        assert!(server.dropped() > 0);
        assert_eq!(
            registry.snapshot().counters["bus_tcp_dropped_total"],
            server.dropped()
        );
    }

    #[test]
    fn client_timeout_when_idle() {
        let broker = Broker::new();
        let server = BusServer::bind(broker, "127.0.0.1:0").unwrap();
        let client = BusClient::connect(server.local_addr(), "#").unwrap();
        assert!(client.recv_timeout(Duration::from_millis(300)).is_none());
    }

    #[test]
    fn trace_context_survives_the_tcp_bridge() {
        let broker = Broker::new();
        let tracer = cais_telemetry::Tracer::new();
        broker.set_tracer(&tracer);
        let server = BusServer::bind(broker.clone(), "127.0.0.1:0").unwrap();
        let client = BusClient::connect(server.local_addr(), "#").unwrap();
        std::thread::sleep(Duration::from_millis(100));

        let parent = tracer.root("ingress", "feed_poll");
        let parent_ctx = parent.context();
        broker.publish_traced(
            Topic::new("misp.event.created"),
            serde_json::json!({"id": 1}),
            Some(parent_ctx),
        );
        drop(parent);

        let message = client
            .recv_timeout(Duration::from_secs(5))
            .expect("bridged");
        let trace = message.trace.expect("trace crossed the wire");
        assert_eq!(trace.trace_id, parent_ctx.trace_id);
        assert!(trace.sampled);
    }
}
