//! # cais-bus
//!
//! A topic-based publish/subscribe message bus, standing in for the
//! zeroMQ channel the paper's MISP instance uses to push events to the
//! Heuristic Component, and for the socket.io channel that feeds the
//! dashboard.
//!
//! * [`Broker`] — in-process bus: hierarchical topics, pattern
//!   subscriptions, lock-free delivery via crossbeam channels.
//! * [`tcp`] — a length-prefixed TCP transport bridging a broker across
//!   processes.
//!
//! # Examples
//!
//! ```
//! use cais_bus::{Broker, Topic};
//!
//! let broker = Broker::new();
//! let sub = broker.subscribe("misp.event.*");
//! broker.publish(
//!     Topic::new("misp.event.created"),
//!     serde_json::json!({"event_id": 17}),
//! );
//! let msg = sub.try_recv().expect("delivered");
//! assert_eq!(msg.topic.as_str(), "misp.event.created");
//! assert_eq!(msg.payload["event_id"], 17);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod message;
pub mod resilient;
pub mod tcp;
mod topic;

pub use broker::{Broker, Subscription};
pub use message::Message;
pub use resilient::ReconnectingBusClient;
pub use topic::{Topic, TopicPattern};

/// Well-known topics used across the platform, mirroring MISP's zmq
/// channel names plus CAIS-specific ones.
pub mod topics {
    /// A MISP event was created or updated.
    pub const MISP_EVENT: &str = "misp.event.created";
    /// A stored MISP event changed (attributes or tags applied).
    pub const MISP_EVENT_UPDATED: &str = "misp.event.updated";
    /// A stored MISP event was published for onward sharing.
    pub const MISP_EVENT_PUBLISHED: &str = "misp.event.published";
    /// A composed IoC entered the operational module.
    pub const CIOC_RECEIVED: &str = "cais.cioc.received";
    /// An enriched IoC is available.
    pub const EIOC_READY: &str = "cais.eioc.ready";
    /// A reduced IoC should be shown on the dashboard.
    pub const RIOC_PUBLISHED: &str = "cais.rioc.published";
    /// An infrastructure alarm fired.
    pub const ALARM_RAISED: &str = "infra.alarm.raised";
    /// An armed indicator pattern matched live observations.
    pub const DETECTION_FIRED: &str = "cais.detection.fired";
}
