//! The in-process publish/subscribe broker.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cais_common::Timestamp;
use cais_telemetry::{labeled, Counter, Gauge, Registry, TraceContext, Tracer};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::RwLock;

use crate::message::Message;
use crate::topic::{Topic, TopicPattern};

struct Subscriber {
    id: u64,
    pattern: TopicPattern,
    sender: Sender<Message>,
}

/// Cached telemetry handles for an instrumented broker.
///
/// Counters count *messages*, not publish calls, so the serial path
/// (one `publish` per message) and the parallel path (one
/// `publish_batch` per round) produce identical totals for the same
/// traffic.
struct BrokerMetrics {
    registry: Registry,
    published_total: Counter,
    delivered_total: Counter,
    evicted_total: Counter,
    subscribers: Gauge,
    per_topic: RwLock<HashMap<String, Counter>>,
}

impl BrokerMetrics {
    fn new(registry: &Registry) -> Self {
        BrokerMetrics {
            registry: registry.clone(),
            published_total: registry.counter("bus_published_total"),
            delivered_total: registry.counter("bus_delivered_total"),
            evicted_total: registry.counter("bus_subscribers_evicted_total"),
            subscribers: registry.gauge("bus_subscribers"),
            per_topic: RwLock::new(HashMap::new()),
        }
    }

    /// The per-topic published counter, cached so the hot path skips
    /// the label-string formatting after first use.
    fn topic_counter(&self, topic: &str) -> Counter {
        if let Some(c) = self.per_topic.read().get(topic) {
            return c.clone();
        }
        let counter = self
            .registry
            .counter(&labeled("bus_published_total", &[("topic", topic)]));
        self.per_topic
            .write()
            .entry(topic.to_owned())
            .or_insert(counter)
            .clone()
    }

    fn on_publish(&self, topic: &str, messages: u64, delivered: u64, evicted: u64) {
        self.published_total.add(messages);
        self.topic_counter(topic).add(messages);
        self.delivered_total.add(delivered);
        if evicted > 0 {
            self.evicted_total.add(evicted);
        }
    }
}

struct Inner {
    subscribers: RwLock<Vec<Subscriber>>,
    replay: RwLock<std::collections::VecDeque<Message>>,
    replay_cap: usize,
    next_seq: AtomicU64,
    next_subscriber_id: AtomicU64,
    metrics: RwLock<Option<Arc<BrokerMetrics>>>,
    tracer: RwLock<Option<Tracer>>,
}

/// A cheaply clonable handle to an in-process message bus.
///
/// Publishing never blocks: messages are fanned out over unbounded
/// channels to every subscription whose pattern matches. Dropped
/// subscriptions are pruned lazily on the next publish.
///
/// # Examples
///
/// ```
/// use cais_bus::{Broker, Topic};
///
/// let broker = Broker::new();
/// let all = broker.subscribe("#");
/// broker.publish(Topic::new("a.b"), serde_json::json!(1));
/// assert_eq!(all.try_recv().unwrap().payload, serde_json::json!(1));
/// ```
#[derive(Clone)]
pub struct Broker {
    inner: Arc<Inner>,
}

impl Broker {
    /// Creates a new broker with no subscribers and a replay buffer of
    /// 1024 messages.
    pub fn new() -> Self {
        Broker::with_replay_capacity(1_024)
    }

    /// Creates a broker retaining the last `replay_cap` messages for
    /// [`Broker::subscribe_with_replay`] (0 disables replay).
    pub fn with_replay_capacity(replay_cap: usize) -> Self {
        Broker {
            inner: Arc::new(Inner {
                subscribers: RwLock::new(Vec::new()),
                replay: RwLock::new(std::collections::VecDeque::new()),
                replay_cap,
                next_seq: AtomicU64::new(0),
                next_subscriber_id: AtomicU64::new(0),
                metrics: RwLock::new(None),
                tracer: RwLock::new(None),
            }),
        }
    }

    /// Attaches telemetry: subsequent publishes record
    /// `bus_published_total` (plus a per-topic labeled series),
    /// `bus_delivered_total` and `bus_subscribers_evicted_total` into
    /// the registry. Counters count messages, not publish calls, so
    /// batched and per-message publishing report identically.
    pub fn instrument(&self, registry: &Registry) {
        *self.inner.metrics.write() = Some(Arc::new(BrokerMetrics::new(registry)));
    }

    fn metrics(&self) -> Option<Arc<BrokerMetrics>> {
        self.inner.metrics.read().clone()
    }

    /// Attaches causal tracing: subsequent publishes record
    /// `bus_publish`/`bus_deliver` spans into the `bus` ring and stamp
    /// the outgoing [`Message::trace`] envelope field, so subscribers
    /// continue the publisher's trace.
    pub fn set_tracer(&self, tracer: &Tracer) {
        *self.inner.tracer.write() = Some(tracer.clone());
    }

    fn tracer(&self) -> Option<Tracer> {
        self.inner.tracer.read().clone()
    }

    /// Samples the current per-pattern queue depths and live
    /// subscription count into the attached registry
    /// (`bus_queue_depth{pattern=...}` and `bus_subscribers` gauges).
    /// Call it at natural checkpoints — e.g. once per ingestion round;
    /// a no-op until [`Broker::instrument`] is called.
    pub fn sample_queue_depths(&self) {
        let Some(metrics) = self.metrics() else {
            return;
        };
        let mut depths: HashMap<String, i64> = HashMap::new();
        let mut live = 0i64;
        {
            let subscribers = self.inner.subscribers.read();
            for sub in subscribers.iter() {
                live += 1;
                *depths.entry(sub.pattern.as_str().to_owned()).or_insert(0) +=
                    sub.sender.len() as i64;
            }
        }
        metrics.subscribers.set(live);
        for (pattern, depth) in depths {
            metrics
                .registry
                .gauge(&labeled("bus_queue_depth", &[("pattern", &pattern)]))
                .set(depth);
        }
    }

    /// Subscribes to every topic matching the pattern, pre-loading the
    /// queue with the retained history that matches — how a dashboard
    /// that reconnects catches up on rIoCs it missed.
    pub fn subscribe_with_replay(&self, pattern: impl Into<TopicPattern>) -> Subscription {
        let subscription = self.subscribe(pattern);
        {
            let replay = self.inner.replay.read();
            let subscribers = self.inner.subscribers.read();
            if let Some(me) = subscribers.iter().find(|s| s.id == subscription.id) {
                for message in replay.iter() {
                    if me.pattern.matches(&message.topic) {
                        let _ = me.sender.send(message.clone());
                    }
                }
            }
        }
        subscription
    }

    /// Subscribes to every topic matching the pattern.
    pub fn subscribe(&self, pattern: impl Into<TopicPattern>) -> Subscription {
        let (sender, receiver) = channel::unbounded();
        let id = self
            .inner
            .next_subscriber_id
            .fetch_add(1, Ordering::Relaxed);
        let pattern = pattern.into();
        self.inner.subscribers.write().push(Subscriber {
            id,
            pattern: pattern.clone(),
            sender,
        });
        Subscription {
            id,
            pattern,
            receiver,
            broker: Arc::downgrade(&self.inner),
        }
    }

    /// Publishes a JSON payload under a topic, returning the number of
    /// subscriptions it was delivered to.
    pub fn publish(&self, topic: Topic, payload: serde_json::Value) -> usize {
        self.publish_traced(topic, payload, None)
    }

    /// [`Broker::publish`] continuing the caller's trace: the publish
    /// span becomes a child of `parent` (or a fresh root when `None` /
    /// untraced), and the outgoing message envelope carries the span's
    /// context to every subscriber.
    pub fn publish_traced(
        &self,
        topic: Topic,
        payload: serde_json::Value,
        parent: Option<TraceContext>,
    ) -> usize {
        let tracer = self.tracer();
        let mut publish_span = tracer
            .as_ref()
            .map(|t| t.child_of(parent, "bus", "bus_publish"));
        let trace = publish_span
            .as_ref()
            .filter(|s| s.sampled())
            .map(|s| s.context());
        let topic_name = topic.clone();
        let message = Message {
            seq: self.inner.next_seq.fetch_add(1, Ordering::Relaxed),
            topic,
            published_at: Timestamp::now(),
            payload,
            trace,
        };
        let mut delivered = 0;
        let mut dead: Vec<u64> = Vec::new();
        {
            let _deliver_span = match (&tracer, trace) {
                (Some(t), Some(ctx)) => Some(t.child(ctx, "bus", "bus_deliver")),
                _ => None,
            };
            let subscribers = self.inner.subscribers.read();
            for sub in subscribers.iter() {
                if sub.pattern.matches(&message.topic) {
                    if sub.sender.send(message.clone()).is_ok() {
                        delivered += 1;
                    } else {
                        dead.push(sub.id);
                    }
                }
            }
        }
        // Fan-out first, then retain: the retained copy is the original,
        // so a publish never deep-clones the payload for the buffer.
        if self.inner.replay_cap > 0 {
            let mut replay = self.inner.replay.write();
            if replay.len() == self.inner.replay_cap {
                replay.pop_front();
            }
            replay.push_back(message);
        }
        if !dead.is_empty() {
            self.inner
                .subscribers
                .write()
                .retain(|s| !dead.contains(&s.id));
        }
        if let Some(metrics) = self.metrics() {
            metrics.on_publish(topic_name.as_str(), 1, delivered as u64, dead.len() as u64);
        }
        if let Some(span) = publish_span.as_mut() {
            span.field("topic", topic_name.as_str());
            span.field("delivered", delivered);
        }
        delivered
    }

    /// Publishes a batch of JSON payloads under one topic, taking the
    /// subscriber lock once for the whole batch instead of once per
    /// message — the fast path for the parallel ingestion pipeline,
    /// which accumulates a round's messages and flushes them together.
    ///
    /// Messages keep their relative order and receive consecutive
    /// sequence numbers. Returns the total number of deliveries.
    pub fn publish_batch(
        &self,
        topic: Topic,
        payloads: impl IntoIterator<Item = serde_json::Value>,
    ) -> usize {
        self.publish_batch_traced(topic, payloads, None)
    }

    /// [`Broker::publish_batch`] continuing the caller's trace. One
    /// `bus_publish` span covers the whole batch (spans are ring
    /// events, not counters, so batching does not distort the
    /// message-level counter contract).
    pub fn publish_batch_traced(
        &self,
        topic: Topic,
        payloads: impl IntoIterator<Item = serde_json::Value>,
        parent: Option<TraceContext>,
    ) -> usize {
        let tracer = self.tracer();
        let mut publish_span = tracer
            .as_ref()
            .map(|t| t.child_of(parent, "bus", "bus_publish"));
        let trace = publish_span
            .as_ref()
            .filter(|s| s.sampled())
            .map(|s| s.context());
        let published_at = Timestamp::now();
        let messages: Vec<Message> = payloads
            .into_iter()
            .map(|payload| Message {
                seq: self.inner.next_seq.fetch_add(1, Ordering::Relaxed),
                topic: topic.clone(),
                published_at,
                payload,
                trace,
            })
            .collect();
        if messages.is_empty() {
            return 0;
        }
        let mut delivered = 0;
        let mut dead: Vec<u64> = Vec::new();
        {
            let _deliver_span = match (&tracer, trace) {
                (Some(t), Some(ctx)) => Some(t.child(ctx, "bus", "bus_deliver")),
                _ => None,
            };
            let subscribers = self.inner.subscribers.read();
            for sub in subscribers.iter() {
                if !sub.pattern.matches(&topic) {
                    continue;
                }
                for message in &messages {
                    if sub.sender.send(message.clone()).is_ok() {
                        delivered += 1;
                    } else {
                        dead.push(sub.id);
                        break;
                    }
                }
            }
        }
        // As in [`Broker::publish`], the replay buffer takes the batch by
        // move after fan-out. Only the last `replay_cap` messages can
        // survive, so the earlier ones skip the buffer entirely.
        let batch_len = messages.len() as u64;
        if self.inner.replay_cap > 0 {
            let skip = messages.len().saturating_sub(self.inner.replay_cap);
            let mut replay = self.inner.replay.write();
            for message in messages.into_iter().skip(skip) {
                if replay.len() == self.inner.replay_cap {
                    replay.pop_front();
                }
                replay.push_back(message);
            }
        }
        if !dead.is_empty() {
            self.inner
                .subscribers
                .write()
                .retain(|s| !dead.contains(&s.id));
        }
        if let Some(metrics) = self.metrics() {
            metrics.on_publish(
                topic.as_str(),
                batch_len,
                delivered as u64,
                dead.len() as u64,
            );
        }
        if let Some(span) = publish_span.as_mut() {
            span.field("topic", topic.as_str());
            span.field("messages", batch_len);
            span.field("delivered", delivered);
        }
        delivered
    }

    /// Publishes a batch of serializable values via
    /// [`Broker::publish_batch`], encoding each to JSON first.
    ///
    /// # Errors
    ///
    /// Returns the first encoding error; nothing is published unless
    /// every value encodes.
    pub fn publish_values<T: serde::Serialize>(
        &self,
        topic: impl Into<Topic>,
        values: &[T],
    ) -> Result<usize, serde_json::Error> {
        let payloads: Vec<serde_json::Value> = values
            .iter()
            .map(serde_json::to_value)
            .collect::<Result<_, _>>()?;
        Ok(self.publish_batch(topic.into(), payloads))
    }

    /// Publishes a serializable value, encoding it to JSON first.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error when encoding fails.
    pub fn publish_value<T: serde::Serialize>(
        &self,
        topic: impl Into<Topic>,
        value: &T,
    ) -> Result<usize, serde_json::Error> {
        Ok(self.publish(topic.into(), serde_json::to_value(value)?))
    }

    /// Number of live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.inner.subscribers.read().len()
    }
}

impl Default for Broker {
    fn default() -> Self {
        Broker::new()
    }
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("subscribers", &self.subscriber_count())
            .finish()
    }
}

/// A handle to a subscription: an unbounded queue of matching messages.
///
/// Dropping the subscription unsubscribes (lazily).
pub struct Subscription {
    id: u64,
    pattern: TopicPattern,
    receiver: Receiver<Message>,
    broker: std::sync::Weak<Inner>,
}

impl Subscription {
    /// The pattern this subscription was created with.
    pub fn pattern(&self) -> &TopicPattern {
        &self.pattern
    }

    /// Receives the next message without blocking.
    pub fn try_recv(&self) -> Option<Message> {
        match self.receiver.try_recv() {
            Ok(msg) => Some(msg),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks until a message arrives or the timeout elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        match self.receiver.recv_timeout(timeout) {
            Ok(msg) => Some(msg),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drains every message currently queued.
    pub fn drain(&self) -> Vec<Message> {
        let mut out = Vec::new();
        while let Some(msg) = self.try_recv() {
            out.push(msg);
        }
        out
    }

    /// Number of messages currently queued.
    pub fn queued(&self) -> usize {
        self.receiver.len()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        if let Some(inner) = self.broker.upgrade() {
            inner.subscribers.write().retain(|s| s.id != self.id);
        }
    }
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("pattern", &self.pattern.as_str())
            .field("queued", &self.queued())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_to_matching_subscribers() {
        let broker = Broker::new();
        let events = broker.subscribe("misp.event.*");
        let everything = broker.subscribe("#");
        let alarms = broker.subscribe("infra.alarm.raised");

        let delivered = broker.publish(Topic::new("misp.event.created"), serde_json::json!(1));
        assert_eq!(delivered, 2);
        assert_eq!(events.queued(), 1);
        assert_eq!(everything.queued(), 1);
        assert_eq!(alarms.queued(), 0);
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let broker = Broker::new();
        let sub = broker.subscribe("#");
        for _ in 0..5 {
            broker.publish(Topic::new("t"), serde_json::Value::Null);
        }
        let seqs: Vec<u64> = sub.drain().into_iter().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dropped_subscription_is_pruned() {
        let broker = Broker::new();
        let sub = broker.subscribe("#");
        assert_eq!(broker.subscriber_count(), 1);
        drop(sub);
        assert_eq!(broker.subscriber_count(), 0);
        assert_eq!(broker.publish(Topic::new("t"), serde_json::Value::Null), 0);
    }

    #[test]
    fn publish_value_encodes() {
        #[derive(serde::Serialize)]
        struct Payload {
            x: u32,
        }
        let broker = Broker::new();
        let sub = broker.subscribe("typed");
        broker.publish_value("typed", &Payload { x: 9 }).unwrap();
        assert_eq!(sub.try_recv().unwrap().payload["x"], 9);
    }

    #[test]
    fn cross_thread_delivery() {
        let broker = Broker::new();
        let sub = broker.subscribe("work.#");
        let publisher = broker.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                publisher.publish(Topic::new(format!("work.item.{i}")), serde_json::json!(i));
            }
        });
        handle.join().unwrap();
        let got = sub.drain();
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn batch_publish_keeps_order_and_sequences() {
        let broker = Broker::new();
        let sub = broker.subscribe("bulk");
        let other = broker.subscribe("elsewhere");
        let delivered =
            broker.publish_batch(Topic::new("bulk"), (0..5).map(|i| serde_json::json!(i)));
        assert_eq!(delivered, 5);
        assert_eq!(other.queued(), 0);
        let got = sub.drain();
        let payloads: Vec<i64> = got.iter().map(|m| m.payload.as_i64().unwrap()).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
        let seqs: Vec<u64> = got.iter().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn batch_publish_lands_in_replay() {
        let broker = Broker::with_replay_capacity(3);
        broker.publish_batch(Topic::new("t"), (0..5).map(|i| serde_json::json!(i)));
        let late = broker.subscribe_with_replay("#");
        let caught_up = late.drain();
        assert_eq!(caught_up.len(), 3);
        assert_eq!(caught_up[0].payload, serde_json::json!(2));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let broker = Broker::new();
        let sub = broker.subscribe("#");
        assert_eq!(broker.publish_batch(Topic::new("t"), Vec::new()), 0);
        assert_eq!(sub.queued(), 0);
    }

    #[test]
    fn publish_values_encodes_each() {
        #[derive(serde::Serialize)]
        struct Payload {
            x: u32,
        }
        let broker = Broker::new();
        let sub = broker.subscribe("typed");
        let delivered = broker
            .publish_values("typed", &[Payload { x: 1 }, Payload { x: 2 }])
            .unwrap();
        assert_eq!(delivered, 2);
        let got = sub.drain();
        assert_eq!(got[1].payload["x"], 2);
    }

    #[test]
    fn instrumented_broker_counts_messages_not_calls() {
        let registry = Registry::new();
        let broker = Broker::new();
        broker.instrument(&registry);
        let sub = broker.subscribe("bulk");
        // One batched publish of 3 and three singles: 6 messages total.
        broker.publish_batch(Topic::new("bulk"), (0..3).map(|i| serde_json::json!(i)));
        for i in 0..3 {
            broker.publish(Topic::new("bulk"), serde_json::json!(i));
        }
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["bus_published_total"], 6);
        assert_eq!(
            snapshot.counters[&labeled("bus_published_total", &[("topic", "bulk")])],
            6
        );
        assert_eq!(snapshot.counters["bus_delivered_total"], 6);
        broker.sample_queue_depths();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.gauges["bus_subscribers"], 1);
        assert_eq!(
            snapshot.gauges[&labeled("bus_queue_depth", &[("pattern", "bulk")])],
            6
        );
        sub.drain();
        broker.sample_queue_depths();
        assert_eq!(
            registry.snapshot().gauges[&labeled("bus_queue_depth", &[("pattern", "bulk")])],
            0
        );
    }

    #[test]
    fn instrumented_broker_counts_evictions() {
        let registry = Registry::new();
        let broker = Broker::new();
        broker.instrument(&registry);
        let mut sub = broker.subscribe("t");
        // Kill the receiving half without unsubscribing: swap in a dummy
        // receiver, drop the real one, then leak the Subscription so its
        // eager Drop-prune never runs. The next publish finds the dead
        // sender and evicts it.
        let (_dummy_tx, dummy_rx) = channel::unbounded::<Message>();
        let real_rx = std::mem::replace(&mut sub.receiver, dummy_rx);
        drop(real_rx);
        std::mem::forget(sub);
        assert_eq!(broker.subscriber_count(), 1);
        broker.publish(Topic::new("t"), serde_json::json!(1));
        assert_eq!(broker.subscriber_count(), 0);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["bus_subscribers_evicted_total"], 1);
        assert_eq!(snapshot.counters["bus_delivered_total"], 0);
    }

    #[test]
    fn recv_timeout_expires() {
        let broker = Broker::new();
        let sub = broker.subscribe("#");
        assert!(sub.recv_timeout(Duration::from_millis(10)).is_none());
        broker.publish(Topic::new("t"), serde_json::Value::Null);
        assert!(sub.recv_timeout(Duration::from_millis(10)).is_some());
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;

    #[test]
    fn late_subscriber_catches_up() {
        let broker = Broker::new();
        for i in 0..5 {
            broker.publish(Topic::new(format!("a.{i}")), serde_json::json!(i));
        }
        broker.publish(Topic::new("b.0"), serde_json::json!("other"));
        let late = broker.subscribe_with_replay("a.*");
        let caught_up = late.drain();
        assert_eq!(caught_up.len(), 5);
        assert_eq!(caught_up[0].payload, serde_json::json!(0));
        // Live delivery continues after the replay.
        broker.publish(Topic::new("a.99"), serde_json::json!(99));
        assert_eq!(late.drain().len(), 1);
    }

    #[test]
    fn replay_buffer_is_bounded() {
        let broker = Broker::with_replay_capacity(3);
        for i in 0..10 {
            broker.publish(Topic::new("t"), serde_json::json!(i));
        }
        let late = broker.subscribe_with_replay("#");
        let caught_up = late.drain();
        assert_eq!(caught_up.len(), 3);
        assert_eq!(caught_up[0].payload, serde_json::json!(7));
    }

    #[test]
    fn replay_disabled_with_zero_capacity() {
        let broker = Broker::with_replay_capacity(0);
        broker.publish(Topic::new("t"), serde_json::json!(1));
        let late = broker.subscribe_with_replay("#");
        assert_eq!(late.queued(), 0);
    }

    #[test]
    fn plain_subscribe_gets_no_history() {
        let broker = Broker::new();
        broker.publish(Topic::new("t"), serde_json::json!(1));
        let sub = broker.subscribe("#");
        assert_eq!(sub.queued(), 0);
    }

    #[test]
    fn traced_publish_stamps_envelope_and_records_spans() {
        let broker = Broker::new();
        let tracer = Tracer::new();
        broker.set_tracer(&tracer);
        let sub = broker.subscribe("#");

        let parent = tracer.root("ingress", "feed_poll");
        let parent_ctx = parent.context();
        broker.publish_traced(Topic::new("t"), serde_json::json!(1), Some(parent_ctx));
        drop(parent);

        let message = sub.try_recv().expect("delivered");
        let envelope = message.trace.expect("traced publish stamps the envelope");
        assert_eq!(envelope.trace_id, parent_ctx.trace_id);
        assert!(envelope.sampled);

        let spans = tracer.snapshot_subsystem("bus");
        let publish = spans.iter().find(|s| s.name == "bus_publish").unwrap();
        let deliver = spans.iter().find(|s| s.name == "bus_deliver").unwrap();
        assert_eq!(publish.parent_id, parent_ctx.span_id);
        assert_eq!(publish.trace_id, parent_ctx.trace_id);
        assert_eq!(deliver.parent_id, publish.span_id);
        assert_eq!(envelope.span_id, publish.span_id);
    }

    #[test]
    fn untraced_publish_carries_no_envelope_context() {
        let broker = Broker::new();
        let sub = broker.subscribe("#");
        broker.publish(Topic::new("t"), serde_json::json!(1));
        assert_eq!(sub.try_recv().expect("delivered").trace, None);
        // With a tracer but no parent, the publish roots its own trace.
        let tracer = Tracer::new();
        broker.set_tracer(&tracer);
        broker.publish_batch(
            Topic::new("t"),
            vec![serde_json::json!(1), serde_json::json!(2)],
        );
        let first = sub.try_recv().expect("first").trace.expect("traced");
        let second = sub.try_recv().expect("second").trace.expect("traced");
        assert_eq!(first, second, "one batch = one publish span");
        let spans = tracer.snapshot_subsystem("bus");
        assert_eq!(
            spans
                .iter()
                .find(|s| s.name == "bus_publish")
                .unwrap()
                .parent_id,
            0,
            "no parent means a root span"
        );
    }
}
