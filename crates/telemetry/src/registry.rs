//! The lock-sharded metrics registry.
//!
//! A [`Registry`] is a cheaply clonable handle to a set of named
//! [`Counter`]s, [`Gauge`]s and log₂-bucketed latency [`Histogram`]s.
//! Metric names are plain strings; a Prometheus-style label set is
//! encoded into the name with [`labeled`] (`bus_published_total` +
//! `topic=misp.event.created` → `bus_published_total{topic="misp.event.created"}`).
//!
//! Handle lookups shard the name space over independent locks so hot
//! paths on different metrics never contend, and every handle is an
//! `Arc` around atomics — callers cache handles once and record
//! lock-free afterwards.
//!
//! Everything is **mergeable**: a [`HistogramSnapshot`] is a plain
//! bucket vector that parallel-shard recorders can fold together (merge
//! is associative and commutative, element-wise addition), so a
//! sharded recording pass produces the exact totals the serial pass
//! would.

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Number of lock shards in a registry. A power of two so the hash
/// masks cleanly.
const SHARD_COUNT: usize = 16;

/// Number of histogram buckets: bucket 0 holds zero, bucket *i* ≥ 1
/// holds values whose bit length is *i* (`2^(i-1) ≤ v < 2^i`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
///
/// Cloning shares the underlying atomic; cache the handle and call
/// [`Counter::inc`] / [`Counter::add`] lock-free.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A value that can go up and down (queue depths, live subscriber
/// counts).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `n`.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log₂-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, batch sizes, payload bytes).
///
/// Recording is lock-free; the bucket of a sample is its bit length,
/// so bucket boundaries are powers of two and a merge of two
/// histograms is element-wise addition.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// The bucket index of a sample: 0 for 0, otherwise the bit length.
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive upper bound of a bucket (`2^i − 1`; bucket 0 is 0).
    pub fn bucket_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.0.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Folds a snapshot recorded elsewhere (e.g. by a parallel worker's
    /// local [`HistogramSnapshot`]) into this histogram. Because merge
    /// is plain addition, any partitioning of the samples over workers
    /// produces the exact totals the serial path would.
    pub fn merge(&self, snapshot: &HistogramSnapshot) {
        for (i, n) in snapshot.buckets.iter().enumerate() {
            if *n > 0 {
                self.0.buckets[i].fetch_add(*n, Ordering::Relaxed);
            }
        }
        self.0.count.fetch_add(snapshot.count, Ordering::Relaxed);
        self.0.sum.fetch_add(snapshot.sum, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// A plain (non-atomic) copy of a histogram, usable as a local recorder
/// in a worker thread and foldable into other snapshots or a live
/// [`Histogram`].
///
/// Trailing empty buckets are trimmed, so two snapshots of different
/// lengths still merge correctly.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket sample counts (bucket *i* as in [`Histogram::bucket_bound`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Records one sample into this local snapshot. The sum wraps on
    /// overflow, matching [`Histogram::record`]'s atomic `fetch_add`,
    /// so snapshot folds stay bit-identical to live recording.
    pub fn record(&mut self, value: u64) {
        let index = Histogram::bucket_index(value);
        if self.buckets.len() <= index {
            self.buckets.resize(index + 1, 0);
        }
        self.buckets[index] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
    }

    /// Element-wise addition — associative and commutative, so any
    /// fold order over worker-local snapshots yields the serial totals.
    /// Sums wrap on overflow, like [`record`](Self::record).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) from the log₂ buckets:
    /// the upper bound of the first bucket whose cumulative count
    /// covers the target rank. Conservative (never under-reports) and
    /// exact to within one power of two, which is what an SLO gauge
    /// needs. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return Histogram::bucket_bound(index);
            }
        }
        Histogram::bucket_bound(self.buckets.len().saturating_sub(1))
    }
}

#[derive(Default)]
struct Shard {
    counters: RwLock<HashMap<String, Counter>>,
    gauges: RwLock<HashMap<String, Gauge>>,
    histograms: RwLock<HashMap<String, Histogram>>,
}

/// A lock-sharded registry of named metrics.
///
/// Cloning shares the underlying storage — every component of a
/// platform records into the same registry, and one
/// [`Registry::snapshot`] sees them all.
///
/// # Examples
///
/// ```
/// use cais_telemetry::Registry;
///
/// let registry = Registry::new();
/// let requests = registry.counter("requests_total");
/// requests.inc();
/// requests.add(2);
/// assert_eq!(registry.snapshot().counters["requests_total"], 3);
/// ```
#[derive(Clone)]
pub struct Registry {
    shards: Arc<[Shard; SHARD_COUNT]>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry {
            shards: Arc::new(std::array::from_fn(|_| Shard::default())),
        }
    }

    fn shard(&self, name: &str) -> &Shard {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (SHARD_COUNT - 1)]
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let shard = self.shard(name);
        if let Some(c) = shard.counters.read().get(name) {
            return c.clone();
        }
        shard
            .counters
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let shard = self.shard(name);
        if let Some(g) = shard.gauges.read().get(name) {
            return g.clone();
        }
        shard
            .gauges
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let shard = self.shard(name);
        if let Some(h) = shard.histograms.read().get(name) {
            return h.clone();
        }
        shard
            .histograms
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut snapshot = Snapshot::default();
        for shard in self.shards.iter() {
            for (name, c) in shard.counters.read().iter() {
                snapshot.counters.insert(name.clone(), c.get());
            }
            for (name, g) in shard.gauges.read().iter() {
                snapshot.gauges.insert(name.clone(), g.get());
            }
            for (name, h) in shard.histograms.read().iter() {
                snapshot.histograms.insert(name.clone(), h.snapshot());
            }
        }
        snapshot
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("Registry")
            .field("counters", &snapshot.counters.len())
            .field("gauges", &snapshot.gauges.len())
            .field("histograms", &snapshot.histograms.len())
            .finish()
    }
}

/// A serializable point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram contents by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Folds another snapshot into this one: counters and histograms
    /// add (exact under any partitioning of the underlying events);
    /// gauges are last-writer-wins, taking `other`'s value.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }
}

/// Encodes a label set into a metric name, Prometheus-style:
/// `labeled("x_total", &[("stage", "dedup")])` → `x_total{stage="dedup"}`.
///
/// Labels must be passed in a fixed order — the returned string is the
/// registry key, and `{a="1",b="2"}` and `{b="2",a="1"}` would be
/// distinct metrics.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a metric name produced by [`labeled`] back into its base name
/// and the raw label body (without braces); `None` when unlabeled.
pub fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}')),
        None => (name, None),
    }
}

/// Extracts one label's value from a metric name produced by
/// [`labeled`].
pub fn label_value<'a>(name: &'a str, key: &str) -> Option<&'a str> {
    let (_, labels) = split_labels(name);
    for pair in labels?.split(',') {
        let (k, v) = pair.split_once('=')?;
        if k == key {
            return Some(v.trim_matches('"'));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_roundtrip() {
        let registry = Registry::new();
        let c = registry.counter("c_total");
        c.inc();
        registry.counter("c_total").add(4);
        assert_eq!(c.get(), 5);
        let g = registry.gauge("g");
        g.set(7);
        g.add(-3);
        assert_eq!(registry.gauge("g").get(), 4);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(2), 3);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
        // Every value lands in a bucket whose bound covers it.
        for v in [0u64, 1, 2, 3, 100, 1 << 40, u64::MAX] {
            assert!(v <= Histogram::bucket_bound(Histogram::bucket_index(v)));
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let registry = Registry::new();
        let h = registry.histogram("latency_nanos");
        h.record(0);
        h.record(5);
        h.record(5);
        h.record(1_000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1_010);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[3], 2); // 5 has bit length 3
        assert_eq!(snap.buckets[10], 1); // 1000 has bit length 10
        assert!((snap.mean() - 252.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_estimate_from_cumulative_buckets() {
        let mut snap = HistogramSnapshot::default();
        assert_eq!(snap.quantile(0.5), 0, "empty histogram");
        // 90 fast samples (≤ 7) and 10 slow ones (≤ 1023).
        for _ in 0..90 {
            snap.record(5);
        }
        for _ in 0..10 {
            snap.record(1_000);
        }
        assert_eq!(snap.quantile(0.5), 7);
        assert_eq!(snap.quantile(0.9), 7);
        assert_eq!(snap.quantile(0.95), 1_023);
        assert_eq!(snap.quantile(0.99), 1_023);
        assert_eq!(snap.quantile(1.0), 1_023);
        // Degenerate and clamped inputs stay sane.
        assert_eq!(snap.quantile(0.0), 7);
        assert_eq!(snap.quantile(2.0), 1_023);
        let mut single = HistogramSnapshot::default();
        single.record(12);
        assert_eq!(single.quantile(0.5), 15);
    }

    #[test]
    fn local_snapshot_folds_into_exact_totals() {
        let serial = Histogram::default();
        let sharded = Histogram::default();
        let samples: Vec<u64> = (0..1_000).map(|i| i * 37 % 4_096).collect();
        for &s in &samples {
            serial.record(s);
        }
        // Two worker-local recorders over a partition of the samples.
        let mut a = HistogramSnapshot::default();
        let mut b = HistogramSnapshot::default();
        for (i, &s) in samples.iter().enumerate() {
            if i % 3 == 0 {
                a.record(s);
            } else {
                b.record(s);
            }
        }
        sharded.merge(&a);
        sharded.merge(&b);
        assert_eq!(sharded.snapshot(), serial.snapshot());
    }

    #[test]
    fn snapshot_merge_adds_counters_and_histograms() {
        let a = Registry::new();
        a.counter("x_total").add(2);
        a.histogram("h").record(9);
        let b = Registry::new();
        b.counter("x_total").add(3);
        b.counter("y_total").inc();
        b.histogram("h").record(1);
        b.gauge("depth").set(5);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters["x_total"], 5);
        assert_eq!(merged.counters["y_total"], 1);
        assert_eq!(merged.gauges["depth"], 5);
        assert_eq!(merged.histograms["h"].count, 2);
        assert_eq!(merged.histograms["h"].sum, 10);
    }

    #[test]
    fn labels_roundtrip() {
        let name = labeled("bus_published_total", &[("topic", "misp.event.created")]);
        assert_eq!(name, "bus_published_total{topic=\"misp.event.created\"}");
        let (base, labels) = split_labels(&name);
        assert_eq!(base, "bus_published_total");
        assert_eq!(labels, Some("topic=\"misp.event.created\""));
        assert_eq!(label_value(&name, "topic"), Some("misp.event.created"));
        assert_eq!(label_value(&name, "other"), None);
        assert_eq!(split_labels("plain"), ("plain", None));
    }

    #[test]
    fn handles_are_shared_across_clones() {
        let registry = Registry::new();
        let clone = registry.clone();
        registry.counter("shared_total").inc();
        clone.counter("shared_total").inc();
        assert_eq!(registry.snapshot().counters["shared_total"], 2);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let registry = Registry::new();
        registry.counter("a_total").add(7);
        registry.gauge("b").set(-2);
        registry.histogram("c").record(100);
        let snapshot = registry.snapshot();
        let value = serde_json::to_value(&snapshot).unwrap();
        let back: Snapshot = serde_json::from_value(value).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let registry = Registry::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let registry = registry.clone();
            handles.push(std::thread::spawn(move || {
                let c = registry.counter("hits_total");
                let h = registry.histogram("lat");
                for i in 0..1_000 {
                    c.inc();
                    h.record(i);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(registry.counter("hits_total").get(), 4_000);
        assert_eq!(registry.histogram("lat").count(), 4_000);
    }
}
