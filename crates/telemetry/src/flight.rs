//! The flight recorder: a black box that dumps the tracer's recent
//! history to disk when an anomaly fires.
//!
//! Chaos failures are only debuggable if the run leaves evidence
//! behind. A [`FlightRecorder`] watches nothing itself — anomaly sites
//! (a circuit breaker tripping, a decode failure, a frame fault) call
//! [`FlightRecorder::trigger`], and the recorder snapshots the last N
//! spans of *every* subsystem ring into one JSON document under its
//! dump directory. Dump filenames are sequence-numbered (not
//! timestamped), so seeded chaos runs produce deterministic paths.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::Serialize;

use crate::trace::{TraceEvent, Tracer};

/// Default span count kept per subsystem in a dump.
const DEFAULT_LAST_N: usize = 256;

/// One written dump document.
#[derive(Debug, Clone, Serialize)]
struct FlightDump {
    /// Anomaly class, e.g. `breaker_trip` or `decode_failure`.
    reason: String,
    /// Free-form anomaly detail (the feed name, the topic, the error).
    detail: String,
    /// Dump sequence number within this recorder.
    sequence: u64,
    /// Last-N spans per subsystem at trigger time.
    subsystems: std::collections::BTreeMap<String, Vec<TraceEvent>>,
}

struct FlightInner {
    tracer: Tracer,
    dir: PathBuf,
    last_n: usize,
    next_seq: AtomicU64,
    dumps: AtomicU64,
}

/// A cheaply clonable handle writing anomaly dumps from one tracer
/// into one directory.
///
/// # Examples
///
/// ```
/// use cais_telemetry::{FlightRecorder, Tracer};
///
/// let tracer = Tracer::new();
/// drop(tracer.root("ingress", "feed_poll"));
/// let dir = std::env::temp_dir().join("cais-flight-doc-example");
/// let recorder = FlightRecorder::new(tracer, &dir);
/// let path = recorder.trigger("breaker_trip", "feed osint-a")?;
/// assert!(path.exists());
/// assert_eq!(recorder.dumps(), 1);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl FlightRecorder {
    /// A recorder dumping `tracer`'s rings into `dir` (created on first
    /// trigger), keeping the default 256 spans per subsystem.
    pub fn new(tracer: Tracer, dir: impl Into<PathBuf>) -> Self {
        FlightRecorder {
            inner: Arc::new(FlightInner {
                tracer,
                dir: dir.into(),
                last_n: DEFAULT_LAST_N,
                next_seq: AtomicU64::new(0),
                dumps: AtomicU64::new(0),
            }),
        }
    }

    /// A recorder keeping the last `n` spans per subsystem instead of
    /// the default.
    pub fn with_last_n(tracer: Tracer, dir: impl Into<PathBuf>, n: usize) -> Self {
        let mut recorder = FlightRecorder::new(tracer, dir);
        Arc::get_mut(&mut recorder.inner)
            .expect("freshly built recorder is unshared")
            .last_n = n.max(1);
        recorder
    }

    /// The directory dumps are written into.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Number of dumps successfully written.
    pub fn dumps(&self) -> u64 {
        self.inner.dumps.load(Ordering::Relaxed)
    }

    /// Writes one dump for an anomaly and returns its path.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the dump directory cannot be created
    /// or the file cannot be written.
    pub fn trigger(&self, reason: &str, detail: &str) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.inner.dir)?;
        let sequence = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let dump = FlightDump {
            reason: reason.to_owned(),
            detail: detail.to_owned(),
            sequence,
            subsystems: self.inner.tracer.tail(self.inner.last_n),
        };
        let text = serde_json::to_string_pretty(&dump)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let path = self
            .inner
            .dir
            .join(format!("flight-{sequence:04}-{}.json", sanitize(reason)));
        std::fs::write(&path, text)?;
        self.inner.dumps.fetch_add(1, Ordering::Relaxed);
        Ok(path)
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("dir", &self.inner.dir)
            .field("last_n", &self.inner.last_n)
            .field("dumps", &self.dumps())
            .finish()
    }
}

/// Filename-safe slug of an anomaly reason.
fn sanitize(reason: &str) -> String {
    reason
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cais-flight-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn trigger_writes_last_n_spans_per_subsystem() {
        let tracer = Tracer::new();
        for i in 0..5 {
            let mut span = tracer.root("ingress", "feed_poll");
            span.field("round", i);
        }
        drop(tracer.root("pipeline", "ingest_round"));
        let dir = temp_dir("lastn");
        let recorder = FlightRecorder::with_last_n(tracer, &dir, 2);
        let path = recorder
            .trigger("breaker_trip", "feed dead-feed")
            .expect("dump");
        let doc: Value =
            serde_json::from_str(&std::fs::read_to_string(&path).expect("read")).expect("json");
        assert_eq!(doc["reason"], Value::String("breaker_trip".to_owned()));
        assert_eq!(doc["detail"], Value::String("feed dead-feed".to_owned()));
        assert_eq!(doc["subsystems"]["ingress"].as_array().unwrap().len(), 2);
        assert_eq!(doc["subsystems"]["pipeline"].as_array().unwrap().len(), 1);
        assert_eq!(recorder.dumps(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequential_triggers_get_distinct_deterministic_paths() {
        let tracer = Tracer::new();
        let dir = temp_dir("seq");
        let recorder = FlightRecorder::new(tracer, &dir);
        let first = recorder.trigger("decode_failure", "topic t").expect("dump");
        let second = recorder.trigger("frame fault!", "site x").expect("dump");
        assert_ne!(first, second);
        assert!(first.ends_with("flight-0000-decode_failure.json"));
        assert!(second.ends_with("flight-0001-frame-fault-.json"));
        assert_eq!(recorder.dumps(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
