//! Exposition: rendering a [`Snapshot`] as Prometheus-style text or
//! JSON.
//!
//! The text format follows the Prometheus exposition conventions —
//! `# TYPE` headers, one `name{labels} value` line per sample,
//! histograms exploded into cumulative `_bucket{le=...}` lines plus
//! `_sum` and `_count` — close enough that standard tooling parses it.
//! The JSON format is just the serialized [`Snapshot`], which
//! round-trips through `serde_json` for programmatic consumers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry::{split_labels, Histogram, Snapshot};

/// The latency quantiles exposed as derived gauges for every
/// histogram: suffix and quantile value.
pub const PERCENTILES: [(&str, f64); 3] = [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)];

/// Derives the RED-style percentile gauges from every histogram in a
/// snapshot: full series name → `{p50, p95, p99}` estimated from the
/// log₂ buckets. This is what the Prometheus text, the JSON
/// exposition's `percentiles` key, and the dashboard latency panel all
/// read, so the three can never disagree.
pub fn percentiles(snapshot: &Snapshot) -> BTreeMap<String, BTreeMap<String, u64>> {
    snapshot
        .histograms
        .iter()
        .map(|(name, histogram)| {
            let quantiles = PERCENTILES
                .iter()
                .map(|(suffix, q)| ((*suffix).to_owned(), histogram.quantile(*q)))
                .collect();
            (name.clone(), quantiles)
        })
        .collect()
}

/// Splices a percentile suffix into a (possibly labelled) series name:
/// `stage_nanos{stage="dedup"}` + `p95` → `stage_nanos_p95{stage="dedup"}`.
fn suffixed(name: &str, suffix: &str) -> String {
    let (base, labels) = split_labels(name);
    match labels {
        Some(labels) => format!("{base}_{suffix}{{{labels}}}"),
        None => format!("{base}_{suffix}"),
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// # Examples
///
/// ```
/// use cais_telemetry::{Registry, expose};
///
/// let registry = Registry::new();
/// registry.counter("requests_total").add(3);
/// let text = expose::prometheus_text(&registry.snapshot());
/// assert!(text.contains("requests_total 3"));
/// ```
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut typed: BTreeMap<&str, &str> = BTreeMap::new();
    for name in snapshot.counters.keys() {
        typed.insert(split_labels(name).0, "counter");
    }
    for name in snapshot.gauges.keys() {
        typed.insert(split_labels(name).0, "gauge");
    }
    for name in snapshot.histograms.keys() {
        typed.insert(split_labels(name).0, "histogram");
    }
    let mut last_base = String::new();
    let mut emit_type = |out: &mut String, name: &str| {
        let base = split_labels(name).0;
        if base != last_base {
            let kind = typed.get(base).copied().unwrap_or("untyped");
            let _ = writeln!(out, "# TYPE {base} {kind}");
            last_base = base.to_owned();
        }
    };
    for (name, value) in &snapshot.counters {
        emit_type(&mut out, name);
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        emit_type(&mut out, name);
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, histogram) in &snapshot.histograms {
        emit_type(&mut out, name);
        let (base, labels) = split_labels(name);
        let mut cumulative = 0u64;
        for (i, bucket) in histogram.buckets.iter().enumerate() {
            cumulative += bucket;
            if *bucket == 0 && i + 1 != histogram.buckets.len() {
                continue; // keep the output compact: skip interior empties
            }
            let bound = Histogram::bucket_bound(i);
            let _ = match labels {
                Some(l) => writeln!(out, "{base}_bucket{{{l},le=\"{bound}\"}} {cumulative}"),
                None => writeln!(out, "{base}_bucket{{le=\"{bound}\"}} {cumulative}"),
            };
        }
        let _ = match labels {
            Some(l) => writeln!(out, "{base}_bucket{{{l},le=\"+Inf\"}} {}", histogram.count),
            None => writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {}", histogram.count),
        };
        let _ = match labels {
            Some(l) => writeln!(out, "{base}_sum{{{l}}} {}", histogram.sum),
            None => writeln!(out, "{base}_sum {}", histogram.sum),
        };
        let _ = match labels {
            Some(l) => writeln!(out, "{base}_count{{{l}}} {}", histogram.count),
            None => writeln!(out, "{base}_count {}", histogram.count),
        };
    }
    // Derived p50/p95/p99 gauges per histogram series, estimated from
    // the log₂ buckets (see `percentiles`).
    let mut derived: BTreeMap<String, u64> = BTreeMap::new();
    for (name, quantiles) in percentiles(snapshot) {
        for (suffix, value) in quantiles {
            derived.insert(suffixed(&name, &suffix), value);
        }
    }
    let mut last_base = String::new();
    for (name, value) in &derived {
        let base = split_labels(name).0;
        if base != last_base {
            let _ = writeln!(out, "# TYPE {base} gauge");
            last_base = base.to_owned();
        }
        let _ = writeln!(out, "{name} {value}");
    }
    out
}

/// Renders a snapshot as pretty-printed JSON, with one addition over
/// the raw [`Snapshot`] serialization: a top-level `percentiles` key
/// carrying the derived p50/p95/p99 per histogram. The snapshot's own
/// fields are untouched, so `Snapshot` deserialization still
/// round-trips (unknown keys are ignored).
pub fn json_text(snapshot: &Snapshot) -> String {
    let Ok(mut value) = serde_json::to_value(snapshot) else {
        return "{}".to_owned();
    };
    if let (Some(object), Ok(derived)) = (
        value.as_object_mut(),
        serde_json::to_value(percentiles(snapshot)),
    ) {
        object.insert("percentiles", derived);
    }
    serde_json::to_string_pretty(&value).unwrap_or_else(|_| "{}".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{labeled, Registry};

    #[test]
    fn counters_and_gauges_render_with_type_headers() {
        let registry = Registry::new();
        registry.counter("requests_total").add(3);
        registry.gauge("queue_depth").set(-2);
        let text = prometheus_text(&registry.snapshot());
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 3"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth -2"));
    }

    #[test]
    fn labeled_series_share_one_type_header() {
        let registry = Registry::new();
        registry
            .counter(&labeled("stage_total", &[("stage", "dedup")]))
            .add(1);
        registry
            .counter(&labeled("stage_total", &[("stage", "filter")]))
            .add(2);
        let text = prometheus_text(&registry.snapshot());
        assert_eq!(text.matches("# TYPE stage_total counter").count(), 1);
        assert!(text.contains("stage_total{stage=\"dedup\"} 1"));
        assert!(text.contains("stage_total{stage=\"filter\"} 2"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let registry = Registry::new();
        let h = registry.histogram("lat_nanos");
        h.record(1);
        h.record(3);
        h.record(3);
        let text = prometheus_text(&registry.snapshot());
        assert!(text.contains("# TYPE lat_nanos histogram"));
        assert!(text.contains("lat_nanos_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_nanos_bucket{le=\"3\"} 3"));
        assert!(text.contains("lat_nanos_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_nanos_sum 7"));
        assert!(text.contains("lat_nanos_count 3"));
    }

    #[test]
    fn labeled_histogram_merges_le_into_label_set() {
        let registry = Registry::new();
        registry
            .histogram(&labeled("stage_nanos", &[("stage", "enrich")]))
            .record(5);
        let text = prometheus_text(&registry.snapshot());
        assert!(text.contains("stage_nanos_bucket{stage=\"enrich\",le=\"7\"} 1"));
        assert!(text.contains("stage_nanos_sum{stage=\"enrich\"} 5"));
        assert!(text.contains("stage_nanos_count{stage=\"enrich\"} 1"));
    }

    #[test]
    fn json_roundtrips() {
        let registry = Registry::new();
        registry.counter("a_total").inc();
        registry.histogram("h").record(9);
        let snapshot = registry.snapshot();
        let text = json_text(&snapshot);
        let back: Snapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn percentile_gauges_render_in_text_and_json() {
        let registry = Registry::new();
        let h = registry.histogram(&labeled("stage_nanos", &[("stage", "dedup")]));
        for _ in 0..99 {
            h.record(100); // ≤ 127
        }
        h.record(1 << 20); // one slow outlier
        let snapshot = registry.snapshot();

        let text = prometheus_text(&snapshot);
        assert!(text.contains("# TYPE stage_nanos_p50 gauge"));
        assert!(text.contains("stage_nanos_p50{stage=\"dedup\"} 127"));
        assert!(text.contains("stage_nanos_p95{stage=\"dedup\"} 127"));
        assert!(text.contains("stage_nanos_p99{stage=\"dedup\"} 127"));

        let json: serde_json::Value = serde_json::from_str(&json_text(&snapshot)).unwrap();
        let series = &json["percentiles"]["stage_nanos{stage=\"dedup\"}"];
        assert_eq!(series["p50"].as_u64(), Some(127));
        assert_eq!(series["p99"].as_u64(), Some(127));
        // The 100th sample pushes p100-ish ranks into the outlier
        // bucket; 1.0 would, but p99 rank is 99 and stays fast.
        let unlabeled = Registry::new();
        let h2 = unlabeled.histogram("lat");
        h2.record(1);
        let text = prometheus_text(&unlabeled.snapshot());
        assert!(text.contains("# TYPE lat_p50 gauge"));
        assert!(text.contains("lat_p50 1"));
    }
}
