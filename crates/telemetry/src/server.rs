//! The TCP scrape endpoint.
//!
//! A [`TelemetryServer`] serves a [`Registry`] (and optionally a
//! [`Tracer`]) over the workspace's length-prefixed framing
//! ([`cais_common::frame`]) — the same wire format the bus bridge
//! speaks, so one client implementation covers both. The protocol is
//! strict request/response: the client sends one frame containing a
//! JSON string command and receives one response frame.
//!
//! | command        | response frame                                     |
//! |----------------|----------------------------------------------------|
//! | `prometheus`   | Prometheus text exposition (UTF-8), incl. p50/p95/p99 gauges |
//! | `json`         | the JSON [`Snapshot`](crate::Snapshot) plus a `percentiles` key |
//! | `trace`        | the buffered `TraceEvent`s as a JSON array         |
//! | `trace_chrome` | Chrome `trace_event` JSON (open in Perfetto)       |
//! | `trace_jsonl`  | Chrome trace events, one JSON object per line      |
//!
//! Trace scrapes are **non-destructive** ([`Tracer::snapshot`]): two
//! concurrent scrapers both see the full ring buffers instead of
//! stealing spans from each other.
//!
//! Unknown commands get a one-frame JSON error object and the
//! connection stays open, so a curious `nc` probe can't wedge the
//! endpoint.

use std::io::{self};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use cais_common::frame::{read_frame, write_frame, TraceHeader};
use cais_common::serve::{
    self, FrameService, NoServeMetrics, Outbox, ServeConfig, ServeHandle, ServeMetrics,
};

use crate::expose;
use crate::registry::Registry;
use crate::trace::Tracer;

/// A scrapeable telemetry endpoint over framed TCP.
///
/// # Examples
///
/// ```
/// use cais_telemetry::{Registry, TelemetryServer, scrape};
///
/// let registry = Registry::new();
/// registry.counter("up").inc();
/// let server = TelemetryServer::bind(registry, None, "127.0.0.1:0")?;
/// let text = scrape(server.local_addr(), "prometheus")?;
/// assert!(text.contains("up 1"));
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct TelemetryServer {
    local_addr: SocketAddr,
}

impl TelemetryServer {
    /// Binds a listener and answers scrape requests for the lifetime
    /// of the process on the multiplexed core ([`cais_common::serve`]).
    /// The served registry is **not** self-instrumented with `serve_*`
    /// metrics by default — a scrape reports exactly what the registry
    /// holds; use [`TelemetryServer::bind_on_core`] to opt in.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn bind(registry: Registry, tracer: Option<Tracer>, addr: &str) -> io::Result<Self> {
        let handle = TelemetryServer::bind_on_core(
            registry,
            tracer,
            addr,
            ServeConfig::default(),
            NoServeMetrics,
        )?;
        let local_addr = handle.local_addr();
        // Dropping the handle leaves the core's threads detached, which
        // preserves this method's historical serve-forever contract.
        drop(handle);
        Ok(TelemetryServer { local_addr })
    }

    /// [`TelemetryServer::bind`] on an explicitly configured serving
    /// core, returning the [`ServeHandle`] for counters and graceful
    /// shutdown. Pair with
    /// [`crate::RegistryServeMetrics::new`]`(&registry, "telemetry")`
    /// to surface the endpoint's own `serve_*` family.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn bind_on_core<M: ServeMetrics>(
        registry: Registry,
        tracer: Option<Tracer>,
        addr: &str,
        config: ServeConfig,
        metrics: M,
    ) -> io::Result<ServeHandle> {
        serve::serve(addr, config, ScrapeService { registry, tracer }, metrics)
    }

    /// The historical thread-per-connection accept loop, kept as the
    /// measured baseline for the multiplexed core and for the
    /// serving-equivalence tests.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn bind_thread_per_conn(
        registry: Registry,
        tracer: Option<Tracer>,
        addr: &str,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        thread::Builder::new()
            .name("cais-telemetry-server".into())
            .spawn(move || accept_loop(listener, registry, tracer))
            .expect("spawn telemetry server thread");
        Ok(TelemetryServer { local_addr })
    }

    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

fn accept_loop(listener: TcpListener, registry: Registry, tracer: Option<Tracer>) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let registry = registry.clone();
        let tracer = tracer.clone();
        let _ = thread::Builder::new()
            .name("cais-telemetry-conn".into())
            .spawn(move || {
                let _ = serve_client(stream, &registry, tracer.as_ref());
            });
    }
}

/// One scrape exchange: the response frame for one command frame, or an
/// error when the frame is not a JSON string (the connection closes).
/// Both serving paths (the multiplexed core and the thread-per-conn
/// baseline) call this, so their responses are identical by
/// construction.
fn respond(frame: &[u8], registry: &Registry, tracer: Option<&Tracer>) -> io::Result<Vec<u8>> {
    let command: String =
        serde_json::from_slice(frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(match command.as_str() {
        "prometheus" => expose::prometheus_text(&registry.snapshot()).into_bytes(),
        "json" => expose::json_text(&registry.snapshot()).into_bytes(),
        "trace" => {
            // snapshot(), not drain(): scraping must never consume
            // another scraper's spans.
            let events = tracer.map(|t| t.snapshot()).unwrap_or_default();
            serde_json::to_vec(&events)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        }
        "trace_chrome" => {
            let events = tracer.map(|t| t.snapshot()).unwrap_or_default();
            crate::perfetto::chrome_trace_json(&events).into_bytes()
        }
        "trace_jsonl" => {
            let events = tracer.map(|t| t.snapshot()).unwrap_or_default();
            crate::perfetto::chrome_trace_jsonl(&events).into_bytes()
        }
        other => serde_json::to_vec(&serde_json::json!({
            "error": format!("unknown command {other:?}"),
            "commands": ["prometheus", "json", "trace", "trace_chrome", "trace_jsonl"],
        }))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
    })
}

fn serve_client(
    mut stream: TcpStream,
    registry: &Registry,
    tracer: Option<&Tracer>,
) -> io::Result<()> {
    loop {
        let frame = read_frame(&mut stream)?;
        let response = respond(&frame, registry, tracer)?;
        write_frame(&mut stream, &response)?;
    }
}

/// The scrape protocol as a [`FrameService`]: strict request/response;
/// an unparseable command frame closes the connection (exactly as the
/// baseline loop's error return did), an unknown command answers with
/// a JSON error and the connection survives.
struct ScrapeService {
    registry: Registry,
    tracer: Option<Tracer>,
}

impl FrameService for ScrapeService {
    type Conn = ();

    fn on_connect(&self, _peer: SocketAddr) -> Self::Conn {}

    fn on_frame(
        &self,
        _conn: &mut Self::Conn,
        _header: Option<TraceHeader>,
        payload: Vec<u8>,
        out: &mut Outbox,
    ) {
        match respond(&payload, &self.registry, self.tracer.as_ref()) {
            Ok(response) => out.push_owned(response),
            Err(_) => out.close(),
        }
    }
}

/// One-shot scrape: connects, sends `command`, returns the response
/// frame as UTF-8 text.
///
/// # Errors
///
/// Returns connection or framing I/O errors, or `InvalidData` when the
/// response is not UTF-8.
pub fn scrape(addr: SocketAddr, command: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let frame =
        serde_json::to_vec(command).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    write_frame(&mut stream, &frame)?;
    let response = read_frame(&mut stream)?;
    String::from_utf8(response).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Snapshot;
    use crate::trace::TraceEvent;

    #[test]
    fn scrape_prometheus_and_json() {
        let registry = Registry::new();
        registry.counter("hits_total").add(5);
        registry.histogram("lat").record(100);
        let server = TelemetryServer::bind(registry.clone(), None, "127.0.0.1:0").unwrap();

        let text = scrape(server.local_addr(), "prometheus").unwrap();
        assert!(text.contains("hits_total 5"));
        assert!(text.contains("lat_count 1"));

        let json = scrape(server.local_addr(), "json").unwrap();
        let snapshot: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snapshot, registry.snapshot());
    }

    #[test]
    fn scrape_trace_buffer() {
        let registry = Registry::new();
        let tracer = Tracer::new();
        tracer.event("boot", &[("phase", "test")]);
        let server = TelemetryServer::bind(registry, Some(tracer.clone()), "127.0.0.1:0").unwrap();
        let json = scrape(server.local_addr(), "trace").unwrap();
        let events: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "boot");
    }

    #[test]
    fn trace_scrapes_are_non_destructive() {
        let registry = Registry::new();
        let tracer = Tracer::new();
        drop(tracer.root("pipeline", "round"));
        let server = TelemetryServer::bind(registry, Some(tracer.clone()), "127.0.0.1:0").unwrap();
        // Two scrapers in a row both see the span.
        for _ in 0..2 {
            let json = scrape(server.local_addr(), "trace").unwrap();
            let events: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
            assert_eq!(events.len(), 1, "a scrape consumed the buffer");
        }
        assert_eq!(tracer.len(), 1);
    }

    #[test]
    fn scrape_chrome_trace_formats() {
        let registry = Registry::new();
        let tracer = Tracer::new();
        {
            let root = tracer.root("ingress", "feed_poll");
            let _child = tracer.child(root.context(), "pipeline", "ingest_round");
        }
        let server = TelemetryServer::bind(registry, Some(tracer), "127.0.0.1:0").unwrap();
        let chrome = scrape(server.local_addr(), "trace_chrome").unwrap();
        let doc: serde_json::Value = serde_json::from_str(&chrome).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert!(events.iter().any(|e| e["ph"] == "X"));
        let jsonl = scrape(server.local_addr(), "trace_jsonl").unwrap();
        assert!(jsonl.lines().count() >= 2);
        for line in jsonl.lines() {
            serde_json::from_str::<serde_json::Value>(line).unwrap();
        }
    }

    #[test]
    fn unknown_command_reports_error_and_connection_survives() {
        let registry = Registry::new();
        registry.counter("up").inc();
        let server = TelemetryServer::bind(registry, None, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write_frame(&mut stream, &serde_json::to_vec("bogus").unwrap()).unwrap();
        let response = read_frame(&mut stream).unwrap();
        let value: serde_json::Value = serde_json::from_slice(&response).unwrap();
        assert!(value["error"].as_str().unwrap().contains("bogus"));
        // Same connection still answers real commands.
        write_frame(&mut stream, &serde_json::to_vec("prometheus").unwrap()).unwrap();
        let response = read_frame(&mut stream).unwrap();
        assert!(String::from_utf8(response).unwrap().contains("up 1"));
    }
}
