//! # cais-telemetry
//!
//! Workspace-wide observability for the CAIS platform: a lock-sharded
//! metrics [`Registry`] (counters, gauges, log₂-bucketed latency
//! histograms), a causal span [`Tracer`] with per-subsystem bounded
//! rings and a [`TraceContext`] that propagates across threads,
//! message envelopes and the framed-TCP wire, a [`FlightRecorder`]
//! that dumps recent spans to disk when anomalies fire, and several
//! exposition formats — Prometheus-style text (with derived p50/p95/p99
//! gauges), a `serde_json` [`Snapshot`], and Chrome `trace_event` JSON
//! openable in Perfetto — served over the workspace's length-prefixed
//! TCP framing by [`TelemetryServer`].
//!
//! The paper's operational module exists to give analysts visibility
//! into the intelligence pipeline; this crate gives the *platform
//! itself* that visibility. Every other crate in the workspace records
//! into a shared [`Registry`]: the ingestion pipeline its per-stage
//! counts and latencies, the broker its publish/delivery traffic and
//! queue depths, the MISP store its mutation counts, the feed
//! scheduler its parse errors, and the dashboard its applied/decode
//! counters.
//!
//! Two design rules keep the numbers trustworthy:
//!
//! - **Merge-exactness.** Counters and histograms merge by addition
//!   ([`HistogramSnapshot::merge`] is associative and commutative), so
//!   parallel-shard recorders fold into exactly the totals the serial
//!   path produces. The pipeline's serial and parallel ingestion paths
//!   are required (and property-tested) to yield identical counter
//!   values.
//! - **Single timing source.** Instrumented components feed existing
//!   report structs (e.g. the pipeline's `StageMetrics`) from the same
//!   recorders rather than timing twice, so the dashboard and the
//!   scrape endpoint can never disagree.
//!
//! # Examples
//!
//! ```
//! use cais_telemetry::{Registry, TelemetryServer, scrape, labeled};
//!
//! let registry = Registry::new();
//! registry.counter("pipeline_rounds_total").inc();
//! registry
//!     .histogram(&labeled("stage_nanos", &[("stage", "dedup")]))
//!     .record(12_345);
//!
//! let server = TelemetryServer::bind(registry, None, "127.0.0.1:0")?;
//! let text = scrape(server.local_addr(), "prometheus")?;
//! assert!(text.contains("pipeline_rounds_total 1"));
//! assert!(text.contains("stage_nanos_count{stage=\"dedup\"} 1"));
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expose;
pub mod flight;
pub mod perfetto;
pub mod registry;
pub mod serve_metrics;
pub mod server;
pub mod trace;

pub use expose::{json_text, percentiles, prometheus_text, PERCENTILES};
pub use flight::FlightRecorder;
pub use perfetto::{chrome_trace_json, chrome_trace_jsonl};
pub use registry::{
    label_value, labeled, split_labels, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    Snapshot,
};
pub use serve_metrics::RegistryServeMetrics;
pub use server::{scrape, TelemetryServer};
pub use trace::{SpanGuard, TraceContext, TraceEvent, Tracer};
