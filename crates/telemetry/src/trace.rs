//! Causal span tracing with per-subsystem bounded ring recorders.
//!
//! A [`Tracer`] records [`TraceEvent`]s — instantaneous *events*
//! ([`Tracer::event`]) and timed *spans* whose guards record elapsed
//! nanoseconds on drop — into one bounded ring buffer per subsystem
//! (`ingress`, `pipeline`, `store`, `share`, `taxii`, `bus`, …), so a
//! chatty subsystem can never evict another subsystem's history.
//!
//! Spans are *causal*: every sampled span carries a [`TraceContext`]
//! (trace id + its own span id), children minted with
//! [`Tracer::child`] inherit the trace id and point at their parent,
//! and the resulting parent links reconstruct one tree per request
//! across every subsystem it touched. Three mechanisms carry a context
//! across boundaries:
//!
//! - **In-process**: pass [`SpanGuard::context`] to [`Tracer::child`].
//! - **Across async seams** (an event persisted now, exported later):
//!   [`Tracer::link`] binds a key (an event UUID) to the latest span
//!   that touched it, and [`Tracer::follow`] continues the chain from
//!   wherever it left off.
//! - **Across the wire**: [`TraceContext::header`] converts to the
//!   16-byte [`cais_common::frame::TraceHeader`] the framed-TCP
//!   transport carries; [`TraceContext::from_header`] resurrects it on
//!   the far side. Untagged frames from pre-trace peers simply start a
//!   fresh root ([`Tracer::child_of`] with `None`).
//!
//! Sampling is decided once, at the root ([`Tracer::set_sample_every`]):
//! an unsampled root hands out an unsampled context, and every
//! descendant guard becomes a no-op — no allocation, no lock — so
//! 1-in-N tracing costs close to nothing on the skipped requests.
//!
//! Timestamps come from the wall clock by default, or from an injected
//! [`Clock`](cais_common::resilience::Clock) ([`Tracer::set_clock`]) so
//! chaos tests can assert exact span trees in virtual time.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cais_common::frame::TraceHeader;
use cais_common::resilience::Clock;
use cais_common::Timestamp;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

/// Default per-subsystem ring-buffer capacity.
const DEFAULT_CAPACITY: usize = 1024;

/// Subsystem legacy [`Tracer::span`]/[`Tracer::event`] calls record
/// into.
pub const GENERAL_SUBSYSTEM: &str = "general";

/// Bound on the UUID→context link map: the oldest links are forgotten
/// first, which at worst turns a very old continuation into a fresh
/// root trace.
const LINK_CAPACITY: usize = 4096;

/// The causal identity a span hands to its descendants: which trace it
/// belongs to and which span id children should point at. `Copy`, 17
/// bytes — cheap to thread through calls and message envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceContext {
    /// Trace this span belongs to (shared by the whole tree).
    pub trace_id: u64,
    /// The span's own id — children record it as their parent.
    pub span_id: u64,
    /// Whether the root sampled this trace. Unsampled contexts make
    /// every descendant guard a no-op.
    pub sampled: bool,
}

impl TraceContext {
    /// The context of an unsampled (or absent) trace.
    pub const UNSAMPLED: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
        sampled: false,
    };

    /// The wire header for this context, `None` when unsampled (so
    /// unsampled traffic stays byte-identical to untagged frames).
    pub fn header(&self) -> Option<TraceHeader> {
        self.sampled.then_some(TraceHeader {
            trace_id: self.trace_id,
            span_id: self.span_id,
        })
    }

    /// Resurrects a context from a wire header (always sampled: the
    /// sender only tags frames for sampled traces).
    pub fn from_header(header: TraceHeader) -> Self {
        TraceContext {
            trace_id: header.trace_id,
            span_id: header.span_id,
            sampled: true,
        }
    }
}

/// One recorded span or event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Span or event name, e.g. `ingest_round`.
    pub name: String,
    /// Wall-clock time the span ended / the event fired.
    pub at: Timestamp,
    /// Elapsed nanoseconds for spans; `None` for instantaneous events.
    pub duration_nanos: Option<u64>,
    /// Structured `key=value` fields.
    pub fields: Vec<(String, String)>,
    /// Subsystem ring the event was recorded into (empty in records
    /// serialized before causal tracing).
    #[serde(default)]
    pub subsystem: String,
    /// Trace the span belongs to; 0 for instantaneous events and
    /// pre-causal records.
    #[serde(default)]
    pub trace_id: u64,
    /// The span's own id; 0 for instantaneous events.
    #[serde(default)]
    pub span_id: u64,
    /// Parent span id; 0 marks a root.
    #[serde(default)]
    pub parent_id: u64,
    /// Tracer-wide record sequence number (total order across rings).
    #[serde(default)]
    pub seq: u64,
}

struct TracerInner {
    rings: Mutex<BTreeMap<String, VecDeque<TraceEvent>>>,
    links: Mutex<LinkMap>,
    clock: RwLock<Option<Arc<dyn Clock>>>,
    capacity: usize,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    root_count: AtomicU64,
    sample_every: AtomicU64,
    enabled: AtomicBool,
}

#[derive(Default)]
struct LinkMap {
    by_key: HashMap<String, TraceContext>,
    order: VecDeque<String>,
}

impl LinkMap {
    fn link(&mut self, key: &str, ctx: TraceContext) {
        if self.by_key.insert(key.to_owned(), ctx).is_none() {
            self.order.push_back(key.to_owned());
            while self.order.len() > LINK_CAPACITY {
                if let Some(evicted) = self.order.pop_front() {
                    self.by_key.remove(&evicted);
                }
            }
        }
    }
}

/// A cheaply clonable causal tracer sharing one set of per-subsystem
/// bounded recorders.
///
/// # Examples
///
/// ```
/// use cais_telemetry::Tracer;
///
/// let tracer = Tracer::new();
/// let parent_ctx = {
///     let mut root = tracer.root("ingress", "feed_poll");
///     root.field("feed", "osint-a");
///     let ctx = root.context();
///     let _child = tracer.child(ctx, "pipeline", "ingest_round");
///     ctx
/// }; // durations recorded on drop
/// let spans = tracer.snapshot();
/// assert_eq!(spans.len(), 2);
/// let child = spans.iter().find(|s| s.name == "ingest_round").unwrap();
/// assert_eq!(child.parent_id, parent_ctx.span_id);
/// assert_eq!(child.trace_id, parent_ctx.trace_id);
/// ```
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer with the default (1024 events per subsystem) capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A tracer keeping at most `capacity` events *per subsystem ring*;
    /// older events in a ring are evicted first.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                rings: Mutex::new(BTreeMap::new()),
                links: Mutex::new(LinkMap::default()),
                clock: RwLock::new(None),
                capacity: capacity.max(1),
                next_id: AtomicU64::new(1),
                next_seq: AtomicU64::new(1),
                root_count: AtomicU64::new(0),
                sample_every: AtomicU64::new(1),
                enabled: AtomicBool::new(true),
            }),
        }
    }

    /// A tracer that records nothing until [`Tracer::set_enabled`]
    /// turns it on — for benchmarking the untraced baseline.
    pub fn disabled() -> Self {
        let tracer = Tracer::new();
        tracer.set_enabled(false);
        tracer
    }

    /// Turns recording on or off. Disabled tracers hand out unsampled
    /// guards, so span sites cost a single atomic load.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the tracer is currently recording.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Samples 1 in `n` root spans (children follow their root's
    /// decision). `0` and `1` both mean "sample everything".
    pub fn set_sample_every(&self, n: u64) {
        self.inner.sample_every.store(n.max(1), Ordering::Relaxed);
    }

    /// Routes span timestamps through an injected clock (virtual time
    /// for deterministic chaos assertions). Durations become the
    /// clock's start→end delta instead of monotonic elapsed time.
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *self.inner.clock.write() = Some(clock);
    }

    fn now(&self) -> Timestamp {
        match self.inner.clock.read().as_ref() {
            Some(clock) => clock.now(),
            None => Timestamp::now(),
        }
    }

    fn alloc_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Starts a new root span: mints a fresh trace id, applies the
    /// sampling decision, and records into `subsystem`'s ring on drop.
    pub fn root(&self, subsystem: &str, name: &str) -> SpanGuard {
        if !self.enabled() {
            return self.noop_guard();
        }
        let every = self.inner.sample_every.load(Ordering::Relaxed);
        let count = self.inner.root_count.fetch_add(1, Ordering::Relaxed);
        if every > 1 && !count.is_multiple_of(every) {
            return self.noop_guard();
        }
        let ctx = TraceContext {
            trace_id: self.alloc_id(),
            span_id: self.alloc_id(),
            sampled: true,
        };
        self.guard(subsystem, name, ctx, 0)
    }

    /// Starts a child span inside `parent`'s trace. Unsampled parents
    /// yield a no-op guard.
    pub fn child(&self, parent: TraceContext, subsystem: &str, name: &str) -> SpanGuard {
        if !self.enabled() || !parent.sampled {
            return self.noop_guard();
        }
        let ctx = TraceContext {
            trace_id: parent.trace_id,
            span_id: self.alloc_id(),
            sampled: true,
        };
        self.guard(subsystem, name, ctx, parent.span_id)
    }

    /// [`Tracer::child`] when a parent is present, [`Tracer::root`]
    /// otherwise — the shape every ingress that *may* have an upstream
    /// context (a tagged frame, a bus envelope) wants.
    pub fn child_of(&self, parent: Option<TraceContext>, subsystem: &str, name: &str) -> SpanGuard {
        match parent {
            Some(parent) => self.child(parent, subsystem, name),
            None => self.root(subsystem, name),
        }
    }

    /// Continues the causal chain bound to `key` (see
    /// [`Tracer::link`]): the new span becomes a child of the last span
    /// linked to the key — or a root if none — and takes the key over,
    /// so the next `follow` continues from *this* span.
    pub fn follow(&self, key: &str, subsystem: &str, name: &str) -> SpanGuard {
        let guard = self.child_of(self.linked(key), subsystem, name);
        if guard.ctx.sampled {
            self.link(key, guard.ctx);
        }
        guard
    }

    /// Binds `key` (typically an event UUID) to a context so a later
    /// span in another subsystem can continue the trace. Unsampled
    /// contexts are ignored. The map is bounded; the oldest keys are
    /// forgotten first.
    pub fn link(&self, key: &str, ctx: TraceContext) {
        if !ctx.sampled {
            return;
        }
        self.inner.links.lock().link(key, ctx);
    }

    /// The context last linked to `key`, if it is still remembered.
    pub fn linked(&self, key: &str) -> Option<TraceContext> {
        self.inner.links.lock().by_key.get(key).copied()
    }

    fn guard(&self, subsystem: &str, name: &str, ctx: TraceContext, parent_id: u64) -> SpanGuard {
        SpanGuard {
            tracer: self.clone(),
            name: name.to_owned(),
            subsystem: subsystem.to_owned(),
            ctx,
            parent_id,
            started: Instant::now(),
            started_at: self.now(),
            fields: Vec::new(),
        }
    }

    fn noop_guard(&self) -> SpanGuard {
        SpanGuard {
            tracer: self.clone(),
            name: String::new(),
            subsystem: String::new(),
            ctx: TraceContext::UNSAMPLED,
            parent_id: 0,
            started: Instant::now(),
            started_at: Timestamp::EPOCH,
            fields: Vec::new(),
        }
    }

    /// Starts a timed root span in the [`GENERAL_SUBSYSTEM`] ring (the
    /// pre-causal API, kept for compatibility).
    pub fn span(&self, name: &str) -> SpanGuard {
        self.root(GENERAL_SUBSYSTEM, name)
    }

    /// Records an instantaneous event in the [`GENERAL_SUBSYSTEM`]
    /// ring.
    pub fn event(&self, name: &str, fields: &[(&str, &str)]) {
        self.event_in(GENERAL_SUBSYSTEM, name, fields);
    }

    /// Records an instantaneous event in `subsystem`'s ring.
    pub fn event_in(&self, subsystem: &str, name: &str, fields: &[(&str, &str)]) {
        if !self.enabled() {
            return;
        }
        let at = self.now();
        self.push(TraceEvent {
            name: name.to_owned(),
            at,
            duration_nanos: None,
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            subsystem: subsystem.to_owned(),
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            seq: 0,
        });
    }

    fn push(&self, mut event: TraceEvent) {
        event.seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut rings = self.inner.rings.lock();
        let ring = rings.entry(event.subsystem.clone()).or_default();
        while ring.len() >= self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Number of buffered events across all subsystem rings.
    pub fn len(&self) -> usize {
        self.inner.rings.lock().values().map(VecDeque::len).sum()
    }

    /// Whether every ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The subsystems that have recorded at least one event.
    pub fn subsystems(&self) -> Vec<String> {
        self.inner.rings.lock().keys().cloned().collect()
    }

    /// Non-destructive copy of every buffered event, in record order
    /// (by sequence number) across all rings. Two concurrent scrapers
    /// both see the full buffer.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let rings = self.inner.rings.lock();
        let mut events: Vec<TraceEvent> = rings.values().flatten().cloned().collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Non-destructive copy of one subsystem's ring, oldest first.
    pub fn snapshot_subsystem(&self, subsystem: &str) -> Vec<TraceEvent> {
        self.inner
            .rings
            .lock()
            .get(subsystem)
            .map(|ring| ring.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The last `n` events of every subsystem ring — the flight
    /// recorder's dump shape.
    pub fn tail(&self, n: usize) -> BTreeMap<String, Vec<TraceEvent>> {
        let rings = self.inner.rings.lock();
        rings
            .iter()
            .map(|(subsystem, ring)| {
                let skip = ring.len().saturating_sub(n);
                (subsystem.clone(), ring.iter().skip(skip).cloned().collect())
            })
            .collect()
    }

    /// Copies the buffered events, oldest first, without clearing.
    /// Alias of [`Tracer::snapshot`], kept for compatibility.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.snapshot()
    }

    /// Removes and returns the buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut rings = self.inner.rings.lock();
        let mut events: Vec<TraceEvent> = rings.values_mut().flat_map(|r| r.drain(..)).collect();
        events.sort_by_key(|e| e.seq);
        events
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("buffered", &self.len())
            .field("capacity", &self.inner.capacity)
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// A live span; records its duration into the tracer on drop. Guards
/// from unsampled traces skip recording entirely.
pub struct SpanGuard {
    tracer: Tracer,
    name: String,
    subsystem: String,
    ctx: TraceContext,
    parent_id: u64,
    started: Instant,
    started_at: Timestamp,
    fields: Vec<(String, String)>,
}

impl SpanGuard {
    /// The span's causal context, for minting children or tagging
    /// message envelopes and frames.
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// Whether this guard will record (its trace was sampled).
    pub fn sampled(&self) -> bool {
        self.ctx.sampled
    }

    /// Attaches a `key=value` field to the span (no-op when
    /// unsampled).
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) {
        if self.ctx.sampled {
            self.fields.push((key.to_owned(), value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.ctx.sampled {
            return;
        }
        let at = self.tracer.now();
        // With an injected clock the monotonic elapsed time is
        // meaningless; the clock's own delta is the duration.
        let injected = self.tracer.inner.clock.read().is_some();
        let duration_nanos = if injected {
            let delta_millis = at
                .unix_millis()
                .saturating_sub(self.started_at.unix_millis());
            (delta_millis.max(0) as u64).saturating_mul(1_000_000)
        } else {
            self.started.elapsed().as_nanos() as u64
        };
        self.tracer.push(TraceEvent {
            name: std::mem::take(&mut self.name),
            at,
            duration_nanos: Some(duration_nanos),
            fields: std::mem::take(&mut self.fields),
            subsystem: std::mem::take(&mut self.subsystem),
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_id: self.parent_id,
            seq: 0,
        });
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .field("subsystem", &self.subsystem)
            .field("trace_id", &self.ctx.trace_id)
            .field("span_id", &self.ctx.span_id)
            .field("parent_id", &self.parent_id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::resilience::VirtualClock;
    use std::time::Duration;

    #[test]
    fn span_records_duration_and_fields() {
        let tracer = Tracer::new();
        {
            let mut span = tracer.span("work");
            span.field("records", 42);
            span.field("path", "parallel");
        }
        let events = tracer.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "work");
        assert!(events[0].duration_nanos.is_some());
        assert_eq!(events[0].subsystem, GENERAL_SUBSYSTEM);
        assert_eq!(
            events[0].fields,
            vec![
                ("records".to_owned(), "42".to_owned()),
                ("path".to_owned(), "parallel".to_owned())
            ]
        );
        assert!(tracer.is_empty());
    }

    #[test]
    fn event_has_no_duration() {
        let tracer = Tracer::new();
        tracer.event("decode_failure", &[("topic", "cais.rioc.published")]);
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].duration_nanos, None);
        // events() does not clear.
        assert_eq!(tracer.len(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest_per_subsystem() {
        let tracer = Tracer::with_capacity(3);
        for i in 0..5 {
            tracer.event(&format!("e{i}"), &[]);
        }
        // A second subsystem's ring is unaffected by the first's churn.
        tracer.event_in("bus", "publish", &[]);
        let names: Vec<_> = tracer
            .snapshot_subsystem(GENERAL_SUBSYSTEM)
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["e2", "e3", "e4"]);
        assert_eq!(tracer.snapshot_subsystem("bus").len(), 1);
        assert_eq!(
            tracer.subsystems(),
            vec!["bus".to_owned(), GENERAL_SUBSYSTEM.to_owned()]
        );
    }

    #[test]
    fn clones_share_the_buffer() {
        let tracer = Tracer::new();
        tracer.clone().event("shared", &[]);
        assert_eq!(tracer.len(), 1);
    }

    #[test]
    fn trace_event_serde_roundtrip() {
        let tracer = Tracer::new();
        tracer.event("e", &[("k", "v")]);
        let _root = tracer.root("pipeline", "round");
        drop(_root);
        let events = tracer.events();
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn pre_causal_records_deserialize_with_defaults() {
        let json = r#"[{"name":"old","at":"2026-01-01T00:00:00.000Z",
                        "duration_nanos":null,"fields":[]}]"#;
        let back: Vec<TraceEvent> = serde_json::from_str(json).unwrap();
        assert_eq!(back[0].trace_id, 0);
        assert_eq!(back[0].parent_id, 0);
        assert!(back[0].subsystem.is_empty());
    }

    #[test]
    fn children_inherit_trace_and_point_at_parent() {
        let tracer = Tracer::new();
        let root_ctx;
        let child_ctx;
        {
            let root = tracer.root("ingress", "feed_poll");
            root_ctx = root.context();
            let child = tracer.child(root_ctx, "pipeline", "ingest_round");
            child_ctx = child.context();
            let _grandchild = tracer.child(child.context(), "store", "insert");
        }
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 3);
        for span in &spans {
            assert_eq!(span.trace_id, root_ctx.trace_id);
        }
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("feed_poll").parent_id, 0);
        assert_eq!(by_name("ingest_round").parent_id, root_ctx.span_id);
        assert_eq!(by_name("insert").parent_id, child_ctx.span_id);
        // Distinct traces get distinct ids.
        let other = tracer.root("ingress", "feed_poll");
        assert_ne!(other.context().trace_id, root_ctx.trace_id);
    }

    #[test]
    fn snapshot_is_non_destructive_and_ordered() {
        let tracer = Tracer::new();
        drop(tracer.root("a", "first"));
        drop(tracer.root("b", "second"));
        drop(tracer.root("a", "third"));
        let first = tracer.snapshot();
        let second = tracer.snapshot();
        assert_eq!(first, second, "two scrapers must see the same buffer");
        let names: Vec<_> = first.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
        assert_eq!(tracer.len(), 3);
        assert_eq!(tracer.drain().len(), 3);
        assert!(tracer.is_empty());
    }

    #[test]
    fn sampling_keeps_one_in_n_roots_and_drops_their_children() {
        let tracer = Tracer::new();
        tracer.set_sample_every(4);
        let mut sampled = 0;
        for _ in 0..16 {
            let root = tracer.root("ingress", "poll");
            if root.sampled() {
                sampled += 1;
            }
            let child = tracer.child(root.context(), "pipeline", "round");
            assert_eq!(child.sampled(), root.sampled());
        }
        assert_eq!(sampled, 4);
        // Only sampled guards recorded anything: 4 roots + 4 children.
        assert_eq!(tracer.snapshot().len(), 8);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        drop(tracer.root("ingress", "poll"));
        tracer.event("e", &[]);
        assert!(tracer.is_empty());
        tracer.set_enabled(true);
        drop(tracer.root("ingress", "poll"));
        assert_eq!(tracer.len(), 1);
    }

    #[test]
    fn follow_chains_spans_across_subsystems() {
        let tracer = Tracer::new();
        let uuid = "11111111-2222-3333-4444-555555555555";
        let store_span_id;
        {
            let store = tracer.follow(uuid, "store", "insert");
            store_span_id = store.context().span_id;
        }
        let share_span_id;
        {
            let share = tracer.follow(uuid, "share", "cache_fill");
            share_span_id = share.context().span_id;
        }
        {
            let _taxii = tracer.follow(uuid, "taxii", "get_objects");
        }
        let spans = tracer.snapshot();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("insert").parent_id, 0);
        assert_eq!(by_name("cache_fill").parent_id, store_span_id);
        assert_eq!(by_name("get_objects").parent_id, share_span_id);
        let trace = by_name("insert").trace_id;
        assert!(spans.iter().all(|s| s.trace_id == trace));
    }

    #[test]
    fn context_roundtrips_through_the_frame_header() {
        let tracer = Tracer::new();
        let root = tracer.root("bus", "publish");
        let header = root.context().header().expect("sampled");
        let back = TraceContext::from_header(header);
        assert_eq!(back.trace_id, root.context().trace_id);
        assert_eq!(back.span_id, root.context().span_id);
        assert!(back.sampled);
        // Unsampled contexts produce no header at all.
        assert_eq!(TraceContext::UNSAMPLED.header(), None);
    }

    #[test]
    fn injected_clock_drives_timestamps_and_durations() {
        let clock = VirtualClock::starting_at(Timestamp::from_unix_secs(1_000));
        let tracer = Tracer::new();
        tracer.set_clock(Arc::new(clock.clone()));
        {
            let _span = tracer.root("decay", "sweep");
            clock.advance(Duration::from_millis(250));
        }
        let spans = tracer.snapshot();
        assert_eq!(spans[0].at, Timestamp::from_unix_millis(1_000_250));
        assert_eq!(spans[0].duration_nanos, Some(250_000_000));
    }

    #[test]
    fn tail_returns_last_n_per_subsystem() {
        let tracer = Tracer::new();
        for i in 0..5 {
            tracer.event_in("pipeline", &format!("p{i}"), &[]);
        }
        tracer.event_in("bus", "b0", &[]);
        let tail = tracer.tail(2);
        let names: Vec<_> = tail["pipeline"].iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["p3", "p4"]);
        assert_eq!(tail["bus"].len(), 1);
    }
}
