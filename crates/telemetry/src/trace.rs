//! A lightweight span/event tracer with a bounded ring-buffer
//! recorder.
//!
//! A [`Tracer`] records two kinds of [`TraceEvent`]: instantaneous
//! *events* ([`Tracer::event`]) and timed *spans* ([`Tracer::span`],
//! whose guard records the elapsed nanoseconds when dropped). Both
//! carry structured `key=value` fields. The recorder is a fixed-size
//! ring buffer: the platform can trace every ingestion round forever
//! and memory stays bounded, with the newest events winning.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use cais_common::Timestamp;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Default ring-buffer capacity.
const DEFAULT_CAPACITY: usize = 1024;

/// One recorded span or event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Span or event name, e.g. `ingest_round`.
    pub name: String,
    /// Wall-clock time the span ended / the event fired.
    pub at: Timestamp,
    /// Elapsed nanoseconds for spans; `None` for instantaneous events.
    pub duration_nanos: Option<u64>,
    /// Structured `key=value` fields.
    pub fields: Vec<(String, String)>,
}

struct TracerInner {
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

/// A cheaply clonable tracer sharing one bounded recorder.
///
/// # Examples
///
/// ```
/// use cais_telemetry::Tracer;
///
/// let tracer = Tracer::new();
/// {
///     let mut span = tracer.span("ingest_round");
///     span.field("records", 128);
///     // ... work ...
/// } // duration recorded on drop
/// let events = tracer.drain();
/// assert_eq!(events[0].name, "ingest_round");
/// assert!(events[0].duration_nanos.is_some());
/// ```
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer with the default (1024-event) capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A tracer keeping at most `capacity` events; older events are
    /// evicted first.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                events: Mutex::new(VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY))),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Starts a timed span; the elapsed time is recorded when the
    /// returned guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard {
            tracer: self.clone(),
            name: name.to_owned(),
            started: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Records an instantaneous event.
    pub fn event(&self, name: &str, fields: &[(&str, &str)]) {
        self.push(TraceEvent {
            name: name.to_owned(),
            at: Timestamp::now(),
            duration_nanos: None,
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        });
    }

    fn push(&self, event: TraceEvent) {
        let mut events = self.inner.events.lock();
        while events.len() >= self.inner.capacity {
            events.pop_front();
        }
        events.push_back(event);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the buffered events, oldest first, without clearing.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().iter().cloned().collect()
    }

    /// Removes and returns the buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().drain(..).collect()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("buffered", &self.len())
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

/// A live span; records its duration into the tracer on drop.
pub struct SpanGuard {
    tracer: Tracer,
    name: String,
    started: Instant,
    fields: Vec<(String, String)>,
}

impl SpanGuard {
    /// Attaches a `key=value` field to the span.
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) {
        self.fields.push((key.to_owned(), value.to_string()));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.tracer.push(TraceEvent {
            name: std::mem::take(&mut self.name),
            at: Timestamp::now(),
            duration_nanos: Some(self.started.elapsed().as_nanos() as u64),
            fields: std::mem::take(&mut self.fields),
        });
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_duration_and_fields() {
        let tracer = Tracer::new();
        {
            let mut span = tracer.span("work");
            span.field("records", 42);
            span.field("path", "parallel");
        }
        let events = tracer.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "work");
        assert!(events[0].duration_nanos.is_some());
        assert_eq!(
            events[0].fields,
            vec![
                ("records".to_owned(), "42".to_owned()),
                ("path".to_owned(), "parallel".to_owned())
            ]
        );
        assert!(tracer.is_empty());
    }

    #[test]
    fn event_has_no_duration() {
        let tracer = Tracer::new();
        tracer.event("decode_failure", &[("topic", "cais.rioc.published")]);
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].duration_nanos, None);
        // events() does not clear.
        assert_eq!(tracer.len(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let tracer = Tracer::with_capacity(3);
        for i in 0..5 {
            tracer.event(&format!("e{i}"), &[]);
        }
        let names: Vec<_> = tracer.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn clones_share_the_buffer() {
        let tracer = Tracer::new();
        tracer.clone().event("shared", &[]);
        assert_eq!(tracer.len(), 1);
    }

    #[test]
    fn trace_event_serde_roundtrip() {
        let tracer = Tracer::new();
        tracer.event("e", &[("k", "v")]);
        let events = tracer.events();
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
    }
}
