//! The [`Registry`]-backed [`ServeMetrics`] implementation.
//!
//! The serving core lives in `cais_common::serve` — *below* this crate
//! — so it reports through the dependency-free
//! [`cais_common::serve::ServeMetrics`] trait. This module closes the
//! loop: [`RegistryServeMetrics`] binds those hooks to a [`Registry`],
//! surfacing the `serve_*` family, labeled by server so the TAXII
//! front-end, the scrape endpoint and the bus bridge stay separable on
//! one registry:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `serve_accepted_total{server=…}` | counter | connections accepted |
//! | `serve_accept_errors_total{server=…}` | counter | transient `accept()` failures (e.g. `EMFILE`) ridden out with backoff |
//! | `serve_rejected_total{server=…}` | counter | connections closed by the max-connection guard |
//! | `serve_closed_total{server=…}` | counter | connections closed, any reason |
//! | `serve_timeouts_total{server=…}` | counter | closes by the idle/stalled-read reaper |
//! | `serve_connections{server=…}` | gauge | live connections, sampled per sweep |
//! | `serve_queue_depth_bytes{server=…}` | gauge | queued-but-unwritten outbound bytes |
//! | `serve_frames_in_total{server=…}` | counter | complete inbound frames parsed |
//! | `serve_frames_out_total{server=…}` | counter | outbound frames fully written |
//! | `serve_request_nanos{server=…}` | histogram | request arrival → reply fully written |

use cais_common::serve::ServeMetrics;

use crate::registry::{labeled, Counter, Gauge, Histogram, Registry};

/// [`ServeMetrics`] over a [`Registry`]: the `serve_*` metric family,
/// labeled with the server's name.
///
/// # Examples
///
/// ```
/// use cais_telemetry::{Registry, RegistryServeMetrics};
///
/// let registry = Registry::new();
/// let metrics = RegistryServeMetrics::new(&registry, "taxii");
/// // Hand `metrics` to `TaxiiServer::serve_on_core` / `serve::serve`.
/// # let _ = metrics;
/// ```
#[derive(Debug, Clone)]
pub struct RegistryServeMetrics {
    accepted: Counter,
    accept_errors: Counter,
    rejected: Counter,
    closed: Counter,
    timeouts: Counter,
    connections: Gauge,
    queue_depth: Gauge,
    frames_in: Counter,
    frames_out: Counter,
    request_nanos: Histogram,
}

impl RegistryServeMetrics {
    /// Creates (or rebinds) the `serve_*` series for one named server
    /// on `registry`.
    pub fn new(registry: &Registry, server: &str) -> Self {
        let tag = [("server", server)];
        RegistryServeMetrics {
            accepted: registry.counter(&labeled("serve_accepted_total", &tag)),
            accept_errors: registry.counter(&labeled("serve_accept_errors_total", &tag)),
            rejected: registry.counter(&labeled("serve_rejected_total", &tag)),
            closed: registry.counter(&labeled("serve_closed_total", &tag)),
            timeouts: registry.counter(&labeled("serve_timeouts_total", &tag)),
            connections: registry.gauge(&labeled("serve_connections", &tag)),
            queue_depth: registry.gauge(&labeled("serve_queue_depth_bytes", &tag)),
            frames_in: registry.counter(&labeled("serve_frames_in_total", &tag)),
            frames_out: registry.counter(&labeled("serve_frames_out_total", &tag)),
            request_nanos: registry.histogram(&labeled("serve_request_nanos", &tag)),
        }
    }
}

impl ServeMetrics for RegistryServeMetrics {
    fn accepted(&self) {
        self.accepted.inc();
    }

    fn accept_error(&self) {
        self.accept_errors.inc();
    }

    fn rejected(&self) {
        self.rejected.inc();
    }

    fn closed(&self) {
        self.closed.inc();
    }

    fn timed_out(&self) {
        self.timeouts.inc();
    }

    fn connections(&self, live: i64) {
        self.connections.set(live);
    }

    fn queue_depth(&self, bytes: i64) {
        self.queue_depth.set(bytes);
    }

    fn frame_in(&self) {
        self.frames_in.inc();
    }

    fn frame_out(&self) {
        self.frames_out.inc();
    }

    fn request_nanos(&self, nanos: u64) {
        self.request_nanos.record(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_drive_the_labeled_serve_family() {
        let registry = Registry::new();
        let metrics = RegistryServeMetrics::new(&registry, "taxii");
        metrics.accepted();
        metrics.accepted();
        metrics.accept_error();
        metrics.rejected();
        metrics.closed();
        metrics.timed_out();
        metrics.connections(7);
        metrics.queue_depth(1024);
        metrics.frame_in();
        metrics.frame_out();
        metrics.request_nanos(5_000);

        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counters[r#"serve_accepted_total{server="taxii"}"#],
            2
        );
        assert_eq!(
            snapshot.counters[r#"serve_accept_errors_total{server="taxii"}"#],
            1
        );
        assert_eq!(
            snapshot.counters[r#"serve_rejected_total{server="taxii"}"#],
            1
        );
        assert_eq!(
            snapshot.counters[r#"serve_closed_total{server="taxii"}"#],
            1
        );
        assert_eq!(
            snapshot.counters[r#"serve_timeouts_total{server="taxii"}"#],
            1
        );
        assert_eq!(snapshot.gauges[r#"serve_connections{server="taxii"}"#], 7);
        assert_eq!(
            snapshot.gauges[r#"serve_queue_depth_bytes{server="taxii"}"#],
            1024
        );
        assert_eq!(
            snapshot.counters[r#"serve_frames_in_total{server="taxii"}"#],
            1
        );
        assert_eq!(
            snapshot.counters[r#"serve_frames_out_total{server="taxii"}"#],
            1
        );
        assert_eq!(
            snapshot.histograms[r#"serve_request_nanos{server="taxii"}"#].count,
            1
        );
    }

    #[test]
    fn two_servers_stay_separable() {
        let registry = Registry::new();
        let taxii = RegistryServeMetrics::new(&registry, "taxii");
        let bus = RegistryServeMetrics::new(&registry, "bus");
        taxii.accepted();
        bus.accepted();
        bus.accepted();
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counters[r#"serve_accepted_total{server="taxii"}"#],
            1
        );
        assert_eq!(
            snapshot.counters[r#"serve_accepted_total{server="bus"}"#],
            2
        );
    }
}
