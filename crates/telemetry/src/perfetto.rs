//! Chrome `trace_event` export: render recorded spans in the JSON
//! format Perfetto (and `chrome://tracing`) open directly.
//!
//! Spans become `"ph": "X"` *complete* events (start timestamp + wall
//! duration, both in microseconds); instantaneous events become
//! `"ph": "i"` instants. Each subsystem ring maps to one "thread" of a
//! single process, with `"ph": "M"` metadata events naming the tracks,
//! so a trace opens as one lane per subsystem with causally-related
//! spans stacked by time. The causal ids (`trace_id`, `span_id`,
//! `parent_id`) ride along in `args`, which is how the span-tree
//! integration tests walk parentage on the exported form.

use std::collections::BTreeMap;

use serde_json::{Map, Value};

use crate::trace::TraceEvent;

/// The process id every exported event carries (the platform is one
/// process; subsystems are its tracks).
const EXPORT_PID: u64 = 1;

fn event_value(event: &TraceEvent, tid: u64) -> Value {
    let mut args = Map::new();
    for (key, value) in &event.fields {
        args.insert(key.clone(), Value::String(value.clone()));
    }
    args.insert("trace_id".to_owned(), Value::from(event.trace_id));
    args.insert("span_id".to_owned(), Value::from(event.span_id));
    args.insert("parent_id".to_owned(), Value::from(event.parent_id));

    let mut out = Map::new();
    out.insert("name".to_owned(), Value::String(event.name.clone()));
    out.insert("cat".to_owned(), Value::String(event.subsystem.clone()));
    out.insert("pid".to_owned(), Value::from(EXPORT_PID));
    out.insert("tid".to_owned(), Value::from(tid));
    let end_us = event.at.unix_millis().saturating_mul(1_000);
    match event.duration_nanos {
        Some(nanos) => {
            let dur_us = nanos / 1_000;
            out.insert("ph".to_owned(), Value::String("X".to_owned()));
            out.insert(
                "ts".to_owned(),
                Value::from(end_us.saturating_sub(dur_us as i64)),
            );
            out.insert("dur".to_owned(), Value::from(dur_us));
        }
        None => {
            out.insert("ph".to_owned(), Value::String("i".to_owned()));
            out.insert("ts".to_owned(), Value::from(end_us));
            out.insert("s".to_owned(), Value::String("g".to_owned()));
        }
    }
    out.insert("args".to_owned(), Value::Object(args));
    Value::Object(out)
}

/// Assigns one stable "thread" id per subsystem (in order of first
/// appearance) and returns the full event list: thread-name metadata
/// first, then every span/instant.
fn export_events(events: &[TraceEvent]) -> Vec<Value> {
    let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
    for event in events {
        let next = tids.len() as u64 + 1;
        tids.entry(event.subsystem.as_str()).or_insert(next);
    }
    let mut out: Vec<Value> = Vec::with_capacity(events.len() + tids.len());
    for (subsystem, tid) in &tids {
        let mut args = Map::new();
        args.insert("name".to_owned(), Value::String((*subsystem).to_owned()));
        let mut meta = Map::new();
        meta.insert("ph".to_owned(), Value::String("M".to_owned()));
        meta.insert("name".to_owned(), Value::String("thread_name".to_owned()));
        meta.insert("pid".to_owned(), Value::from(EXPORT_PID));
        meta.insert("tid".to_owned(), Value::from(*tid));
        meta.insert("args".to_owned(), Value::Object(args));
        out.push(Value::Object(meta));
    }
    for event in events {
        let tid = tids[event.subsystem.as_str()];
        out.push(event_value(event, tid));
    }
    out
}

/// Renders events as one Chrome trace JSON object
/// (`{"traceEvents": [...]}`), the file format Perfetto opens.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut doc = Map::new();
    doc.insert(
        "traceEvents".to_owned(),
        Value::Array(export_events(events)),
    );
    doc.insert("displayTimeUnit".to_owned(), Value::String("ms".to_owned()));
    serde_json::to_string_pretty(&Value::Object(doc)).unwrap_or_else(|_| "{}".to_owned())
}

/// Renders events as JSONL — one Chrome trace event object per line,
/// the streaming-friendly variant of the same format.
pub fn chrome_trace_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for value in export_events(events) {
        if let Ok(line) = serde_json::to_string(&value) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn sample_events() -> Vec<TraceEvent> {
        let tracer = Tracer::new();
        {
            let root = tracer.root("ingress", "feed_poll");
            let _child = tracer.child(root.context(), "pipeline", "ingest_round");
        }
        tracer.event_in("bus", "decode_failure", &[("topic", "t")]);
        tracer.snapshot()
    }

    #[test]
    fn spans_export_as_complete_events_with_causal_args() {
        let events = sample_events();
        let json = chrome_trace_json(&events);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let exported = doc["traceEvents"].as_array().unwrap();
        // 3 subsystems → 3 thread-name metadata events + 3 records.
        assert_eq!(exported.len(), 6);
        let complete: Vec<&Value> = exported
            .iter()
            .filter(|e| e["ph"] == Value::String("X".to_owned()))
            .collect();
        assert_eq!(complete.len(), 2);
        let child = complete
            .iter()
            .find(|e| e["name"] == Value::String("ingest_round".to_owned()))
            .unwrap();
        assert_eq!(child["cat"], Value::String("pipeline".to_owned()));
        assert!(child["args"]["span_id"].as_u64().unwrap() > 0);
        assert!(child["args"]["parent_id"].as_u64().unwrap() > 0);
        assert!(child["dur"].as_u64().is_some());
        assert!(child["ts"].as_i64().is_some());
    }

    #[test]
    fn instants_and_thread_names_are_emitted() {
        let events = sample_events();
        let json = chrome_trace_json(&events);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let exported = doc["traceEvents"].as_array().unwrap();
        let instant = exported
            .iter()
            .find(|e| e["ph"] == Value::String("i".to_owned()))
            .unwrap();
        assert_eq!(instant["name"], Value::String("decode_failure".to_owned()));
        let metas: Vec<&Value> = exported
            .iter()
            .filter(|e| e["ph"] == Value::String("M".to_owned()))
            .collect();
        assert_eq!(metas.len(), 3);
        // Distinct subsystems land on distinct tids.
        let mut tids: Vec<u64> = metas.iter().map(|m| m["tid"].as_u64().unwrap()).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3);
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let events = sample_events();
        let jsonl = chrome_trace_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in lines {
            let value: Value = serde_json::from_str(line).unwrap();
            assert!(value["ph"].as_str().is_some());
        }
    }

    #[test]
    fn empty_input_renders_an_empty_trace() {
        let json = chrome_trace_json(&[]);
        let doc: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(doc["traceEvents"], Value::Array(Vec::new()));
    }
}
