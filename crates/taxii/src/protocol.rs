//! The request/response protocol between TAXII client and server.

use cais_common::{Timestamp, Uuid};
use serde::{Deserialize, Serialize};

use crate::collection::{Collection, Envelope};

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "kebab-case")]
pub enum Request {
    /// Server discovery metadata.
    Discovery,
    /// List collections (without their objects).
    Collections,
    /// Fetch a page of objects from a collection.
    GetObjects {
        /// The target collection.
        collection: Uuid,
        /// Return only objects added strictly after this instant.
        #[serde(skip_serializing_if = "Option::is_none")]
        added_after: Option<Timestamp>,
        /// Return only objects of this STIX type (TAXII `match[type]`).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        object_type: Option<String>,
        /// Return only objects matching this `cais-search` query
        /// expression (e.g. `type:indicator AND value:evil`), parsed
        /// server-side; malformed expressions yield an error response.
        #[serde(default, rename = "match", skip_serializing_if = "Option::is_none")]
        match_expr: Option<String>,
        /// Page size.
        limit: usize,
    },
    /// Append objects to a collection.
    AddObjects {
        /// The target collection.
        collection: Uuid,
        /// The STIX objects to store.
        objects: Vec<serde_json::Value>,
    },
}

impl Request {
    /// The request's verb name, for logging and trace span fields.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Discovery => "discovery",
            Request::Collections => "collections",
            Request::GetObjects { .. } => "get-objects",
            Request::AddObjects { .. } => "add-objects",
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "kebab-case")]
pub enum Response {
    /// Discovery metadata.
    Discovery {
        /// Server title.
        title: String,
        /// Protocol version advertised.
        api_version: String,
    },
    /// Collections listing.
    Collections {
        /// The collections, objects omitted.
        collections: Vec<Collection>,
    },
    /// One page of objects.
    Objects {
        /// The envelope.
        envelope: Envelope,
    },
    /// Objects accepted.
    Accepted {
        /// How many were stored.
        stored: usize,
    },
    /// The request failed.
    Error {
        /// What went wrong.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_wire_shape() {
        let req = Request::GetObjects {
            collection: Uuid::NIL,
            added_after: None,
            object_type: None,
            match_expr: None,
            limit: 100,
        };
        let json = serde_json::to_value(&req).unwrap();
        assert_eq!(json["op"], "get-objects");
        // Absent filters stay off the wire entirely.
        assert!(json.get("match").is_none());
        let back: Request = serde_json::from_value(json).unwrap();
        assert_eq!(back, req);

        let req = Request::GetObjects {
            collection: Uuid::NIL,
            added_after: None,
            object_type: None,
            match_expr: Some("type:indicator AND value:evil".into()),
            limit: 100,
        };
        let json = serde_json::to_value(&req).unwrap();
        assert_eq!(json["match"], "type:indicator AND value:evil");
        let back: Request = serde_json::from_value(json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::Error {
            message: "no such collection".into(),
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }
}
