//! The TAXII server: collection storage plus the TCP accept loop.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use cais_bus::tcp::{read_frame, write_frame};
use cais_common::resilience::{FaultKind, FaultPlan};
use cais_common::{Timestamp, Uuid};
use parking_lot::RwLock;

use crate::collection::{Collection, Envelope};
use crate::protocol::{Request, Response};

/// Maximum page size the server will return.
const MAX_PAGE: usize = 1_000;

#[derive(Debug, Default)]
struct State {
    collections: Vec<Collection>,
}

/// A TAXII-like server over framed TCP.
#[derive(Debug, Clone)]
pub struct TaxiiServer {
    title: String,
    state: Arc<RwLock<State>>,
}

impl TaxiiServer {
    /// Creates a server with no collections.
    pub fn new(title: impl Into<String>) -> Self {
        TaxiiServer {
            title: title.into(),
            state: Arc::new(RwLock::new(State::default())),
        }
    }

    /// Registers a collection, returning its id.
    pub fn add_collection(&mut self, collection: Collection) -> Uuid {
        let id = collection.id;
        self.state.write().collections.push(collection);
        id
    }

    /// Handles one request against the in-memory state. This is the
    /// whole service logic; the TCP loop just frames it.
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Discovery => Response::Discovery {
                title: self.title.clone(),
                api_version: "cais-taxii/1".into(),
            },
            Request::Collections => {
                let collections = self
                    .state
                    .read()
                    .collections
                    .iter()
                    .map(|c| Collection {
                        objects: Vec::new(),
                        ..c.clone()
                    })
                    .collect();
                Response::Collections { collections }
            }
            Request::GetObjects {
                collection,
                added_after,
                object_type,
                limit,
            } => {
                let state = self.state.read();
                let Some(found) = state.collections.iter().find(|c| c.id == collection) else {
                    return Response::Error {
                        message: format!("no such collection {collection}"),
                    };
                };
                if !found.can_read {
                    return Response::Error {
                        message: "collection is not readable".into(),
                    };
                }
                let envelope: Envelope = found.page_filtered(
                    added_after,
                    limit.clamp(1, MAX_PAGE),
                    object_type.as_deref(),
                );
                Response::Objects { envelope }
            }
            Request::AddObjects {
                collection,
                objects,
            } => {
                let mut state = self.state.write();
                let Some(found) = state.collections.iter_mut().find(|c| c.id == collection) else {
                    return Response::Error {
                        message: format!("no such collection {collection}"),
                    };
                };
                if !found.can_write {
                    return Response::Error {
                        message: "collection is not writable".into(),
                    };
                }
                let stored = objects.len();
                found.add_objects(objects, Timestamp::now());
                Response::Accepted { stored }
            }
        }
    }

    /// Binds a listener and serves requests on a background thread for
    /// the life of the process, returning the bound address.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn serve(&self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let server = self.clone();
        thread::Builder::new()
            .name("cais-taxii-server".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    let server = server.clone();
                    let _ =
                        thread::Builder::new()
                            .name("cais-taxii-conn".into())
                            .spawn(move || {
                                let _ = server.serve_connection(stream);
                            });
                }
            })
            .expect("spawn taxii server thread");
        Ok(local_addr)
    }

    fn serve_connection(&self, mut stream: TcpStream) -> io::Result<()> {
        loop {
            let frame = read_frame(&mut stream)?;
            let response = match serde_json::from_slice::<Request>(&frame) {
                Ok(request) => self.handle(request),
                Err(err) => Response::Error {
                    message: format!("malformed request: {err}"),
                },
            };
            let bytes = serde_json::to_vec(&response)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            write_frame(&mut stream, &bytes)?;
        }
    }

    /// Like [`TaxiiServer::serve`], but every request frame consults
    /// `plan` at `site` first — the chaos harness:
    ///
    /// - [`FaultKind::Error`] — the connection is dropped without a
    ///   response (the frame is lost; the request is *not* applied).
    /// - [`FaultKind::AckLost`] — the request **is** applied, then the
    ///   connection drops before the response: the client observes an
    ///   error even though the effect landed. Exercises idempotent
    ///   re-delivery.
    /// - [`FaultKind::Garbage`] — an unparseable response frame.
    /// - [`FaultKind::Truncate`] — the response frame carries only the
    ///   first half of the serialized response.
    /// - [`FaultKind::Replay`] — the previous response on this
    ///   connection is resent instead of the current one.
    /// - [`FaultKind::Delay`] — virtual; the response is served
    ///   normally (the server has no injected clock).
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn serve_chaos(
        &self,
        addr: &str,
        plan: FaultPlan,
        site: impl Into<String>,
    ) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let server = self.clone();
        let site = site.into();
        thread::Builder::new()
            .name("cais-taxii-chaos".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    let server = server.clone();
                    let plan = plan.clone();
                    let site = site.clone();
                    let _ = thread::Builder::new()
                        .name("cais-taxii-chaos-conn".into())
                        .spawn(move || {
                            let _ = server.serve_connection_chaos(stream, &plan, &site);
                        });
                }
            })
            .expect("spawn chaos taxii server thread");
        Ok(local_addr)
    }

    fn serve_connection_chaos(
        &self,
        mut stream: TcpStream,
        plan: &FaultPlan,
        site: &str,
    ) -> io::Result<()> {
        let mut previous: Option<Vec<u8>> = None;
        loop {
            let frame = read_frame(&mut stream)?;
            let fault = plan.next(site);
            let respond = |response: &Response| -> io::Result<Vec<u8>> {
                serde_json::to_vec(response)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            };
            match fault {
                Some(FaultKind::Error) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected frame drop",
                    ));
                }
                Some(FaultKind::AckLost) => {
                    if let Ok(request) = serde_json::from_slice::<Request>(&frame) {
                        let _ = self.handle(request);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected ack loss",
                    ));
                }
                Some(FaultKind::Garbage) => {
                    write_frame(&mut stream, b"\x01\x02%%% injected garbage %%%\x03")?;
                }
                Some(FaultKind::Truncate) => {
                    let request = serde_json::from_slice::<Request>(&frame);
                    let response = match request {
                        Ok(request) => self.handle(request),
                        Err(err) => Response::Error {
                            message: format!("malformed request: {err}"),
                        },
                    };
                    let bytes = respond(&response)?;
                    write_frame(&mut stream, &bytes[..bytes.len() / 2])?;
                }
                Some(FaultKind::Replay) if previous.is_some() => {
                    let bytes = previous.clone().expect("checked above");
                    write_frame(&mut stream, &bytes)?;
                }
                Some(FaultKind::Replay) | Some(FaultKind::Delay(_)) | None => {
                    let response = match serde_json::from_slice::<Request>(&frame) {
                        Ok(request) => self.handle(request),
                        Err(err) => Response::Error {
                            message: format!("malformed request: {err}"),
                        },
                    };
                    let bytes = respond(&response)?;
                    write_frame(&mut stream, &bytes)?;
                    previous = Some(bytes);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_with_collection() -> (TaxiiServer, Uuid) {
        let mut server = TaxiiServer::new("test server");
        let id = server.add_collection(Collection::new("iocs", "indicators"));
        (server, id)
    }

    #[test]
    fn discovery_and_collections() {
        let (server, _) = server_with_collection();
        match server.handle(Request::Discovery) {
            Response::Discovery { title, .. } => assert_eq!(title, "test server"),
            other => panic!("unexpected {other:?}"),
        }
        match server.handle(Request::Collections) {
            Response::Collections { collections } => {
                assert_eq!(collections.len(), 1);
                assert!(collections[0].objects.is_empty()); // omitted
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn add_then_get() {
        let (server, id) = server_with_collection();
        let response = server.handle(Request::AddObjects {
            collection: id,
            objects: vec![serde_json::json!({"type": "vulnerability"})],
        });
        assert_eq!(response, Response::Accepted { stored: 1 });
        match server.handle(Request::GetObjects {
            collection: id,
            added_after: None,
            object_type: None,
            limit: 10,
        }) {
            Response::Objects { envelope } => assert_eq!(envelope.objects.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_collection_errors() {
        let (server, _) = server_with_collection();
        let response = server.handle(Request::GetObjects {
            collection: Uuid::new_v4(),
            added_after: None,
            object_type: None,
            limit: 10,
        });
        assert!(matches!(response, Response::Error { .. }));
    }

    #[test]
    fn write_protection() {
        let mut server = TaxiiServer::new("s");
        let id = server.add_collection(Collection::new("ro", "read only").read_only());
        let response = server.handle(Request::AddObjects {
            collection: id,
            objects: vec![serde_json::json!({})],
        });
        assert!(matches!(response, Response::Error { .. }));
    }

    #[test]
    fn limit_is_clamped() {
        let (server, id) = server_with_collection();
        server.handle(Request::AddObjects {
            collection: id,
            objects: (0..5).map(|i| serde_json::json!({ "i": i })).collect(),
        });
        match server.handle(Request::GetObjects {
            collection: id,
            added_after: None,
            object_type: None,
            limit: 0, // clamped up to 1
        }) {
            Response::Objects { envelope } => assert_eq!(envelope.objects.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
