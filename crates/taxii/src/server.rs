//! The TAXII server: collection storage plus the TCP accept loop.
//!
//! Pull-heavy federations re-request the same pages over and over; the
//! server therefore keeps a bounded byte cache of serialized
//! `GetObjects` responses, keyed by the collection's write-version, so
//! repeated pulls of an unchanged collection replay stored bytes
//! instead of re-filtering and re-serializing the page (see DESIGN.md
//! §12).

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use cais_bus::tcp::{read_frame, write_frame};
use cais_common::frame::{read_frame_traced, TraceHeader};
use cais_common::resilience::{FaultKind, FaultPlan};
use cais_common::serve::{
    self, FrameService, NoServeMetrics, Outbox, ServeConfig, ServeHandle, ServeMetrics,
};
use cais_common::{Timestamp, Uuid};
use cais_telemetry::{Counter, Registry, TraceContext, Tracer};
use parking_lot::{Mutex, RwLock};

use crate::collection::{Collection, Envelope};
use crate::protocol::{Request, Response};

/// Maximum page size the server will return.
const MAX_PAGE: usize = 1_000;

/// Maximum number of cached page responses; the cache is cleared
/// wholesale when full (entries are version-keyed, so a full cache is
/// mostly superseded garbage anyway).
const PAGE_CACHE_CAP: usize = 512;

#[derive(Debug, Default)]
struct State {
    collections: Vec<Collection>,
    /// Per-collection write version: bumped on every successful
    /// `AddObjects`, so cached pages of older versions can never be
    /// served for newer content.
    versions: HashMap<Uuid, u64>,
}

/// The identity of one cacheable page response.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PageKey {
    collection: Uuid,
    version: u64,
    added_after: Option<Timestamp>,
    object_type: Option<String>,
    /// The raw `match` expression string. Keyed on the text, not the
    /// parsed query: distinct spellings of the same query cache
    /// separately, which is harmless, while equal strings always
    /// filter identically.
    match_expr: Option<String>,
    limit: usize,
}

#[derive(Clone)]
struct PageMetrics {
    hits: Counter,
    misses: Counter,
}

#[derive(Default)]
struct PageCache {
    entries: Mutex<HashMap<PageKey, Arc<Vec<u8>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    metrics: RwLock<Option<PageMetrics>>,
}

/// A TAXII-like server over framed TCP.
#[derive(Clone)]
pub struct TaxiiServer {
    title: String,
    state: Arc<RwLock<State>>,
    cache: Arc<PageCache>,
    tracer: Arc<RwLock<Option<Tracer>>>,
}

impl std::fmt::Debug for TaxiiServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaxiiServer")
            .field("title", &self.title)
            .field("collections", &self.state.read().collections.len())
            .finish()
    }
}

impl TaxiiServer {
    /// Creates a server with no collections.
    pub fn new(title: impl Into<String>) -> Self {
        TaxiiServer {
            title: title.into(),
            state: Arc::new(RwLock::new(State::default())),
            cache: Arc::new(PageCache::default()),
            tracer: Arc::new(RwLock::new(None)),
        }
    }

    /// Attaches a causal tracer: every request records a `taxii` span.
    /// `GetObjects` pages chain onto the trace linked to the first
    /// served object's event UUID (set by the store/share seam), so a
    /// pull of a freshly ingested event joins its ingress span tree;
    /// requests arriving with a frame trace header become children of
    /// the sender's span instead.
    pub fn set_tracer(&self, tracer: &Tracer) {
        *self.tracer.write() = Some(tracer.clone());
    }

    fn trace_handle(&self) -> Option<Tracer> {
        self.tracer.read().clone()
    }

    /// Registers a collection, returning its id.
    pub fn add_collection(&mut self, collection: Collection) -> Uuid {
        let id = collection.id;
        let mut state = self.state.write();
        state.versions.insert(id, 0);
        state.collections.push(collection);
        id
    }

    /// Publishes `taxii_page_cache_{hits,misses}_total` counters on the
    /// registry, pre-loaded with whatever the cache has already served.
    pub fn instrument(&self, registry: &Registry) {
        let metrics = PageMetrics {
            hits: registry.counter("taxii_page_cache_hits_total"),
            misses: registry.counter("taxii_page_cache_misses_total"),
        };
        metrics.hits.add(self.cache.hits.load(Ordering::Relaxed));
        metrics
            .misses
            .add(self.cache.misses.load(Ordering::Relaxed));
        *self.cache.metrics.write() = Some(metrics);
    }

    /// Page-cache accounting so far, as `(hits, misses)`.
    pub fn page_cache_stats(&self) -> (u64, u64) {
        (
            self.cache.hits.load(Ordering::Relaxed),
            self.cache.misses.load(Ordering::Relaxed),
        )
    }

    /// Handles one request against the in-memory state. This is the
    /// whole service logic; the TCP loop just frames it.
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Discovery => Response::Discovery {
                title: self.title.clone(),
                api_version: "cais-taxii/1".into(),
            },
            Request::Collections => {
                let collections = self
                    .state
                    .read()
                    .collections
                    .iter()
                    .map(|c| Collection {
                        objects: Vec::new(),
                        ..c.clone()
                    })
                    .collect();
                Response::Collections { collections }
            }
            Request::GetObjects {
                collection,
                added_after,
                object_type,
                match_expr,
                limit,
            } => {
                let query = match parse_match(match_expr.as_deref()) {
                    Ok(query) => query,
                    Err(response) => return response,
                };
                let state = self.state.read();
                let Some(found) = state.collections.iter().find(|c| c.id == collection) else {
                    return Response::Error {
                        message: format!("no such collection {collection}"),
                    };
                };
                if !found.can_read {
                    return Response::Error {
                        message: "collection is not readable".into(),
                    };
                }
                let envelope: Envelope = found.page_matching(
                    added_after,
                    limit.clamp(1, MAX_PAGE),
                    object_type.as_deref(),
                    query.as_ref(),
                );
                Response::Objects { envelope }
            }
            Request::AddObjects {
                collection,
                objects,
            } => {
                let mut state = self.state.write();
                let Some(index) = state.collections.iter().position(|c| c.id == collection) else {
                    return Response::Error {
                        message: format!("no such collection {collection}"),
                    };
                };
                if !state.collections[index].can_write {
                    return Response::Error {
                        message: "collection is not writable".into(),
                    };
                }
                let stored = objects.len();
                state.collections[index].add_objects(objects, Timestamp::now());
                *state.versions.entry(collection).or_insert(0) += 1;
                Response::Accepted { stored }
            }
        }
    }

    /// The serialized response for one `GetObjects` request, served
    /// from the page cache when the collection's version still matches.
    /// Error responses (unknown collection, unreadable collection) are
    /// never cached.
    fn get_objects_bytes(
        &self,
        collection: Uuid,
        added_after: Option<Timestamp>,
        object_type: Option<String>,
        match_expr: Option<String>,
        limit: usize,
        wire: Option<TraceContext>,
    ) -> io::Result<Arc<Vec<u8>>> {
        let limit = limit.clamp(1, MAX_PAGE);
        // Malformed match expressions answer uncached, like the other
        // error responses.
        let query = match parse_match(match_expr.as_deref()) {
            Ok(query) => query,
            Err(response) => return encode(&response).map(Arc::new),
        };
        let tracer = self.trace_handle();
        // Version lookup, cache probe, and (on a miss) envelope build
        // all happen under one read guard so a concurrent AddObjects
        // cannot slip a newer page under an older version key.
        let response = {
            let state = self.state.read();
            let Some(found) = state.collections.iter().find(|c| c.id == collection) else {
                return encode(&Response::Error {
                    message: format!("no such collection {collection}"),
                })
                .map(Arc::new);
            };
            if !found.can_read {
                return encode(&Response::Error {
                    message: "collection is not readable".into(),
                })
                .map(Arc::new);
            }
            let version = state.versions.get(&collection).copied().unwrap_or(0);
            let key = PageKey {
                collection,
                version,
                added_after,
                object_type: object_type.clone(),
                match_expr,
                limit,
            };
            if let Some(bytes) = self.cache.entries.lock().get(&key) {
                self.cache.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(metrics) = self.cache.metrics.read().as_ref() {
                    metrics.hits.inc();
                }
                if let Some(t) = tracer.as_ref() {
                    let mut span = t.child_of(wire, "taxii", "taxii_get_objects");
                    span.field("cache", "hit");
                }
                return Ok(bytes.clone());
            }
            let envelope =
                found.page_matching(added_after, limit, object_type.as_deref(), query.as_ref());
            // Chain onto the ingress trace of the first served event
            // (linked under its UUID by the store/share seam); fall
            // back to the request's wire context.
            let parent = tracer
                .as_ref()
                .and_then(|t| {
                    envelope.objects.iter().find_map(|object| {
                        object
                            .get("uuid")
                            .and_then(|v| v.as_str())
                            .and_then(|uuid| t.linked(uuid))
                    })
                })
                .or(wire);
            (key, parent, Response::Objects { envelope })
        };
        let (key, parent, response) = response;
        let mut span = tracer
            .as_ref()
            .map(|t| t.child_of(parent, "taxii", "taxii_get_objects"));
        if let Some(span) = span.as_mut() {
            span.field("cache", "miss");
        }
        let bytes = Arc::new(encode(&response)?);
        if let Some(span) = span.as_mut() {
            span.field("bytes", bytes.len());
        }
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(metrics) = self.cache.metrics.read().as_ref() {
            metrics.misses.inc();
        }
        let mut entries = self.cache.entries.lock();
        if entries.len() >= PAGE_CACHE_CAP {
            entries.clear();
        }
        entries.insert(key, bytes.clone());
        Ok(bytes)
    }

    /// Parses one request frame and produces the serialized response,
    /// routing `GetObjects` through the page cache. `wire` is the trace
    /// context carried in the request's frame header, if any.
    fn response_bytes(&self, frame: &[u8], wire: Option<TraceContext>) -> io::Result<Arc<Vec<u8>>> {
        match serde_json::from_slice::<Request>(frame) {
            Ok(Request::GetObjects {
                collection,
                added_after,
                object_type,
                match_expr,
                limit,
            }) => self.get_objects_bytes(
                collection,
                added_after,
                object_type,
                match_expr,
                limit,
                wire,
            ),
            Ok(request) => {
                let mut span = self
                    .trace_handle()
                    .map(|t| t.child_of(wire, "taxii", "taxii_request"));
                if let Some(span) = span.as_mut() {
                    span.field("verb", request.verb());
                }
                encode(&self.handle(request)).map(Arc::new)
            }
            Err(err) => encode(&Response::Error {
                message: format!("malformed request: {err}"),
            })
            .map(Arc::new),
        }
    }

    /// Binds a listener and serves requests on the multiplexed core
    /// ([`cais_common::serve`]) for the life of the process, returning
    /// the bound address. Use [`TaxiiServer::serve_on_core`] for
    /// explicit core configuration, `serve_*` metrics and graceful
    /// shutdown.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn serve(&self, addr: &str) -> io::Result<SocketAddr> {
        let handle = self.serve_on_core(addr, ServeConfig::default(), NoServeMetrics)?;
        let local_addr = handle.local_addr();
        // Dropping the handle leaves the core's threads detached, which
        // preserves this method's historical serve-forever contract.
        drop(handle);
        Ok(local_addr)
    }

    /// [`TaxiiServer::serve`] on an explicitly configured serving core,
    /// returning the [`ServeHandle`] for counters and graceful
    /// shutdown. Pair with
    /// `cais_telemetry::RegistryServeMetrics::new(&registry, "taxii")`
    /// to surface the `serve_*` metric family.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn serve_on_core<M: ServeMetrics>(
        &self,
        addr: &str,
        config: ServeConfig,
        metrics: M,
    ) -> io::Result<ServeHandle> {
        serve::serve(
            addr,
            config,
            TaxiiService {
                server: self.clone(),
            },
            metrics,
        )
    }

    /// The historical thread-per-connection accept loop, kept as the
    /// measured baseline for the multiplexed core (`cais-loadgen`
    /// compares the two) and for the serving-equivalence tests.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn serve_thread_per_conn(&self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let server = self.clone();
        thread::Builder::new()
            .name("cais-taxii-server".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    let server = server.clone();
                    let _ =
                        thread::Builder::new()
                            .name("cais-taxii-conn".into())
                            .spawn(move || {
                                let _ = server.serve_connection(stream);
                            });
                }
            })
            .expect("spawn taxii server thread");
        Ok(local_addr)
    }

    fn serve_connection(&self, mut stream: TcpStream) -> io::Result<()> {
        loop {
            // Traced clients tag their request frames with a trace
            // header; untagged frames from pre-trace peers decode with
            // `None` and the request roots a fresh trace.
            let (header, frame) = read_frame_traced(&mut stream)?;
            let wire = header.map(TraceContext::from_header);
            let bytes = self.response_bytes(&frame, wire)?;
            write_frame(&mut stream, &bytes)?;
        }
    }

    /// Like [`TaxiiServer::serve`], but every request frame consults
    /// `plan` at `site` first — the chaos harness:
    ///
    /// - [`FaultKind::Error`] — the connection is dropped without a
    ///   response (the frame is lost; the request is *not* applied).
    /// - [`FaultKind::AckLost`] — the request **is** applied, then the
    ///   connection drops before the response: the client observes an
    ///   error even though the effect landed. Exercises idempotent
    ///   re-delivery.
    /// - [`FaultKind::Garbage`] — an unparseable response frame.
    /// - [`FaultKind::Truncate`] — the response frame carries only the
    ///   first half of the serialized response.
    /// - [`FaultKind::Replay`] — the previous response on this
    ///   connection is resent instead of the current one.
    /// - [`FaultKind::Delay`] — virtual; the response is served
    ///   normally (the server has no injected clock).
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn serve_chaos(
        &self,
        addr: &str,
        plan: FaultPlan,
        site: impl Into<String>,
    ) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let server = self.clone();
        let site = site.into();
        thread::Builder::new()
            .name("cais-taxii-chaos".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    let server = server.clone();
                    let plan = plan.clone();
                    let site = site.clone();
                    let _ = thread::Builder::new()
                        .name("cais-taxii-chaos-conn".into())
                        .spawn(move || {
                            let _ = server.serve_connection_chaos(stream, &plan, &site);
                        });
                }
            })
            .expect("spawn chaos taxii server thread");
        Ok(local_addr)
    }

    fn serve_connection_chaos(
        &self,
        mut stream: TcpStream,
        plan: &FaultPlan,
        site: &str,
    ) -> io::Result<()> {
        let mut previous: Option<Arc<Vec<u8>>> = None;
        loop {
            let frame = read_frame(&mut stream)?;
            let fault = plan.next(site);
            match fault {
                Some(FaultKind::Error) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected frame drop",
                    ));
                }
                Some(FaultKind::AckLost) => {
                    if let Ok(request) = serde_json::from_slice::<Request>(&frame) {
                        let _ = self.handle(request);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected ack loss",
                    ));
                }
                Some(FaultKind::Garbage) => {
                    write_frame(&mut stream, b"\x01\x02%%% injected garbage %%%\x03")?;
                }
                Some(FaultKind::Truncate) => {
                    let bytes = self.response_bytes(&frame, None)?;
                    write_frame(&mut stream, &bytes[..bytes.len() / 2])?;
                }
                Some(FaultKind::Replay) if previous.is_some() => {
                    let bytes = previous.clone().expect("checked above");
                    write_frame(&mut stream, &bytes)?;
                }
                Some(FaultKind::Replay) | Some(FaultKind::Delay(_)) | None => {
                    let bytes = self.response_bytes(&frame, None)?;
                    write_frame(&mut stream, &bytes)?;
                    previous = Some(bytes);
                }
            }
        }
    }
}

/// The TAXII request/response protocol as a [`FrameService`]: each
/// inbound frame is one request, each reply is the (possibly
/// page-cached) serialized response, written untagged exactly as the
/// thread-per-connection loop always has.
struct TaxiiService {
    server: TaxiiServer,
}

impl FrameService for TaxiiService {
    type Conn = ();

    fn on_connect(&self, _peer: SocketAddr) -> Self::Conn {}

    fn on_frame(
        &self,
        _conn: &mut Self::Conn,
        header: Option<TraceHeader>,
        payload: Vec<u8>,
        out: &mut Outbox,
    ) {
        let wire = header.map(TraceContext::from_header);
        match self.server.response_bytes(&payload, wire) {
            // Cached pages are an `Arc` already — queue them zero-copy.
            Ok(bytes) => out.push_shared(bytes),
            Err(_) => out.close(),
        }
    }
}

fn encode(response: &Response) -> io::Result<Vec<u8>> {
    serde_json::to_vec(response).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Parses a request's optional `match` expression; malformed input
/// becomes the error response to return instead of a page.
fn parse_match(expr: Option<&str>) -> Result<Option<cais_search::Query>, Response> {
    match expr {
        None => Ok(None),
        Some(text) => match cais_search::Query::parse(text) {
            Ok(query) => Ok(Some(query)),
            Err(err) => Err(Response::Error {
                message: format!("malformed match expression: {err}"),
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_with_collection() -> (TaxiiServer, Uuid) {
        let mut server = TaxiiServer::new("test server");
        let id = server.add_collection(Collection::new("iocs", "indicators"));
        (server, id)
    }

    #[test]
    fn discovery_and_collections() {
        let (server, _) = server_with_collection();
        match server.handle(Request::Discovery) {
            Response::Discovery { title, .. } => assert_eq!(title, "test server"),
            other => panic!("unexpected {other:?}"),
        }
        match server.handle(Request::Collections) {
            Response::Collections { collections } => {
                assert_eq!(collections.len(), 1);
                assert!(collections[0].objects.is_empty()); // omitted
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn add_then_get() {
        let (server, id) = server_with_collection();
        let response = server.handle(Request::AddObjects {
            collection: id,
            objects: vec![serde_json::json!({"type": "vulnerability"})],
        });
        assert_eq!(response, Response::Accepted { stored: 1 });
        match server.handle(Request::GetObjects {
            collection: id,
            added_after: None,
            object_type: None,
            match_expr: None,
            limit: 10,
        }) {
            Response::Objects { envelope } => assert_eq!(envelope.objects.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_collection_errors() {
        let (server, _) = server_with_collection();
        let response = server.handle(Request::GetObjects {
            collection: Uuid::new_v4(),
            added_after: None,
            object_type: None,
            match_expr: None,
            limit: 10,
        });
        assert!(matches!(response, Response::Error { .. }));
    }

    #[test]
    fn write_protection() {
        let mut server = TaxiiServer::new("s");
        let id = server.add_collection(Collection::new("ro", "read only").read_only());
        let response = server.handle(Request::AddObjects {
            collection: id,
            objects: vec![serde_json::json!({})],
        });
        assert!(matches!(response, Response::Error { .. }));
    }

    #[test]
    fn limit_is_clamped() {
        let (server, id) = server_with_collection();
        server.handle(Request::AddObjects {
            collection: id,
            objects: (0..5).map(|i| serde_json::json!({ "i": i })).collect(),
        });
        match server.handle(Request::GetObjects {
            collection: id,
            added_after: None,
            object_type: None,
            match_expr: None,
            limit: 0, // clamped up to 1
        }) {
            Response::Objects { envelope } => assert_eq!(envelope.objects.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn page_cache_replays_bytes_until_the_collection_changes() {
        let (server, id) = server_with_collection();
        server.handle(Request::AddObjects {
            collection: id,
            objects: (0..3).map(|i| serde_json::json!({ "i": i })).collect(),
        });
        let first = server
            .get_objects_bytes(id, None, None, None, 10, None)
            .unwrap();
        let second = server
            .get_objects_bytes(id, None, None, None, 10, None)
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(server.page_cache_stats(), (1, 1));

        // A write bumps the collection version: fresh bytes.
        server.handle(Request::AddObjects {
            collection: id,
            objects: vec![serde_json::json!({ "i": 99 })],
        });
        let third = server
            .get_objects_bytes(id, None, None, None, 10, None)
            .unwrap();
        assert!(!Arc::ptr_eq(&first, &third));
        assert_eq!(server.page_cache_stats(), (1, 2));
    }

    #[test]
    fn cached_bytes_match_direct_handling() {
        let (server, id) = server_with_collection();
        server.handle(Request::AddObjects {
            collection: id,
            objects: (0..4).map(|i| serde_json::json!({ "i": i })).collect(),
        });
        let direct = serde_json::to_vec(&server.handle(Request::GetObjects {
            collection: id,
            added_after: None,
            object_type: None,
            match_expr: None,
            limit: 2,
        }))
        .unwrap();
        // Miss, then hit: both must equal the uncached serialization.
        for _ in 0..2 {
            let cached = server
                .get_objects_bytes(id, None, None, None, 2, None)
                .unwrap();
            assert_eq!(*cached, direct);
        }
    }

    #[test]
    fn error_responses_are_not_cached() {
        let (server, _) = server_with_collection();
        let missing = Uuid::new_v4();
        server
            .get_objects_bytes(missing, None, None, None, 10, None)
            .unwrap();
        server
            .get_objects_bytes(missing, None, None, None, 10, None)
            .unwrap();
        assert_eq!(server.page_cache_stats(), (0, 0));
    }

    #[test]
    fn match_filtered_pages_are_byte_identical_to_direct_filtering() {
        let (server, id) = server_with_collection();
        server.handle(Request::AddObjects {
            collection: id,
            objects: vec![
                serde_json::json!({"type": "indicator", "name": "evil.example"}),
                serde_json::json!({"type": "indicator", "name": "benign.example"}),
                serde_json::json!({"type": "malware", "name": "evil.example"}),
            ],
        });
        let expr = "type:indicator AND value:evil";
        // The unindexed reference: filter by hand with the same oracle.
        let query = cais_search::Query::parse(expr).unwrap();
        let reference = {
            let state = server.state.read();
            let found = state.collections.iter().find(|c| c.id == id).unwrap();
            let objects: Vec<serde_json::Value> = found
                .objects
                .iter()
                .filter(|o| cais_search::stix_matches(&query, &o.object))
                .map(|o| o.object.clone())
                .collect();
            assert_eq!(objects.len(), 1);
            serde_json::to_vec(&Response::Objects {
                envelope: Envelope {
                    objects,
                    more: false,
                    next: None,
                },
            })
            .unwrap()
        };
        // Cache miss, then hit: byte-identical to the reference both
        // times.
        for _ in 0..2 {
            let served = server
                .get_objects_bytes(id, None, None, Some(expr.to_owned()), 10, None)
                .unwrap();
            assert_eq!(*served, reference);
        }
        assert_eq!(server.page_cache_stats(), (1, 1));
    }

    #[test]
    fn malformed_match_expressions_error_uncached() {
        let (server, id) = server_with_collection();
        server.handle(Request::AddObjects {
            collection: id,
            objects: vec![serde_json::json!({"type": "indicator"})],
        });
        for _ in 0..2 {
            let bytes = server
                .get_objects_bytes(id, None, None, Some("(((".to_owned()), 10, None)
                .unwrap();
            let response: Response = serde_json::from_slice(&bytes).unwrap();
            assert!(matches!(response, Response::Error { .. }));
        }
        assert_eq!(server.page_cache_stats(), (0, 0));
        // handle() rejects the same way.
        let response = server.handle(Request::GetObjects {
            collection: id,
            added_after: None,
            object_type: None,
            match_expr: Some("(((".into()),
            limit: 10,
        });
        assert!(matches!(response, Response::Error { .. }));
    }

    #[test]
    fn instrument_surfaces_page_cache_counters() {
        let (server, id) = server_with_collection();
        server.handle(Request::AddObjects {
            collection: id,
            objects: vec![serde_json::json!({ "i": 0 })],
        });
        server
            .get_objects_bytes(id, None, None, None, 10, None)
            .unwrap();
        let registry = Registry::new();
        server.instrument(&registry); // pre-loads the earlier miss
        server
            .get_objects_bytes(id, None, None, None, 10, None)
            .unwrap();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["taxii_page_cache_hits_total"], 1);
        assert_eq!(snapshot.counters["taxii_page_cache_misses_total"], 1);
    }
}
