//! A TAXII client wrapped in retries, reconnects and a circuit
//! breaker.
//!
//! Every operation runs under a seeded [`RetryPolicy`] ladder: a failed
//! roundtrip taints the connection, so the next attempt reconnects
//! before re-issuing the request. Requests routed here must be
//! idempotent (all the read paths are; pushes should go through the
//! MISP resilient sync, which deduplicates by UUID). A per-peer
//! [`CircuitBreaker`] isolates a dead server, and all of it surfaces in
//! telemetry: `taxii_retries_total`, `taxii_reconnects_total`,
//! `taxii_breaker_opened_total`, `taxii_breaker_closed_total`.

use std::io;
use std::net::SocketAddr;

use cais_common::resilience::{
    site_hash, BreakerConfig, BreakerTransitions, CircuitBreaker, RetryPolicy, Sleeper,
};
use cais_common::{Timestamp, Uuid};
use cais_telemetry::{Counter, FlightRecorder, Registry};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::client::TaxiiClient;
use crate::collection::{Collection, Envelope};

#[derive(Debug, Clone)]
struct Metrics {
    retries: Counter,
    reconnects: Counter,
    breaker_opened: Counter,
    breaker_closed: Counter,
}

impl Metrics {
    fn new(registry: &Registry) -> Self {
        Metrics {
            retries: registry.counter("taxii_retries_total"),
            reconnects: registry.counter("taxii_reconnects_total"),
            breaker_opened: registry.counter("taxii_breaker_opened_total"),
            breaker_closed: registry.counter("taxii_breaker_closed_total"),
        }
    }
}

/// A [`TaxiiClient`] with retries, automatic reconnect and a circuit
/// breaker.
pub struct ResilientTaxiiClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    rng: StdRng,
    client: Option<TaxiiClient>,
    was_connected: bool,
    reconnects: u64,
    retries: u64,
    metrics: Option<Metrics>,
    flight: Option<FlightRecorder>,
    reported: BreakerTransitions,
}

impl ResilientTaxiiClient {
    /// Creates a client for `addr`; nothing connects until the first
    /// operation. Backoff jitter draws from a stream seeded by `seed`
    /// and the address.
    pub fn new(addr: SocketAddr, policy: RetryPolicy, breaker: BreakerConfig, seed: u64) -> Self {
        let rng = StdRng::seed_from_u64(seed ^ site_hash(&format!("taxii.client:{addr}")));
        ResilientTaxiiClient {
            addr,
            policy,
            breaker: CircuitBreaker::new(breaker),
            rng,
            client: None,
            was_connected: false,
            reconnects: 0,
            retries: 0,
            metrics: None,
            flight: None,
            reported: BreakerTransitions::default(),
        }
    }

    /// Attaches telemetry counters for retries, reconnects and breaker
    /// transitions.
    pub fn instrument(&mut self, registry: &Registry) {
        self.metrics = Some(Metrics::new(registry));
    }

    /// Attaches a flight recorder: when repeated faults (dropped or
    /// garbled frames, dead peers) trip this client's circuit breaker,
    /// the last spans of every subsystem are dumped to disk.
    pub fn set_flight_recorder(&mut self, recorder: &FlightRecorder) {
        self.flight = Some(recorder.clone());
    }

    /// Times the connection was re-established after a failure.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Retries spent across every operation so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Whether the breaker currently isolates the peer.
    pub fn is_quarantined(&self) -> bool {
        self.breaker.is_quarantined()
    }

    /// Breaker transition counters so far.
    pub fn breaker_transitions(&self) -> BreakerTransitions {
        self.breaker.transitions()
    }

    fn sync_breaker_metrics(&mut self) {
        let transitions = self.breaker.transitions();
        if let Some(metrics) = &self.metrics {
            metrics
                .breaker_opened
                .add(transitions.opened - self.reported.opened);
            metrics
                .breaker_closed
                .add(transitions.closed - self.reported.closed);
        }
        if transitions.opened > self.reported.opened {
            if let Some(flight) = &self.flight {
                let _ = flight.trigger("breaker_trip", &format!("taxii:{}", self.addr));
            }
        }
        self.reported = transitions;
    }

    fn run_op<T>(
        &mut self,
        sleeper: &impl Sleeper,
        op: impl Fn(&TaxiiClient) -> io::Result<T>,
    ) -> io::Result<T> {
        if !self.breaker.allow() {
            self.sync_breaker_metrics();
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "circuit breaker open",
            ));
        }
        let policy = self.policy.clone();
        let addr = self.addr;
        let reconnects_before = self.reconnects;
        let client = &mut self.client;
        let was_connected = &mut self.was_connected;
        let reconnects = &mut self.reconnects;
        let outcome = policy.run(&mut self.rng, sleeper, |_| {
            if client.is_none() {
                *client = Some(TaxiiClient::connect(addr)?);
                if *was_connected {
                    *reconnects += 1;
                }
                *was_connected = true;
            }
            match op(client.as_ref().expect("connected above")) {
                Ok(value) => Ok(value),
                Err(error) => {
                    // A failed roundtrip taints the connection: the
                    // next attempt reconnects.
                    *client = None;
                    Err(error)
                }
            }
        });
        self.retries += u64::from(outcome.retries);
        if let Some(metrics) = &self.metrics {
            metrics.retries.add(u64::from(outcome.retries));
            metrics.reconnects.add(self.reconnects - reconnects_before);
        }
        match &outcome.result {
            Ok(_) => self.breaker.on_success(),
            Err(_) if outcome.interrupted => {}
            Err(_) => self.breaker.on_failure(),
        }
        self.sync_breaker_metrics();
        outcome.result
    }

    /// Fetches server discovery metadata, returning the title.
    ///
    /// # Errors
    ///
    /// Returns the last error once the retry budget is spent, or a
    /// `ConnectionRefused` error while the breaker is open.
    pub fn discovery(&mut self, sleeper: &impl Sleeper) -> io::Result<String> {
        self.run_op(sleeper, |c| c.discovery())
    }

    /// Lists the server's collections.
    ///
    /// # Errors
    ///
    /// As [`ResilientTaxiiClient::discovery`].
    pub fn collections(&mut self, sleeper: &impl Sleeper) -> io::Result<Vec<Collection>> {
        self.run_op(sleeper, |c| c.collections())
    }

    /// Fetches one page from a collection.
    ///
    /// # Errors
    ///
    /// As [`ResilientTaxiiClient::discovery`].
    pub fn objects(
        &mut self,
        collection: &Uuid,
        added_after: Option<Timestamp>,
        sleeper: &impl Sleeper,
    ) -> io::Result<Envelope> {
        self.run_op(sleeper, |c| c.objects(collection, added_after))
    }

    /// Fetches *all* objects, following pagination. Each page rides its
    /// own retry ladder, so a mid-pagination drop resumes from the
    /// last good watermark rather than restarting the walk.
    ///
    /// # Errors
    ///
    /// As [`ResilientTaxiiClient::discovery`].
    pub fn all_objects(
        &mut self,
        collection: &Uuid,
        sleeper: &impl Sleeper,
    ) -> io::Result<Vec<serde_json::Value>> {
        let mut out = Vec::new();
        let mut watermark = None;
        loop {
            let envelope = self.objects(collection, watermark, sleeper)?;
            out.extend(envelope.objects);
            if !envelope.more {
                return Ok(out);
            }
            watermark = envelope.next;
        }
    }

    /// Pushes objects to a collection, returning how many were stored.
    /// Retried delivery can duplicate objects server-side — route
    /// pushes that must be exactly-once through the MISP resilient
    /// sync instead.
    ///
    /// # Errors
    ///
    /// As [`ResilientTaxiiClient::discovery`].
    pub fn add_objects(
        &mut self,
        collection: &Uuid,
        objects: Vec<serde_json::Value>,
        sleeper: &impl Sleeper,
    ) -> io::Result<usize> {
        self.run_op(sleeper, |c| c.add_objects(collection, objects.clone()))
    }
}

impl std::fmt::Debug for ResilientTaxiiClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientTaxiiClient")
            .field("addr", &self.addr)
            .field("connected", &self.client.is_some())
            .field("reconnects", &self.reconnects)
            .field("retries", &self.retries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::server::TaxiiServer;
    use cais_common::resilience::{FaultKind, FaultPlan, ThreadSleeper};

    fn fast() -> RetryPolicy {
        RetryPolicy::fast(5)
    }

    #[test]
    fn survives_dropped_frames() {
        let mut server = TaxiiServer::new("chaos");
        let id = server.add_collection(Collection::new("iocs", "d"));
        server.handle(crate::protocol::Request::AddObjects {
            collection: id,
            objects: (0..10).map(|i| serde_json::json!({ "i": i })).collect(),
        });
        // Every third frame is dropped.
        let plan = FaultPlan::new(11).every_nth("taxii.frame", 3, FaultKind::Error);
        let addr = server
            .serve_chaos("127.0.0.1:0", plan, "taxii.frame")
            .unwrap();
        let mut client = ResilientTaxiiClient::new(addr, fast(), BreakerConfig::disabled(), 42);
        assert_eq!(client.discovery(&ThreadSleeper).unwrap(), "chaos");
        let all = client.all_objects(&id, &ThreadSleeper).unwrap();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn dead_server_trips_the_breaker() {
        // Bind-then-drop leaves a closed port.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let registry = Registry::new();
        let mut client = ResilientTaxiiClient::new(
            addr,
            RetryPolicy::fast(2),
            BreakerConfig {
                trip_after: 2,
                cooldown_probes: 1,
                half_open_successes: 1,
            },
            42,
        );
        client.instrument(&registry);
        let dir = std::env::temp_dir().join(format!("cais-taxii-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = FlightRecorder::new(cais_telemetry::Tracer::new(), &dir);
        client.set_flight_recorder(&recorder);
        assert!(client.discovery(&ThreadSleeper).is_err());
        assert!(client.discovery(&ThreadSleeper).is_err());
        assert!(client.is_quarantined());
        let denied = client.discovery(&ThreadSleeper).unwrap_err();
        assert_eq!(denied.kind(), io::ErrorKind::ConnectionRefused);
        let counters = registry.snapshot().counters;
        assert_eq!(counters["taxii_breaker_opened_total"], 1);
        assert_eq!(counters["taxii_retries_total"], 2);
        // The trip produced exactly one black-box dump; the open-breaker
        // denial above did not add another.
        assert_eq!(recorder.dumps(), 1);
        assert!(dir.join("flight-0000-breaker_trip.json").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
