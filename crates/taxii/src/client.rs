//! The TAXII client.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cais_bus::tcp::read_frame;
use cais_common::frame::write_frame_traced;
use cais_common::{Timestamp, Uuid};
use cais_telemetry::Tracer;
use parking_lot::{Mutex, RwLock};

use crate::collection::{Collection, Envelope};
use crate::protocol::{Request, Response};

/// Default socket read/write timeout for [`TaxiiClient::connect`]. A
/// hung or half-dead server fails the pending call with a timeout error
/// instead of blocking the caller forever.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A synchronous client for [`crate::TaxiiServer`].
pub struct TaxiiClient {
    stream: Mutex<TcpStream>,
    tracer: RwLock<Option<Tracer>>,
}

impl TaxiiClient {
    /// Connects to a server with [`DEFAULT_IO_TIMEOUT`] on socket reads
    /// and writes.
    ///
    /// # Errors
    ///
    /// Returns connection errors.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with_timeout(addr, Some(DEFAULT_IO_TIMEOUT))
    }

    /// Connects with an explicit socket read/write timeout (`None`
    /// blocks indefinitely, the pre-timeout behaviour).
    ///
    /// # Errors
    ///
    /// Returns connection errors.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Option<Duration>) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(TaxiiClient {
            stream: Mutex::new(stream),
            tracer: RwLock::new(None),
        })
    }

    /// Attaches a causal tracer: each request roots a `taxii_client`
    /// span and tags the request frame with its trace header, so a
    /// traced server records its handling as a child of this client's
    /// span. Only enable against servers that understand tagged frames
    /// — legacy readers reject them.
    pub fn set_tracer(&self, tracer: &Tracer) {
        *self.tracer.write() = Some(tracer.clone());
    }

    fn roundtrip(&self, request: &Request) -> io::Result<Response> {
        let tracer = self.tracer.read().clone();
        let mut span = tracer
            .as_ref()
            .map(|t| t.root("taxii_client", "taxii_request"));
        if let Some(span) = span.as_mut() {
            span.field("verb", request.verb());
        }
        let header = span.as_ref().and_then(|s| s.context().header());
        let mut stream = self.stream.lock();
        let bytes = serde_json::to_vec(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        write_frame_traced(&mut *stream, header, &bytes)?;
        let frame = read_frame(&mut *stream)?;
        serde_json::from_slice(&frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    fn expect_ok(response: Response) -> io::Result<Response> {
        if let Response::Error { message } = response {
            Err(io::Error::other(message))
        } else {
            Ok(response)
        }
    }

    /// Fetches server discovery metadata, returning the title.
    ///
    /// # Errors
    ///
    /// Returns I/O and server errors.
    pub fn discovery(&self) -> io::Result<String> {
        match Self::expect_ok(self.roundtrip(&Request::Discovery)?)? {
            Response::Discovery { title, .. } => Ok(title),
            other => Err(io::Error::other(format!("unexpected response {other:?}"))),
        }
    }

    /// Lists the server's collections.
    ///
    /// # Errors
    ///
    /// Returns I/O and server errors.
    pub fn collections(&self) -> io::Result<Vec<Collection>> {
        match Self::expect_ok(self.roundtrip(&Request::Collections)?)? {
            Response::Collections { collections } => Ok(collections),
            other => Err(io::Error::other(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetches one page (up to 100 objects) from a collection.
    ///
    /// # Errors
    ///
    /// Returns I/O and server errors.
    pub fn objects(
        &self,
        collection: &Uuid,
        added_after: Option<Timestamp>,
    ) -> io::Result<Envelope> {
        let request = Request::GetObjects {
            collection: *collection,
            added_after,
            object_type: None,
            match_expr: None,
            limit: 100,
        };
        match Self::expect_ok(self.roundtrip(&request)?)? {
            Response::Objects { envelope } => Ok(envelope),
            other => Err(io::Error::other(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetches one page of objects of a single STIX type.
    ///
    /// # Errors
    ///
    /// Returns I/O and server errors.
    pub fn objects_of_type(
        &self,
        collection: &Uuid,
        object_type: &str,
        added_after: Option<Timestamp>,
    ) -> io::Result<Envelope> {
        let request = Request::GetObjects {
            collection: *collection,
            added_after,
            object_type: Some(object_type.to_owned()),
            match_expr: None,
            limit: 100,
        };
        match Self::expect_ok(self.roundtrip(&request)?)? {
            Response::Objects { envelope } => Ok(envelope),
            other => Err(io::Error::other(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetches one page of objects matching a `cais-search` query
    /// expression (e.g. `type:indicator AND value:evil`), evaluated
    /// server-side. Malformed expressions surface as server errors.
    ///
    /// # Errors
    ///
    /// Returns I/O and server errors.
    pub fn objects_matching(
        &self,
        collection: &Uuid,
        match_expr: &str,
        added_after: Option<Timestamp>,
    ) -> io::Result<Envelope> {
        let request = Request::GetObjects {
            collection: *collection,
            added_after,
            object_type: None,
            match_expr: Some(match_expr.to_owned()),
            limit: 100,
        };
        match Self::expect_ok(self.roundtrip(&request)?)? {
            Response::Objects { envelope } => Ok(envelope),
            other => Err(io::Error::other(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetches *all* objects, following pagination.
    ///
    /// # Errors
    ///
    /// Returns I/O and server errors.
    pub fn all_objects(&self, collection: &Uuid) -> io::Result<Vec<serde_json::Value>> {
        let mut out = Vec::new();
        let mut watermark = None;
        loop {
            let envelope = self.objects(collection, watermark)?;
            out.extend(envelope.objects);
            if !envelope.more {
                return Ok(out);
            }
            watermark = envelope.next;
        }
    }

    /// Pushes objects to a collection, returning how many were stored.
    ///
    /// # Errors
    ///
    /// Returns I/O and server errors (including write-protection).
    pub fn add_objects(
        &self,
        collection: &Uuid,
        objects: Vec<serde_json::Value>,
    ) -> io::Result<usize> {
        let request = Request::AddObjects {
            collection: *collection,
            objects,
        };
        match Self::expect_ok(self.roundtrip(&request)?)? {
            Response::Accepted { stored } => Ok(stored),
            other => Err(io::Error::other(format!("unexpected response {other:?}"))),
        }
    }
}

impl std::fmt::Debug for TaxiiClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaxiiClient")
            .field("peer", &self.stream.lock().peer_addr().ok())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::server::TaxiiServer;

    fn live_server() -> (TaxiiServer, SocketAddr, Uuid) {
        let mut server = TaxiiServer::new("live");
        let id = server.add_collection(Collection::new("iocs", "d"));
        let addr = server.serve("127.0.0.1:0").unwrap();
        (server, addr, id)
    }

    #[test]
    fn full_client_server_exchange() {
        let (_server, addr, id) = live_server();
        let client = TaxiiClient::connect(addr).unwrap();
        assert_eq!(client.discovery().unwrap(), "live");
        let collections = client.collections().unwrap();
        assert_eq!(collections.len(), 1);
        assert_eq!(collections[0].id, id);

        let stored = client
            .add_objects(&id, vec![serde_json::json!({"type": "indicator", "n": 1})])
            .unwrap();
        assert_eq!(stored, 1);
        let envelope = client.objects(&id, None).unwrap();
        assert_eq!(envelope.objects.len(), 1);
    }

    #[test]
    fn pagination_via_all_objects() {
        let (_server, addr, id) = live_server();
        let client = TaxiiClient::connect(addr).unwrap();
        // 250 objects forces three pages at the client's limit of 100.
        for batch in 0..5 {
            let objects: Vec<serde_json::Value> = (0..50)
                .map(|i| serde_json::json!({"b": batch, "i": i}))
                .collect();
            client.add_objects(&id, objects).unwrap();
            // Distinct timestamps per batch keep pagination watermarks sane.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let all = client.all_objects(&id).unwrap();
        assert_eq!(all.len(), 250);
    }

    #[test]
    fn silent_server_times_out_instead_of_hanging() {
        // A listener that accepts and then never replies: the pending
        // call must fail with a timeout, not block forever.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept());
        let client =
            TaxiiClient::connect_with_timeout(addr, Some(std::time::Duration::from_millis(100)))
                .unwrap();
        let error = client.discovery().expect_err("silent server must time out");
        assert!(
            matches!(
                error.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "unexpected error kind: {error:?}"
        );
        drop(hold);
    }

    #[test]
    fn server_error_surfaces_as_io_error() {
        let (_server, addr, _) = live_server();
        let client = TaxiiClient::connect(addr).unwrap();
        let missing = Uuid::new_v4();
        assert!(client.objects(&missing, None).is_err());
    }

    #[test]
    fn tagged_request_frames_carry_the_client_span() {
        let (server, addr, id) = live_server();
        let tracer = cais_telemetry::Tracer::new();
        server.set_tracer(&tracer);
        let client = TaxiiClient::connect(addr).unwrap();
        client.set_tracer(&tracer);

        assert_eq!(client.discovery().unwrap(), "live");
        client
            .add_objects(&id, vec![serde_json::json!({"type": "indicator"})])
            .unwrap();

        let client_spans = tracer.snapshot_subsystem("taxii_client");
        let server_spans = tracer.snapshot_subsystem("taxii");
        assert_eq!(client_spans.len(), 2);
        assert_eq!(server_spans.len(), 2);
        for server_span in &server_spans {
            let parent = client_spans
                .iter()
                .find(|c| c.span_id == server_span.parent_id)
                .expect("server span hangs off a client span");
            assert_eq!(parent.trace_id, server_span.trace_id);
        }
    }

    #[test]
    fn untagged_peer_requests_root_a_fresh_trace() {
        // Mixed-version federation: the server traces, the client
        // predates tracing and sends plain frames.
        let (server, addr, id) = live_server();
        let tracer = cais_telemetry::Tracer::new();
        server.set_tracer(&tracer);
        let client = TaxiiClient::connect(addr).unwrap();

        client
            .add_objects(&id, vec![serde_json::json!({"type": "indicator"})])
            .unwrap();

        let server_spans = tracer.snapshot_subsystem("taxii");
        assert_eq!(server_spans.len(), 1);
        assert_eq!(server_spans[0].parent_id, 0, "no wire header => fresh root");
        assert!(tracer.snapshot_subsystem("taxii_client").is_empty());
    }
}

#[cfg(test)]
mod type_filter_tests {
    use super::*;
    use crate::collection::Collection;
    use crate::server::TaxiiServer;

    #[test]
    fn type_filter_narrows_results() {
        let mut server = TaxiiServer::new("filter");
        let id = server.add_collection(Collection::new("stix", "d"));
        let addr = server.serve("127.0.0.1:0").unwrap();
        let client = TaxiiClient::connect(addr).unwrap();
        client
            .add_objects(
                &id,
                vec![
                    serde_json::json!({"type": "indicator", "n": 1}),
                    serde_json::json!({"type": "malware", "n": 2}),
                    serde_json::json!({"type": "indicator", "n": 3}),
                ],
            )
            .unwrap();
        let indicators = client.objects_of_type(&id, "indicator", None).unwrap();
        assert_eq!(indicators.objects.len(), 2);
        let tools = client.objects_of_type(&id, "tool", None).unwrap();
        assert!(tools.objects.is_empty());
        // Unfiltered still returns everything.
        assert_eq!(client.objects(&id, None).unwrap().objects.len(), 3);
    }

    #[test]
    fn match_expressions_filter_server_side() {
        let mut server = TaxiiServer::new("match");
        let id = server.add_collection(Collection::new("stix", "d"));
        let addr = server.serve("127.0.0.1:0").unwrap();
        let client = TaxiiClient::connect(addr).unwrap();
        client
            .add_objects(
                &id,
                vec![
                    serde_json::json!({"type": "indicator", "name": "evil.example",
                                       "labels": ["tlp:amber"]}),
                    serde_json::json!({"type": "indicator", "name": "benign.example"}),
                    serde_json::json!({"type": "malware", "name": "evil.example"}),
                ],
            )
            .unwrap();
        let hits = client
            .objects_matching(&id, "type:indicator AND value:evil", None)
            .unwrap();
        assert_eq!(hits.objects.len(), 1);
        assert_eq!(hits.objects[0]["labels"][0], "tlp:amber");
        let none = client.objects_matching(&id, "tag:tlp:red", None).unwrap();
        assert!(none.objects.is_empty());
        // Malformed expressions surface as server errors, not hangs.
        assert!(client.objects_matching(&id, "(((", None).is_err());
    }
}
