//! # cais-taxii
//!
//! A TAXII-like sharing service: discovery, collections, paged
//! envelopes of STIX objects, and a client/server pair over a framed
//! TCP transport.
//!
//! TAXII (Trusted Automated eXchange of Indicator Information) is the
//! paper's named channel "for sharing [threat intelligence] in an
//! automated and secure way" with external entities that do not speak
//! MISP (Section II-A). Real TAXII 2.x rides on HTTPS; this
//! implementation keeps the resource model (discovery → collections →
//! objects, time-filtered, paged) and swaps the transport for the same
//! length-prefixed JSON frames the rest of the platform uses.
//!
//! # Examples
//!
//! ```
//! use cais_taxii::{TaxiiServer, TaxiiClient, Collection};
//! use cais_stix::prelude::*;
//!
//! let mut server = TaxiiServer::new("CAIS sharing point");
//! server.add_collection(Collection::new("indicators", "High-confidence IoCs"));
//! let addr = server.serve("127.0.0.1:0")?;
//!
//! let client = TaxiiClient::connect(addr)?;
//! let collections = client.collections()?;
//! let vuln = Vulnerability::builder("CVE-2017-9805").build();
//! client.add_objects(&collections[0].id, vec![serde_json::to_value(StixObject::from(vuln)).unwrap()])?;
//! let envelope = client.objects(&collections[0].id, None)?;
//! assert_eq!(envelope.objects.len(), 1);
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod collection;
mod protocol;
mod resilient;
mod server;

pub use client::TaxiiClient;
pub use collection::{Collection, Envelope};
pub use protocol::{Request, Response};
pub use resilient::ResilientTaxiiClient;
pub use server::TaxiiServer;
