//! Collections: named, access-controlled sets of shared STIX objects.

use cais_common::{Timestamp, Uuid};
use serde::{Deserialize, Serialize};

/// A stored object plus its server-side arrival time (the property
/// TAXII's `added_after` filter keys on).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredObject {
    /// When the server accepted the object.
    pub added_at: Timestamp,
    /// The STIX object, as JSON.
    pub object: serde_json::Value,
}

/// A TAXII collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Collection {
    /// Collection identifier.
    pub id: Uuid,
    /// Short title.
    pub title: String,
    /// Human description.
    pub description: String,
    /// Whether consumers may read.
    pub can_read: bool,
    /// Whether producers may write.
    pub can_write: bool,
    /// The stored objects, in arrival order.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub objects: Vec<StoredObject>,
}

impl Collection {
    /// Creates a readable, writable collection.
    pub fn new(title: impl Into<String>, description: impl Into<String>) -> Self {
        Collection {
            id: Uuid::new_v4(),
            title: title.into(),
            description: description.into(),
            can_read: true,
            can_write: true,
            objects: Vec::new(),
        }
    }

    /// Makes the collection read-only, builder-style.
    pub fn read_only(mut self) -> Self {
        self.can_write = false;
        self
    }

    /// Appends objects stamped with `added_at`.
    pub fn add_objects(&mut self, objects: Vec<serde_json::Value>, added_at: Timestamp) {
        self.objects.extend(
            objects
                .into_iter()
                .map(|object| StoredObject { added_at, object }),
        );
    }

    /// Returns a page of objects added strictly after the watermark
    /// (or from the start when `None`), at most `limit` objects.
    pub fn page(&self, added_after: Option<Timestamp>, limit: usize) -> Envelope {
        self.page_filtered(added_after, limit, None)
    }

    /// [`Collection::page`] restricted to objects whose `type` property
    /// equals `object_type` (TAXII's `match[type]` filter).
    pub fn page_filtered(
        &self,
        added_after: Option<Timestamp>,
        limit: usize,
        object_type: Option<&str>,
    ) -> Envelope {
        self.page_matching(added_after, limit, object_type, None)
    }

    /// [`Collection::page_filtered`] further restricted to objects
    /// matching a typed [`cais_search::Query`] (the request's `match`
    /// expression), evaluated structurally over the serialized STIX
    /// objects. Paging watermarks are computed over the *matching*
    /// subsequence, so a filtered walk visits every match exactly once.
    pub fn page_matching(
        &self,
        added_after: Option<Timestamp>,
        limit: usize,
        object_type: Option<&str>,
        query: Option<&cais_search::Query>,
    ) -> Envelope {
        let matching: Vec<&StoredObject> = self
            .objects
            .iter()
            .filter(|o| added_after.is_none_or(|after| o.added_at > after))
            .filter(|o| {
                object_type
                    .is_none_or(|ty| o.object.get("type").and_then(|v| v.as_str()) == Some(ty))
            })
            .filter(|o| query.is_none_or(|q| cais_search::stix_matches(q, &o.object)))
            .collect();
        let more = matching.len() > limit;
        let page: Vec<&StoredObject> = matching.into_iter().take(limit).collect();
        let next = if more {
            page.last().map(|o| o.added_at)
        } else {
            None
        };
        Envelope {
            objects: page.iter().map(|o| o.object.clone()).collect(),
            more,
            next,
        }
    }
}

/// A TAXII envelope: one page of objects plus paging state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// The objects in this page.
    pub objects: Vec<serde_json::Value>,
    /// Whether more objects remain.
    pub more: bool,
    /// Watermark to pass as `added_after` for the next page.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub next: Option<Timestamp>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> serde_json::Value {
        serde_json::json!({ "n": n })
    }

    #[test]
    fn paging_walks_the_collection() {
        let mut collection = Collection::new("test", "d");
        for i in 0..5 {
            collection.add_objects(vec![obj(i)], Timestamp::from_unix_secs(i as i64));
        }
        let first = collection.page(None, 2);
        assert_eq!(first.objects.len(), 2);
        assert!(first.more);
        let second = collection.page(first.next, 2);
        assert_eq!(second.objects.len(), 2);
        assert!(second.more);
        let third = collection.page(second.next, 2);
        assert_eq!(third.objects.len(), 1);
        assert!(!third.more);
        assert_eq!(third.next, None);
    }

    #[test]
    fn added_after_is_strict() {
        let mut collection = Collection::new("test", "d");
        collection.add_objects(vec![obj(1)], Timestamp::from_unix_secs(10));
        let page = collection.page(Some(Timestamp::from_unix_secs(10)), 10);
        assert!(page.objects.is_empty());
        let page = collection.page(Some(Timestamp::from_unix_secs(9)), 10);
        assert_eq!(page.objects.len(), 1);
    }

    #[test]
    fn read_only_flag() {
        let collection = Collection::new("t", "d").read_only();
        assert!(collection.can_read);
        assert!(!collection.can_write);
    }
}
