//! The query language applied to serialized STIX objects — what lets a
//! TAXII `get-objects` request carry a `match` expression and have the
//! server filter envelope objects with the same grammar analysts use
//! against the event store.
//!
//! STIX objects are arbitrary JSON, so fields map structurally rather
//! than through the MISP data model:
//!
//! | query        | STIX property                                      |
//! |--------------|----------------------------------------------------|
//! | `type:`      | `type` (exact)                                     |
//! | `tag:`       | any entry of `labels` (exact)                      |
//! | `org:`       | `created_by_ref` (case-insensitive)                |
//! | `category:`  | `category` (case-insensitive)                      |
//! | `value:`     | any string leaf, whole or alphanumeric sub-token   |
//! | `contains:`  | any string leaf, case-insensitive substring        |
//! | `published:` | `true` unless `revoked == true`                    |
//! | `date`       | `modified`, falling back to `created`              |
//! | `score`      | `score`, falling back to `x_cais_score`            |
//!
//! Objects missing the relevant property never match a range or term —
//! the same "absent never matches" rule [`matches_event`] applies to
//! unscored events.
//!
//! [`matches_event`]: crate::query::matches_event

use cais_common::Timestamp;
use serde_json::Value;

use crate::query::{normalize, sub_tokens, Field, Query};

/// Walks every string leaf of the object (values only, not keys).
fn string_leaves<'a>(value: &'a Value, visit: &mut dyn FnMut(&'a str) -> bool) -> bool {
    match value {
        Value::String(s) => visit(s),
        Value::Array(items) => items.iter().any(|v| string_leaves(v, visit)),
        Value::Object(map) => map.values().any(|v| string_leaves(v, visit)),
        _ => false,
    }
}

/// Whether one serialized STIX object matches the query. Total: any
/// JSON shape is acceptable; missing properties simply never match.
pub fn stix_matches(query: &Query, object: &Value) -> bool {
    match query {
        Query::All => true,
        Query::Term { field, value } => match field {
            Field::Type => object.get("type").and_then(Value::as_str) == Some(value),
            Field::Tag => object
                .get("labels")
                .and_then(Value::as_array)
                .is_some_and(|labels| labels.iter().any(|l| l.as_str() == Some(value.as_str()))),
            Field::Org => object
                .get("created_by_ref")
                .and_then(Value::as_str)
                .is_some_and(|org| org.eq_ignore_ascii_case(value)),
            Field::Category => object
                .get("category")
                .and_then(Value::as_str)
                .is_some_and(|c| c.eq_ignore_ascii_case(value)),
            Field::Value => {
                let needle = normalize(value);
                if needle.is_empty() {
                    return false;
                }
                string_leaves(object, &mut |leaf| {
                    let normalized = normalize(leaf);
                    normalized == needle || sub_tokens(&normalized).any(|t| t == needle)
                })
            }
        },
        Query::Contains(needle) => {
            let needle = needle.to_ascii_lowercase();
            string_leaves(object, &mut |leaf| {
                leaf.to_ascii_lowercase().contains(&needle)
            })
        }
        Query::Published(published) => {
            let revoked = object.get("revoked").and_then(Value::as_bool) == Some(true);
            revoked != *published
        }
        Query::DateRange { cmp, instant } => object
            .get("modified")
            .or_else(|| object.get("created"))
            .and_then(Value::as_str)
            .and_then(|s| Timestamp::parse_rfc3339(s).ok())
            .is_some_and(|at| cmp.holds(at, *instant)),
        Query::ScoreRange { cmp, score } => object
            .get("score")
            .or_else(|| object.get("x_cais_score"))
            .and_then(Value::as_f64)
            .is_some_and(|s| cmp.holds(s, *score)),
        Query::Not(inner) => !stix_matches(inner, object),
        Query::And(items) => items.iter().all(|q| stix_matches(q, object)),
        Query::Or(items) => items.iter().any(|q| stix_matches(q, object)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn indicator() -> Value {
        json!({
            "type": "indicator",
            "id": "indicator--0001",
            "created_by_ref": "identity--ACME",
            "created": "2021-03-01T00:00:00Z",
            "modified": "2021-06-01T00:00:00Z",
            "labels": ["malicious-activity", "tlp:amber"],
            "pattern": "[domain-name:value = 'c2.evil.example']",
            "name": "c2.evil.example",
            "score": 3.5,
        })
    }

    #[test]
    fn structural_fields_map() {
        let object = indicator();
        for (input, want) in [
            ("type:indicator", true),
            ("type:malware", false),
            ("tag:tlp:amber", true),
            ("tag:tlp:red", false),
            ("org:identity--acme", true),
            ("value:evil", true),
            ("value:c2.evil.example", true),
            ("value:benign", false),
            ("contains:EVIL.EXAMPLE", true),
            ("published:true", true),
            ("published:false", false),
            ("date>=2021-05-01", true),
            ("date<2021-04-01", false),
            ("score>=3", true),
            ("score>4", false),
            ("type:indicator AND NOT tag:tlp:red", true),
        ] {
            let query = Query::parse(input).unwrap();
            assert_eq!(stix_matches(&query, &object), want, "query {input:?}");
        }
    }

    #[test]
    fn missing_properties_never_match() {
        let bare = json!({"type": "indicator"});
        for input in [
            "date>=1970-01-01",
            "score>=0",
            "tag:x",
            "org:x",
            "category:x",
        ] {
            let query = Query::parse(input).unwrap();
            assert!(!stix_matches(&query, &bare), "query {input:?}");
        }
        // But published defaults to true (not revoked) and All matches.
        assert!(stix_matches(
            &Query::parse("published:true").unwrap(),
            &bare
        ));
        assert!(stix_matches(&Query::All, &bare));
    }

    #[test]
    fn revoked_objects_are_unpublished() {
        let object = json!({"type": "indicator", "revoked": true});
        assert!(stix_matches(
            &Query::parse("published:false").unwrap(),
            &object
        ));
        assert!(!stix_matches(
            &Query::parse("published:true").unwrap(),
            &object
        ));
    }
}
