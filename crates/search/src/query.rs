//! The typed query language: `field:value` terms, boolean operators,
//! and range predicates over timestamps and decayed threat scores.
//!
//! ```text
//! query      := or | ε                        (empty input matches all)
//! or         := and ( OR and )*
//! and        := unary ( [AND] unary )*        (adjacency is implicit AND)
//! unary      := NOT unary | primary
//! primary    := '(' or ')' | comparison | term | bare-value
//! comparison := ('date'|'score') ('<'|'<='|'>'|'>=') scalar
//! term       := field ':' value               (field ∈ type, category,
//!                                              tag, org, value, contains,
//!                                              published)
//! ```
//!
//! Values are bare words or `"quoted strings"` (with `\"` and `\\`
//! escapes) — quoting is what lets tag names like
//! `cais:decay-state="decayed"` be queried at all. Precedence is
//! `NOT > AND > OR`. The reference semantics of a parsed query is
//! [`matches_event`]; `SearchIndex::search` must agree with it exactly
//! (the equivalence property tests hold it to that).
//!
//! [`Query`]'s `Display` prints a canonical form that reparses to the
//! identical AST — the round-trip property the parser tests pin down.
//!
//! [`SearchIndex::search`]: crate::SearchIndex::search

use std::fmt;

use cais_common::Timestamp;
use cais_misp::MispEvent;

/// Nesting depth bound: parenthesis and `NOT` towers beyond this are
/// rejected instead of recursing toward stack exhaustion, which keeps
/// the parser total over arbitrary byte soup.
pub const MAX_QUERY_DEPTH: usize = 64;

/// Machine-tag namespace + predicate under which the decay engine
/// publishes its current score (`cais:decay-score="…"`); `score`
/// range predicates read this tag first. Mirrors
/// `cais_decay::{DECAY_TAG_NAMESPACE, DECAY_SCORE_PREDICATE}` — a test
/// in this crate pins the two pairs together.
pub const DECAY_SCORE_TAG: (&str, &str) = ("cais", "decay-score");

/// A term's field: which slice of the event the value is matched
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Exact attribute type (`type:ip-dst`), case-sensitive like the
    /// store's linear search.
    Type,
    /// Attribute category by MISP display name, case-insensitive
    /// (`category:"Network activity"`).
    Category,
    /// Exact event-level tag name, case-sensitive (`tag:tlp:amber`).
    Tag,
    /// Owning organization, case-insensitive (`org:acme`).
    Org,
    /// Normalized attribute value: matches the whole trimmed lowercased
    /// value or any of its alphanumeric sub-tokens (`value:evil.example`
    /// and `value:evil` both hit a `c2.evil.example` attribute's event
    /// only via the `evil` token; the full-value token is the exact
    /// normalized string).
    Value,
}

impl Field {
    /// The field's keyword in the query grammar.
    pub fn name(self) -> &'static str {
        match self {
            Field::Type => "type",
            Field::Category => "category",
            Field::Tag => "tag",
            Field::Org => "org",
            Field::Value => "value",
        }
    }

    fn from_keyword(word: &str) -> Option<Field> {
        match word.to_ascii_lowercase().as_str() {
            "type" => Some(Field::Type),
            "category" => Some(Field::Category),
            "tag" => Some(Field::Tag),
            "org" => Some(Field::Org),
            "value" => Some(Field::Value),
            _ => None,
        }
    }
}

/// A range predicate's comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Cmp {
    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
        }
    }

    /// Whether `lhs OP rhs` holds.
    pub fn holds<T: PartialOrd>(self, lhs: T, rhs: T) -> bool {
        match self {
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
        }
    }
}

/// A parsed query. Construct with [`Query::parse`]; `Display` prints a
/// canonical form that reparses to the identical AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Matches every event (the empty query).
    All,
    /// A `field:value` term.
    Term {
        /// Which event slice to match.
        field: Field,
        /// The value to match, un-normalized as written.
        value: String,
    },
    /// Case-insensitive substring over raw attribute values
    /// (`contains:needle`) — the one predicate postings cannot answer;
    /// the index verifies candidates by scanning, exactly like the
    /// linear baseline.
    Contains(String),
    /// `published:true` / `published:false`.
    Published(bool),
    /// Comparison against the event date (`date>=2021-03-01`).
    DateRange {
        /// The comparison operator.
        cmp: Cmp,
        /// The instant compared against.
        instant: Timestamp,
    },
    /// Comparison against the decayed threat score
    /// (`score>=2.5`): the event's `cais:decay-score` machine tag when
    /// the decay engine has stamped one, else its plain threat score.
    /// Events carrying neither never match.
    ScoreRange {
        /// The comparison operator.
        cmp: Cmp,
        /// The score compared against.
        score: f64,
    },
    /// Negation (complement against all indexed events).
    Not(Box<Query>),
    /// Conjunction of two or more operands.
    And(Vec<Query>),
    /// Disjunction of two or more operands.
    Or(Vec<Query>),
}

/// A syntax error with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>, position: usize) -> ParseError {
    ParseError {
        message: message.into(),
        position,
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LParen,
    RParen,
    Cmp(Cmp),
    /// A bare word; may carry a `field:` prefix, split by the parser.
    Word(String),
    /// A `"quoted"` string — never a keyword, never split on `:`.
    Quoted(String),
}

/// Characters that terminate a bare word. `=` and `:` stay word
/// characters so machine-tag names (`tlp:amber`,
/// `cais:threat-score="…"` minus the quotes) survive as single tokens.
fn is_word_break(c: char) -> bool {
    c.is_whitespace() || matches!(c, '(' | ')' | '"' | '<' | '>')
}

fn lex(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(at, c)) = chars.peek() {
        match c {
            _ if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                toks.push((at, Tok::LParen));
            }
            ')' => {
                chars.next();
                toks.push((at, Tok::RParen));
            }
            '<' | '>' => {
                chars.next();
                let eq = chars.peek().is_some_and(|&(_, n)| n == '=');
                if eq {
                    chars.next();
                }
                let cmp = match (c, eq) {
                    ('<', false) => Cmp::Lt,
                    ('<', true) => Cmp::Le,
                    ('>', false) => Cmp::Gt,
                    ('>', true) => Cmp::Ge,
                    _ => unreachable!("guarded above"),
                };
                toks.push((at, Tok::Cmp(cmp)));
            }
            '"' => {
                chars.next();
                let mut value = String::new();
                loop {
                    match chars.next() {
                        Some((_, '"')) => break,
                        Some((_, '\\')) => match chars.next() {
                            Some((_, esc @ ('"' | '\\'))) => value.push(esc),
                            Some((p, other)) => {
                                return Err(err(format!("unknown escape '\\{other}'"), p))
                            }
                            None => return Err(err("unterminated string", input.len())),
                        },
                        Some((_, c)) => value.push(c),
                        None => return Err(err("unterminated string", input.len())),
                    }
                }
                toks.push((at, Tok::Quoted(value)));
            }
            _ => {
                let mut word = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if is_word_break(c) {
                        break;
                    }
                    word.push(c);
                    chars.next();
                }
                toks.push((at, Tok::Word(word)));
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |(p, _)| *p)
    }

    fn next(&mut self) -> Option<Tok> {
        let tok = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    /// Whether the next token is the given unquoted keyword.
    fn keyword(&self, word: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(word))
    }

    fn parse_or(&mut self, depth: usize) -> Result<Query, ParseError> {
        if depth > MAX_QUERY_DEPTH {
            return Err(err("query too deeply nested", self.at()));
        }
        let mut items = vec![self.parse_and(depth)?];
        while self.keyword("or") {
            self.next();
            items.push(self.parse_and(depth)?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("one item")
        } else {
            Query::Or(items)
        })
    }

    fn parse_and(&mut self, depth: usize) -> Result<Query, ParseError> {
        let mut items = vec![self.parse_unary(depth)?];
        loop {
            if self.keyword("and") {
                self.next();
            } else {
                // Implicit AND: any token that can start a primary
                // continues the conjunction.
                match self.peek() {
                    Some(Tok::RParen) | None => break,
                    Some(Tok::Word(w)) if w.eq_ignore_ascii_case("or") => break,
                    _ => {}
                }
            }
            items.push(self.parse_unary(depth)?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("one item")
        } else {
            Query::And(items)
        })
    }

    fn parse_unary(&mut self, depth: usize) -> Result<Query, ParseError> {
        if depth > MAX_QUERY_DEPTH {
            return Err(err("query too deeply nested", self.at()));
        }
        if self.keyword("not") {
            self.next();
            return Ok(Query::Not(Box::new(self.parse_unary(depth + 1)?)));
        }
        self.parse_primary(depth)
    }

    fn parse_primary(&mut self, depth: usize) -> Result<Query, ParseError> {
        let at = self.at();
        match self.next() {
            Some(Tok::LParen) => {
                let inner = self.parse_or(depth + 1)?;
                match self.next() {
                    Some(Tok::RParen) => Ok(inner),
                    _ => Err(err("expected ')'", self.at())),
                }
            }
            Some(Tok::RParen) => Err(err("unexpected ')'", at)),
            Some(Tok::Cmp(_)) => Err(err("comparison operator without a field", at)),
            Some(Tok::Quoted(value)) => Ok(Query::Term {
                field: Field::Value,
                value,
            }),
            Some(Tok::Word(word)) => self.parse_word(word, at),
            None => Err(err("expected a term", at)),
        }
    }

    /// A word is a comparison field (followed by an operator), a
    /// `field:value` term, or a bare value term.
    fn parse_word(&mut self, word: String, at: usize) -> Result<Query, ParseError> {
        if let Some(Tok::Cmp(cmp)) = self.peek() {
            let cmp = *cmp;
            return match word.to_ascii_lowercase().as_str() {
                "date" => {
                    self.next();
                    let instant = self.parse_date_scalar()?;
                    Ok(Query::DateRange { cmp, instant })
                }
                "score" => {
                    self.next();
                    let score = self.parse_score_scalar()?;
                    Ok(Query::ScoreRange { cmp, score })
                }
                _ => Err(err(
                    format!("'{word}' is not a range field (use date or score)"),
                    at,
                )),
            };
        }
        if word.eq_ignore_ascii_case("and")
            || word.eq_ignore_ascii_case("or")
            || word.eq_ignore_ascii_case("not")
        {
            return Err(err(format!("'{word}' without an operand"), at));
        }
        let Some((head, rest)) = word.split_once(':') else {
            return Ok(Query::Term {
                field: Field::Value,
                value: word,
            });
        };
        let value = |parser: &mut Parser, rest: &str| -> Result<String, ParseError> {
            if rest.is_empty() {
                match parser.peek() {
                    Some(Tok::Quoted(_)) => match parser.next() {
                        Some(Tok::Quoted(v)) => Ok(v),
                        _ => unreachable!("peeked a quoted token"),
                    },
                    _ => Err(err(format!("missing value after '{head}:'"), at)),
                }
            } else {
                Ok(rest.to_owned())
            }
        };
        if let Some(field) = Field::from_keyword(head) {
            let value = value(self, rest)?;
            return Ok(Query::Term { field, value });
        }
        match head.to_ascii_lowercase().as_str() {
            "contains" => Ok(Query::Contains(value(self, rest)?)),
            "published" => match value(self, rest)?.as_str() {
                "true" => Ok(Query::Published(true)),
                "false" => Ok(Query::Published(false)),
                other => Err(err(
                    format!("published takes true or false, not '{other}'"),
                    at,
                )),
            },
            "date" | "score" => Err(err(
                format!("'{head}' takes a comparison operator, e.g. {head}>=…"),
                at,
            )),
            // Unknown head: the whole word is a bare value (values like
            // URLs legitimately contain ':').
            _ => Ok(Query::Term {
                field: Field::Value,
                value: word,
            }),
        }
    }

    fn parse_date_scalar(&mut self) -> Result<Timestamp, ParseError> {
        let at = self.at();
        let text = match self.next() {
            Some(Tok::Word(w)) => w,
            Some(Tok::Quoted(q)) => q,
            _ => return Err(err("expected a timestamp", at)),
        };
        if let Ok(ts) = Timestamp::parse_rfc3339(&text) {
            return Ok(ts);
        }
        if let Ok(secs) = text.parse::<i64>() {
            return Ok(Timestamp::from_unix_secs(secs));
        }
        Err(err(format!("'{text}' is not a timestamp"), at))
    }

    fn parse_score_scalar(&mut self) -> Result<f64, ParseError> {
        let at = self.at();
        let text = match self.next() {
            Some(Tok::Word(w)) => w,
            Some(Tok::Quoted(q)) => q,
            _ => return Err(err("expected a score", at)),
        };
        match text.parse::<f64>() {
            Ok(score) if score.is_finite() => Ok(score),
            _ => Err(err(format!("'{text}' is not a finite score"), at)),
        }
    }
}

impl Query {
    /// Parses a query expression. Total over arbitrary input: any byte
    /// soup yields `Ok` or a [`ParseError`], never a panic. The empty
    /// (or all-whitespace) string parses to [`Query::All`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first syntax error.
    pub fn parse(input: &str) -> Result<Query, ParseError> {
        let toks = lex(input)?;
        if toks.is_empty() {
            return Ok(Query::All);
        }
        let mut parser = Parser { toks, pos: 0 };
        let query = parser.parse_or(0)?;
        if parser.pos != parser.toks.len() {
            return Err(err("unexpected trailing input", parser.at()));
        }
        Ok(query)
    }
}

/// Quotes `value` when the bare-word form would not survive a reparse.
fn display_value(value: &str) -> String {
    if !value.is_empty() && !value.contains(is_word_break) && !value.contains('\\') {
        return value.to_owned();
    }
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        if matches!(c, '"' | '\\') {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
    out
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Children that would re-associate are parenthesized, so the
        // printed form reparses to this exact AST.
        let wrap = |f: &mut fmt::Formatter<'_>, child: &Query, parens: bool| -> fmt::Result {
            if parens {
                write!(f, "({child})")
            } else {
                write!(f, "{child}")
            }
        };
        match self {
            Query::All => Ok(()),
            Query::Term { field, value } => {
                write!(f, "{}:{}", field.name(), display_value(value))
            }
            Query::Contains(value) => write!(f, "contains:{}", display_value(value)),
            Query::Published(published) => write!(f, "published:{published}"),
            Query::DateRange { cmp, instant } => {
                write!(f, "date{}{}", cmp.symbol(), instant.to_rfc3339())
            }
            Query::ScoreRange { cmp, score } => write!(f, "score{}{}", cmp.symbol(), score),
            Query::Not(inner) => {
                write!(f, "NOT ")?;
                wrap(f, inner, matches!(**inner, Query::And(_) | Query::Or(_)))
            }
            Query::And(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    wrap(f, item, matches!(item, Query::And(_) | Query::Or(_)))?;
                }
                Ok(())
            }
            Query::Or(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    wrap(f, item, matches!(item, Query::Or(_)))?;
                }
                Ok(())
            }
        }
    }
}

/// Normalizes a value the way the correlation index does: trimmed and
/// ASCII-lowercased.
pub(crate) fn normalize(value: &str) -> String {
    value.trim().to_ascii_lowercase()
}

/// The alphanumeric sub-tokens of a normalized value (`c2.evil.example`
/// → `c2`, `evil`, `example`).
pub(crate) fn sub_tokens(normalized: &str) -> impl Iterator<Item = &str> {
    normalized
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|piece| !piece.is_empty())
}

/// The decayed threat score `score` range predicates read: the
/// [`DECAY_SCORE_TAG`] machine tag when present, else the event's
/// plain threat score, else `None` (such events never match a score
/// range).
pub fn decayed_score(event: &MispEvent) -> Option<f64> {
    let (namespace, predicate) = DECAY_SCORE_TAG;
    event
        .tags
        .iter()
        .filter(|t| t.namespace() == Some(namespace) && t.predicate() == Some(predicate))
        .find_map(|t| t.value()?.parse().ok())
        .or_else(|| event.threat_score())
}

/// The reference semantics: whether one event matches the query, by
/// direct inspection. This is the oracle the indexed evaluation is
/// property-tested against — a full scan with `matches_event` must
/// produce exactly the ids `SearchIndex::search` returns.
pub fn matches_event(query: &Query, event: &MispEvent) -> bool {
    match query {
        Query::All => true,
        Query::Term { field, value } => match field {
            Field::Type => event.attributes.iter().any(|a| a.attr_type == *value),
            Field::Category => {
                let needle = value.to_ascii_lowercase();
                event
                    .attributes
                    .iter()
                    .any(|a| a.category.name().eq_ignore_ascii_case(&needle))
            }
            Field::Tag => event.tags.iter().any(|t| t.name() == value),
            Field::Org => event.org.eq_ignore_ascii_case(value),
            Field::Value => {
                let needle = normalize(value);
                if needle.is_empty() {
                    return false;
                }
                event.attributes.iter().any(|a| {
                    let normalized = normalize(&a.value);
                    normalized == needle || sub_tokens(&normalized).any(|t| t == needle)
                })
            }
        },
        Query::Contains(needle) => {
            let needle = needle.to_ascii_lowercase();
            event
                .attributes
                .iter()
                .any(|a| a.value.to_ascii_lowercase().contains(&needle))
        }
        Query::Published(published) => event.published == *published,
        Query::DateRange { cmp, instant } => cmp.holds(event.date, *instant),
        Query::ScoreRange { cmp, score } => {
            decayed_score(event).is_some_and(|s| cmp.holds(s, *score))
        }
        Query::Not(inner) => !matches_event(inner, event),
        Query::And(items) => items.iter().all(|q| matches_event(q, event)),
        Query::Or(items) => items.iter().any(|q| matches_event(q, event)),
    }
}

impl From<&cais_misp::store::SearchQuery> for Query {
    /// Compiles the store's flat [`SearchQuery`] filter into the typed
    /// language: the conjunction of its populated fields. The result
    /// evaluates identically to `MispStore::search_linear` — the
    /// equivalence property tests hold the pair together.
    ///
    /// [`SearchQuery`]: cais_misp::store::SearchQuery
    fn from(query: &cais_misp::store::SearchQuery) -> Query {
        let mut items = Vec::new();
        if query.published_only {
            items.push(Query::Published(true));
        }
        if let Some(since) = query.since {
            items.push(Query::DateRange {
                cmp: Cmp::Ge,
                instant: since,
            });
        }
        if let Some(tag) = &query.tag {
            items.push(Query::Term {
                field: Field::Tag,
                value: tag.clone(),
            });
        }
        if let Some(attr_type) = &query.attr_type {
            items.push(Query::Term {
                field: Field::Type,
                value: attr_type.clone(),
            });
        }
        if let Some(needle) = &query.value_contains {
            items.push(Query::Contains(needle.clone()));
        }
        match items.len() {
            0 => Query::All,
            1 => items.pop().expect("one item"),
            _ => Query::And(items),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(field: Field, value: &str) -> Query {
        Query::Term {
            field,
            value: value.into(),
        }
    }

    #[test]
    fn precedence_is_not_over_and_over_or() {
        let q = Query::parse("type:domain AND value:evil OR tag:tlp:amber").unwrap();
        assert_eq!(
            q,
            Query::Or(vec![
                Query::And(vec![
                    term(Field::Type, "domain"),
                    term(Field::Value, "evil")
                ]),
                term(Field::Tag, "tlp:amber"),
            ])
        );
        let q = Query::parse("NOT org:acme AND value:x").unwrap();
        assert_eq!(
            q,
            Query::And(vec![
                Query::Not(Box::new(term(Field::Org, "acme"))),
                term(Field::Value, "x"),
            ])
        );
    }

    #[test]
    fn adjacency_is_implicit_and() {
        assert_eq!(
            Query::parse("type:domain value:evil").unwrap(),
            Query::parse("type:domain AND value:evil").unwrap()
        );
    }

    #[test]
    fn parens_override_precedence() {
        let q = Query::parse("type:domain AND (value:evil OR value:bad)").unwrap();
        assert_eq!(
            q,
            Query::And(vec![
                term(Field::Type, "domain"),
                Query::Or(vec![term(Field::Value, "evil"), term(Field::Value, "bad")]),
            ])
        );
    }

    #[test]
    fn ranges_parse_both_scalar_forms() {
        assert_eq!(
            Query::parse("date>=2021-03-01").unwrap(),
            Query::DateRange {
                cmp: Cmp::Ge,
                instant: Timestamp::from_ymd_hms(2021, 3, 1, 0, 0, 0),
            }
        );
        assert_eq!(
            Query::parse("date<100").unwrap(),
            Query::DateRange {
                cmp: Cmp::Lt,
                instant: Timestamp::from_unix_secs(100),
            }
        );
        assert_eq!(
            Query::parse("score>2.5").unwrap(),
            Query::ScoreRange {
                cmp: Cmp::Gt,
                score: 2.5,
            }
        );
    }

    #[test]
    fn quoted_values_and_machine_tags() {
        assert_eq!(
            Query::parse("tag:\"cais:decay-state=\\\"decayed\\\"\"").unwrap(),
            term(Field::Tag, "cais:decay-state=\"decayed\"")
        );
        assert_eq!(
            Query::parse("category:\"Network activity\"").unwrap(),
            term(Field::Category, "Network activity")
        );
        // Bare machine tags without quotes work too (= and : are word
        // characters).
        assert_eq!(
            Query::parse("tag:tlp:amber").unwrap(),
            term(Field::Tag, "tlp:amber")
        );
    }

    #[test]
    fn bare_words_and_unknown_heads_are_value_terms() {
        assert_eq!(Query::parse("evil").unwrap(), term(Field::Value, "evil"));
        assert_eq!(
            Query::parse("http://x.example/path").unwrap(),
            term(Field::Value, "http://x.example/path")
        );
        assert_eq!(Query::parse("").unwrap(), Query::All);
        assert_eq!(Query::parse("   ").unwrap(), Query::All);
    }

    #[test]
    fn errors_not_panics() {
        for bad in [
            "(",
            ")",
            "a AND",
            "OR b",
            "NOT",
            "date>>1",
            "date>=notadate",
            "score<high",
            "published:maybe",
            "tag:",
            "\"unterminated",
            "a \"b\\q\"",
            "size>=3",
        ] {
            assert!(Query::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "(".repeat(500) + "value:x" + &")".repeat(500);
        assert!(Query::parse(&deep).is_err());
        let nots = "NOT ".repeat(500) + "value:x";
        assert!(Query::parse(&nots).is_err());
        // Within the bound both still parse.
        let ok = "(".repeat(16) + "value:x" + &")".repeat(16);
        assert!(Query::parse(&ok).is_ok());
    }

    #[test]
    fn display_round_trips_structures() {
        let cases = [
            Query::All,
            term(Field::Value, "evil.example"),
            term(Field::Tag, "cais:threat-score=\"2.74\""),
            Query::Contains("needs space".into()),
            Query::Published(false),
            Query::DateRange {
                cmp: Cmp::Le,
                instant: Timestamp::from_ymd_hms(2019, 6, 24, 12, 30, 0),
            },
            Query::ScoreRange {
                cmp: Cmp::Ge,
                score: -1.25,
            },
            Query::Not(Box::new(Query::And(vec![
                term(Field::Type, "domain"),
                Query::Or(vec![term(Field::Value, "a"), term(Field::Value, "b")]),
            ]))),
            Query::Or(vec![
                Query::Or(vec![term(Field::Value, "a"), term(Field::Value, "b")]),
                Query::And(vec![
                    Query::And(vec![term(Field::Value, "c"), term(Field::Value, "d")]),
                    term(Field::Value, "e"),
                ]),
            ]),
        ];
        for query in cases {
            let printed = query.to_string();
            let reparsed = Query::parse(&printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
            assert_eq!(reparsed, query, "round-trip of {printed:?}");
        }
    }

    #[test]
    fn search_query_compilation_covers_every_field() {
        use cais_misp::store::SearchQuery;
        let flat = SearchQuery {
            attr_type: Some("domain".into()),
            value_contains: Some("evil".into()),
            tag: Some("tlp:amber".into()),
            since: Some(Timestamp::from_unix_secs(100)),
            published_only: true,
        };
        let compiled = Query::from(&flat);
        let Query::And(items) = &compiled else {
            panic!("expected a conjunction, got {compiled:?}");
        };
        assert_eq!(items.len(), 5);
        assert_eq!(Query::from(&SearchQuery::default()), Query::All);
    }
}
