//! Fixed-width bitsets over dense slot ids — the evaluation currency
//! of the query compiler.
//!
//! Generalized from `cais_infra::index::NodeBitset`: same block layout
//! (64 slots per `u64`, sized lazily to the highest set bit), extended
//! with the intersection and subtraction the boolean operators need on
//! top of the union the infra matcher already used.

/// A growable bitset over dense slot ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotBitset {
    blocks: Vec<u64>,
}

impl SlotBitset {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        SlotBitset::default()
    }

    /// Sets one slot's bit, growing the block vector as needed.
    pub fn set(&mut self, slot: u32) {
        let (block, bit) = (slot as usize / 64, slot as usize % 64);
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        self.blocks[block] |= 1 << bit;
    }

    /// Clears one slot's bit (no-op when out of range).
    pub fn clear(&mut self, slot: u32) {
        let (block, bit) = (slot as usize / 64, slot as usize % 64);
        if let Some(b) = self.blocks.get_mut(block) {
            *b &= !(1 << bit);
        }
    }

    /// Whether the slot's bit is set.
    pub fn contains(&self, slot: u32) -> bool {
        let (block, bit) = (slot as usize / 64, slot as usize % 64);
        self.blocks.get(block).is_some_and(|b| b & (1 << bit) != 0)
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &SlotBitset) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (dst, src) in self.blocks.iter_mut().zip(&other.blocks) {
            *dst |= src;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &SlotBitset) {
        for (i, dst) in self.blocks.iter_mut().enumerate() {
            *dst &= other.blocks.get(i).copied().unwrap_or(0);
        }
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &SlotBitset) {
        for (dst, src) in self.blocks.iter_mut().zip(&other.blocks) {
            *dst &= !src;
        }
    }

    /// Iterates set slots in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let mut bits = block;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros();
                bits &= bits - 1;
                Some(i as u32 * 64 + bit)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_contains_clear() {
        let mut set = SlotBitset::new();
        assert!(set.is_empty());
        set.set(0);
        set.set(63);
        set.set(64);
        set.set(1000);
        assert!(set.contains(63));
        assert!(set.contains(1000));
        assert!(!set.contains(999));
        assert_eq!(set.count(), 4);
        set.clear(63);
        assert!(!set.contains(63));
        assert_eq!(set.ones().collect::<Vec<_>>(), vec![0, 64, 1000]);
    }

    #[test]
    fn boolean_ops() {
        let mut a = SlotBitset::new();
        let mut b = SlotBitset::new();
        for i in [1u32, 5, 200] {
            a.set(i);
        }
        for i in [5u32, 200, 300] {
            b.set(i);
        }
        let mut union = a.clone();
        union.union_with(&b);
        assert_eq!(union.ones().collect::<Vec<_>>(), vec![1, 5, 200, 300]);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(inter.ones().collect::<Vec<_>>(), vec![5, 200]);
        let mut diff = a.clone();
        diff.subtract(&b);
        assert_eq!(diff.ones().collect::<Vec<_>>(), vec![1]);
        // Differently-sized operands never panic or gain phantom bits.
        let mut short = SlotBitset::new();
        short.set(2);
        short.intersect_with(&a);
        assert!(short.is_empty());
    }
}
