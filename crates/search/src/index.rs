//! The incremental inverted index: interned tokens → sorted postings
//! of dense slot ids, maintained off the store changelog.
//!
//! Structure, generalized from `cais_infra::index::PatternIndex`'s
//! interned-token postings + bitset matcher:
//!
//! - Every event occupies one dense **slot** (a `u32`). Events are
//!   never removed from the store (the decay sweep only unpublishes),
//!   and ids are minted monotonically, so slots stay ordered by event
//!   id forever — query results read off a bitset in ascending slot
//!   order are already in id order, no sort needed.
//! - Each indexable token (`t␁ip-dst`, `g␁tlp:amber`, `o␁acme`,
//!   `c␁network activity`, `v␁evil`) is interned to a `u32` and owns a
//!   [`Posting`]: a sorted slot vector while rare, flipped to a bitset
//!   once it crosses [`DENSE_POSTING_THRESHOLD`] — hot tokens (types,
//!   orgs, TLP tags, common value sub-tokens appear on a constant
//!   fraction of the store) would otherwise cost O(posting) memmoves
//!   per churned event and O(posting) loops per query. A [`Query`]
//!   term is one postings lookup materialized to a [`SlotBitset`];
//!   `AND`/`OR`/`NOT` become bitset intersection/union/subtraction.
//! - Timestamps and decayed scores live in dense columns plus sorted
//!   `(value, slot)` permutations (re-sorted lazily, only on syncs
//!   that moved a date or score), so a range predicate is one binary
//!   search plus O(matches) bit sets, never a full column walk.
//!
//! Incrementality rides the store changelog exactly like the decay
//! engine's rescorer: [`SearchIndex::sync`] remembers the store
//! generation of its last pass and asks
//! [`MispStore::changed_event_ids_since`] for just the events mutated
//! since — each is re-tokenized in place (old postings edits are
//! `O(tokens)` bit flips for dense tokens, `O(log posting)` inserts
//! for sparse ones), so churn costs O(changed events). Only when the
//! changelog cannot answer (first sync, or a generation from a
//! different store) does it fall back to a full rebuild from a
//! snapshot.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use cais_common::Timestamp;
use cais_misp::store::{MispStore, SearchBackend, SearchQuery, VersionedEvent};
use cais_misp::MispEvent;
use cais_telemetry::{Counter, Gauge, Histogram, Registry};
use parking_lot::{Mutex, RwLock};

use crate::bitset::SlotBitset;
use crate::query::{decayed_score, normalize, sub_tokens, Cmp, Field, ParseError, Query};

/// Token-key prefixes, one byte each, joined to the token text with a
/// `\u{1}` separator so token namespaces can never collide with value
/// text.
const SEP: char = '\u{1}';

fn type_key(attr_type: &str) -> String {
    format!("t{SEP}{attr_type}")
}

fn tag_key(name: &str) -> String {
    format!("g{SEP}{name}")
}

fn org_key(org: &str) -> String {
    format!("o{SEP}{}", org.to_ascii_lowercase())
}

fn category_key(name: &str) -> String {
    format!("c{SEP}{}", name.to_ascii_lowercase())
}

fn value_key(token: &str) -> String {
    format!("v{SEP}{token}")
}

/// Sparse→dense flip point for a posting. Below it a sorted id vector
/// is smaller and iterates faster; above it the bitset wins on every
/// axis that matters under churn: O(1) add/remove instead of a
/// memmove, and a block memcpy instead of a per-id loop at query time.
const DENSE_POSTING_THRESHOLD: usize = 2048;

/// One token's slot set, adaptively represented.
#[derive(Debug)]
enum Posting {
    /// Sorted slot ids — rare tokens.
    Sparse(Vec<u32>),
    /// One bit per slot — hot tokens. Never demoted: a token that was
    /// ever hot is likely to get hot again, and a sparse-looking dense
    /// posting costs only its (shared-size) block vector.
    Dense(SlotBitset),
}

impl Default for Posting {
    fn default() -> Self {
        Posting::Sparse(Vec::new())
    }
}

impl Posting {
    fn add(&mut self, slot: u32) {
        match self {
            Posting::Sparse(ids) => {
                match ids.last() {
                    // Out-of-order adds only happen on re-tokenization;
                    // appends (the common case) stay a plain push.
                    Some(&last) if last >= slot => {
                        if let Err(at) = ids.binary_search(&slot) {
                            ids.insert(at, slot);
                        }
                    }
                    _ => ids.push(slot),
                }
                if ids.len() > DENSE_POSTING_THRESHOLD {
                    let mut bits = SlotBitset::new();
                    for &id in ids.iter() {
                        bits.set(id);
                    }
                    *self = Posting::Dense(bits);
                }
            }
            Posting::Dense(bits) => bits.set(slot),
        }
    }

    fn remove(&mut self, slot: u32) {
        match self {
            Posting::Sparse(ids) => {
                if let Ok(at) = ids.binary_search(&slot) {
                    ids.remove(at);
                }
            }
            Posting::Dense(bits) => bits.clear(slot),
        }
    }

    fn to_bitset(&self) -> SlotBitset {
        match self {
            Posting::Sparse(ids) => {
                let mut bits = SlotBitset::new();
                for &id in ids {
                    bits.set(id);
                }
                bits
            }
            Posting::Dense(bits) => bits.clone(),
        }
    }
}

/// One indexed event.
#[derive(Debug)]
struct Slot {
    event_id: u64,
    version: u64,
    event: Arc<MispEvent>,
    /// Interned token ids this event currently posts under, sorted and
    /// deduplicated — the reverse mapping that makes re-tokenizing an
    /// updated event O(its own tokens) instead of O(index).
    tokens: Vec<u32>,
}

#[derive(Debug, Default)]
struct IndexState {
    /// Store generation of the last completed sync; `None` before the
    /// first. The changelog cursor, exactly like the decay rescorer's.
    synced_generation: Option<u64>,
    slots: Vec<Slot>,
    by_id: HashMap<u64, u32>,
    /// Token text → interned id; postings are indexed by that id.
    tokens: HashMap<String, u32>,
    /// Interned token id → that token's slot set.
    postings: Vec<Posting>,
    /// Dense column of event dates, slot-indexed.
    dates: Vec<Timestamp>,
    /// Dense column of decayed threat scores, slot-indexed (`None` =
    /// unscored, never matches a range).
    scores: Vec<Option<f64>>,
    /// `dates` as a sorted `(date, slot)` permutation — range queries
    /// binary-search it and touch only matching slots.
    dates_sorted: Vec<(Timestamp, u32)>,
    /// Scored, non-NaN slots as a sorted `(score, slot)` permutation.
    /// NaN never satisfies any comparison, so dropping it here is
    /// exactly the linear oracle's behaviour.
    scores_sorted: Vec<(f64, u32)>,
    /// Set when a sync moved any date or score; the sorted
    /// permutations are rebuilt once at the end of that sync.
    ranges_dirty: bool,
    published: SlotBitset,
    universe: SlotBitset,
}

/// What one [`SearchIndex::sync`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncSummary {
    /// The changelog could not answer and the index was rebuilt from a
    /// full snapshot.
    pub rebuilt: bool,
    /// Events newly appended to the index.
    pub appended: usize,
    /// Existing events re-tokenized because their version changed.
    pub reindexed: usize,
    /// Changelog entries skipped because the indexed version was
    /// already current.
    pub skipped: usize,
}

struct SearchMetrics {
    queries: Counter,
    hits: Counter,
    parse_errors: Counter,
    syncs: Counter,
    rebuilds: Counter,
    query_nanos: Histogram,
    index_events: Gauge,
    index_tokens: Gauge,
}

impl SearchMetrics {
    fn new(registry: &Registry) -> Self {
        SearchMetrics {
            queries: registry.counter("search_queries_total"),
            hits: registry.counter("search_hits_total"),
            parse_errors: registry.counter("search_parse_errors_total"),
            syncs: registry.counter("search_index_syncs_total"),
            rebuilds: registry.counter("search_index_rebuilds_total"),
            query_nanos: registry.histogram("search_query_nanos"),
            index_events: registry.gauge("search_index_events"),
            index_tokens: registry.gauge("search_index_tokens"),
        }
    }
}

/// The incremental inverted index over a [`MispStore`]'s events.
///
/// Thread-safe: queries and syncs serialize on an internal lock (the
/// store itself is never locked while holding it for long — syncs read
/// changed events one at a time). Implements [`SearchBackend`], so an
/// `Arc<SearchIndex>` plugs straight into `MispApi::set_search_backend`.
///
/// # Examples
///
/// ```
/// use cais_misp::store::{MispStore, SearchQuery};
/// use cais_misp::{AttributeCategory, MispAttribute, MispEvent};
/// use cais_search::{Query, SearchIndex};
///
/// let store = MispStore::new();
/// let mut event = MispEvent::new("c2 infrastructure");
/// event.add_attribute(MispAttribute::new(
///     "domain",
///     AttributeCategory::NetworkActivity,
///     "c2.evil.example",
/// ));
/// store.insert(event)?;
///
/// let index = SearchIndex::new();
/// index.sync(&store);
/// let query = Query::parse("type:domain AND value:evil").unwrap();
/// let hits = index.search(&query);
/// assert_eq!(hits.len(), 1);
/// // The linear scan agrees, always.
/// assert_eq!(
///     store.search_linear(&SearchQuery::default()).len(),
///     index.search(&Query::All).len(),
/// );
/// # Ok::<(), cais_misp::MispError>(())
/// ```
#[derive(Default)]
pub struct SearchIndex {
    state: Mutex<IndexState>,
    metrics: RwLock<Option<SearchMetrics>>,
}

impl SearchIndex {
    /// Creates an empty index; the first [`SearchIndex::sync`] fills it.
    pub fn new() -> Self {
        SearchIndex::default()
    }

    /// Attaches telemetry: `search_queries_total`, `search_hits_total`,
    /// `search_parse_errors_total`, `search_index_syncs_total`,
    /// `search_index_rebuilds_total`, the `search_query_nanos`
    /// latency histogram, and `search_index_events` /
    /// `search_index_tokens` size gauges.
    pub fn instrument(&self, registry: &Registry) {
        *self.metrics.write() = Some(SearchMetrics::new(registry));
    }

    /// Brings the index up to date with the store. Incremental
    /// whenever the store changelog can answer "what changed since my
    /// last pass" — O(changed events) — and a full snapshot rebuild
    /// otherwise (first sync, or a cursor from a different store).
    pub fn sync(&self, store: &MispStore) -> SyncSummary {
        let mut state = self.state.lock();
        let generation = store.generation();
        let changed = match state.synced_generation {
            Some(last) if last == generation => Some(Vec::new()),
            Some(last) => store.changed_event_ids_since(last),
            None => None,
        };
        let summary = match changed {
            Some(ids) => {
                let mut summary = SyncSummary::default();
                for id in ids {
                    // Sweep-style mutations never remove events, so a
                    // missing id means a racing writer we'll see next
                    // sync.
                    if let Some(versioned) = store.versioned(id) {
                        Self::upsert(&mut state, versioned, &mut summary);
                    }
                }
                state.synced_generation = Some(generation);
                summary
            }
            None => {
                let snapshot = store.snapshot();
                *state = IndexState::default();
                let mut summary = SyncSummary {
                    rebuilt: true,
                    ..SyncSummary::default()
                };
                for versioned in snapshot.iter() {
                    Self::upsert(&mut state, versioned.clone(), &mut summary);
                }
                state.synced_generation = Some(snapshot.generation());
                summary
            }
        };
        Self::refresh_ranges(&mut state);
        if let Some(metrics) = self.metrics.read().as_ref() {
            metrics.syncs.inc();
            if summary.rebuilt {
                metrics.rebuilds.inc();
            }
            metrics.index_events.set(state.slots.len() as i64);
            metrics.index_tokens.set(state.tokens.len() as i64);
        }
        summary
    }

    /// Drops everything and re-syncs from a full snapshot — the
    /// baseline the `search_json` bench compares incremental
    /// maintenance against.
    pub fn rebuild(&self, store: &MispStore) -> SyncSummary {
        self.state.lock().synced_generation = None;
        self.sync(store)
    }

    /// Answers a typed query over the index's current contents,
    /// returning shared event handles ordered by event id. Call
    /// [`SearchIndex::sync`] first (or use
    /// [`SearchIndex::search_synced`]) to include the latest writes.
    pub fn search(&self, query: &Query) -> Vec<VersionedEvent> {
        let started = Instant::now();
        let state = self.state.lock();
        let matched = Self::eval(&state, query);
        let out: Vec<VersionedEvent> = matched
            .ones()
            .map(|slot| {
                let slot = &state.slots[slot as usize];
                VersionedEvent {
                    event: Arc::clone(&slot.event),
                    version: slot.version,
                }
            })
            .collect();
        drop(state);
        if let Some(metrics) = self.metrics.read().as_ref() {
            metrics.queries.inc();
            metrics.hits.add(out.len() as u64);
            metrics
                .query_nanos
                .record(started.elapsed().as_nanos() as u64);
        }
        out
    }

    /// [`SearchIndex::sync`] + [`SearchIndex::search`]: the always-fresh
    /// read path serving layers use.
    pub fn search_synced(&self, store: &MispStore, query: &Query) -> Vec<VersionedEvent> {
        self.sync(store);
        self.search(query)
    }

    /// Parses and answers a query string over the current contents.
    ///
    /// # Errors
    ///
    /// Returns the [`ParseError`] (counted in
    /// `search_parse_errors_total`) for malformed input.
    pub fn search_str(&self, input: &str) -> Result<Vec<VersionedEvent>, ParseError> {
        match Query::parse(input) {
            Ok(query) => Ok(self.search(&query)),
            Err(error) => {
                if let Some(metrics) = self.metrics.read().as_ref() {
                    metrics.parse_errors.inc();
                }
                Err(error)
            }
        }
    }

    /// Number of indexed events.
    pub fn len(&self) -> usize {
        self.state.lock().slots.len()
    }

    /// Whether the index holds no events.
    pub fn is_empty(&self) -> bool {
        self.state.lock().slots.is_empty()
    }

    /// Number of distinct interned tokens.
    pub fn token_count(&self) -> usize {
        self.state.lock().tokens.len()
    }

    /// The tokens one event body posts under, sorted and deduplicated
    /// by interned id.
    fn tokenize(state: &mut IndexState, event: &MispEvent) -> Vec<u32> {
        let mut keys: Vec<String> = vec![org_key(&event.org)];
        for tag in &event.tags {
            keys.push(tag_key(tag.name()));
        }
        for attr in &event.attributes {
            keys.push(type_key(&attr.attr_type));
            keys.push(category_key(attr.category.name()));
            let normalized = normalize(&attr.value);
            if !normalized.is_empty() {
                for token in sub_tokens(&normalized) {
                    keys.push(value_key(token));
                }
                keys.push(value_key(&normalized));
            }
        }
        let mut ids: Vec<u32> = keys
            .into_iter()
            .map(|key| {
                if let Some(&id) = state.tokens.get(&key) {
                    return id;
                }
                let id = state.postings.len() as u32;
                state.tokens.insert(key, id);
                state.postings.push(Posting::default());
                id
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Rebuilds the sorted range permutations if this sync dirtied
    /// them. Cheap relative to what dirtied them (one O(n log n) sort
    /// per sync that moved a date or score, and info-only churn — the
    /// common case — never dirties), and it keeps every query-time
    /// range predicate at a binary search.
    fn refresh_ranges(state: &mut IndexState) {
        if !state.ranges_dirty {
            return;
        }
        state.dates_sorted = state
            .dates
            .iter()
            .enumerate()
            .map(|(slot, &date)| (date, slot as u32))
            .collect();
        state.dates_sorted.sort_unstable();
        state.scores_sorted = state
            .scores
            .iter()
            .enumerate()
            .filter_map(|(slot, score)| score.filter(|s| !s.is_nan()).map(|s| (s, slot as u32)))
            .collect();
        state
            .scores_sorted
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        state.ranges_dirty = false;
    }

    /// Indexes one versioned event: appends a new slot, or re-tokenizes
    /// the existing one when its version moved.
    fn upsert(state: &mut IndexState, versioned: VersionedEvent, summary: &mut SyncSummary) {
        let event_id = versioned.event.id;
        match state.by_id.get(&event_id).copied() {
            Some(slot_id) => {
                if state.slots[slot_id as usize].version == versioned.version {
                    summary.skipped += 1;
                    return;
                }
                let old_tokens = std::mem::take(&mut state.slots[slot_id as usize].tokens);
                for token in old_tokens {
                    state.postings[token as usize].remove(slot_id);
                }
                let tokens = Self::tokenize(state, &versioned.event);
                for &token in &tokens {
                    state.postings[token as usize].add(slot_id);
                }
                let date = versioned.event.date;
                if state.dates[slot_id as usize] != date {
                    state.dates[slot_id as usize] = date;
                    state.ranges_dirty = true;
                }
                let score = decayed_score(&versioned.event);
                if state.scores[slot_id as usize] != score {
                    state.scores[slot_id as usize] = score;
                    state.ranges_dirty = true;
                }
                if versioned.event.published {
                    state.published.set(slot_id);
                } else {
                    state.published.clear(slot_id);
                }
                let slot = &mut state.slots[slot_id as usize];
                slot.version = versioned.version;
                slot.tokens = tokens;
                slot.event = versioned.event;
                summary.reindexed += 1;
            }
            None => {
                let slot_id = state.slots.len() as u32;
                // Ids are minted monotonically and events are never
                // removed, so appends arrive in ascending id order and
                // slot order == id order — what keeps results sorted
                // for free.
                debug_assert!(state
                    .slots
                    .last()
                    .is_none_or(|last| last.event_id < event_id));
                let tokens = Self::tokenize(state, &versioned.event);
                for &token in &tokens {
                    // A fresh slot id is larger than every posted one:
                    // sparse adds stay a plain push.
                    state.postings[token as usize].add(slot_id);
                }
                state.dates.push(versioned.event.date);
                state.scores.push(decayed_score(&versioned.event));
                state.ranges_dirty = true;
                if versioned.event.published {
                    state.published.set(slot_id);
                }
                state.universe.set(slot_id);
                state.by_id.insert(event_id, slot_id);
                state.slots.push(Slot {
                    event_id,
                    version: versioned.version,
                    event: versioned.event,
                    tokens,
                });
                summary.appended += 1;
            }
        }
    }

    /// Compiles a query to a bitset over slots, bottom-up.
    fn eval(state: &IndexState, query: &Query) -> SlotBitset {
        match query {
            Query::All => state.universe.clone(),
            Query::Term { field, value } => {
                let key = match field {
                    Field::Type => type_key(value),
                    Field::Category => category_key(value),
                    Field::Tag => tag_key(value),
                    Field::Org => org_key(value),
                    Field::Value => {
                        let normalized = normalize(value);
                        if normalized.is_empty() {
                            // The reference semantics: an empty value
                            // term matches nothing.
                            return SlotBitset::new();
                        }
                        value_key(&normalized)
                    }
                };
                match state.tokens.get(&key) {
                    Some(&token) => state.postings[token as usize].to_bitset(),
                    None => SlotBitset::new(),
                }
            }
            Query::Contains(needle) => {
                // The one predicate postings cannot answer: scan, like
                // the linear baseline (identical semantics by
                // construction).
                let needle = needle.to_ascii_lowercase();
                let mut out = SlotBitset::new();
                for (slot_id, slot) in state.slots.iter().enumerate() {
                    if slot
                        .event
                        .attributes
                        .iter()
                        .any(|a| a.value.to_ascii_lowercase().contains(&needle))
                    {
                        out.set(slot_id as u32);
                    }
                }
                out
            }
            Query::Published(published) => {
                if *published {
                    state.published.clone()
                } else {
                    let mut out = state.universe.clone();
                    out.subtract(&state.published);
                    out
                }
            }
            Query::DateRange { cmp, instant } => {
                let sorted = &state.dates_sorted;
                let matching = match cmp {
                    Cmp::Ge => sorted.partition_point(|&(d, _)| d < *instant)..sorted.len(),
                    Cmp::Gt => sorted.partition_point(|&(d, _)| d <= *instant)..sorted.len(),
                    Cmp::Lt => 0..sorted.partition_point(|&(d, _)| d < *instant),
                    Cmp::Le => 0..sorted.partition_point(|&(d, _)| d <= *instant),
                };
                let mut out = SlotBitset::new();
                for &(_, slot) in &sorted[matching] {
                    out.set(slot);
                }
                out
            }
            Query::ScoreRange { cmp, score } => {
                if score.is_nan() {
                    // IEEE: nothing compares against NaN. (Unreachable
                    // through the parser, which only admits finite
                    // operands, but the AST is public.)
                    return SlotBitset::new();
                }
                let sorted = &state.scores_sorted;
                let matching = match cmp {
                    Cmp::Ge => sorted.partition_point(|&(s, _)| s < *score)..sorted.len(),
                    Cmp::Gt => sorted.partition_point(|&(s, _)| s <= *score)..sorted.len(),
                    Cmp::Lt => 0..sorted.partition_point(|&(s, _)| s < *score),
                    Cmp::Le => 0..sorted.partition_point(|&(s, _)| s <= *score),
                };
                let mut out = SlotBitset::new();
                for &(_, slot) in &sorted[matching] {
                    out.set(slot);
                }
                out
            }
            Query::Not(inner) => {
                let mut out = state.universe.clone();
                out.subtract(&Self::eval(state, inner));
                out
            }
            Query::And(items) => {
                let mut iter = items.iter();
                let mut out = match iter.next() {
                    Some(first) => Self::eval(state, first),
                    // all() over an empty conjunction is true.
                    None => return state.universe.clone(),
                };
                for item in iter {
                    if out.is_empty() {
                        break;
                    }
                    out.intersect_with(&Self::eval(state, item));
                }
                out
            }
            Query::Or(items) => {
                let mut out = SlotBitset::new();
                for item in items {
                    out.union_with(&Self::eval(state, item));
                }
                out
            }
        }
    }
}

impl std::fmt::Debug for SearchIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("SearchIndex")
            .field("events", &state.slots.len())
            .field("tokens", &state.tokens.len())
            .field("synced_generation", &state.synced_generation)
            .finish()
    }
}

impl SearchBackend for SearchIndex {
    /// The [`MispApi::search`] seam: sync off the changelog, compile
    /// the flat filter, answer from postings. Equivalent to
    /// `store.search_linear(query)` by the [`SearchBackend`] contract.
    ///
    /// [`MispApi::search`]: cais_misp::MispApi::search
    fn search_query(&self, store: &MispStore, query: &SearchQuery) -> Vec<VersionedEvent> {
        self.sync(store);
        self.search(&Query::from(query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_misp::{AttributeCategory, MispAttribute, MispEvent, Tag};

    fn event(info: &str, attr_type: &str, value: &str) -> MispEvent {
        let mut e = MispEvent::new(info);
        e.add_attribute(MispAttribute::new(
            attr_type,
            AttributeCategory::NetworkActivity,
            value,
        ));
        e
    }

    fn ids(hits: &[VersionedEvent]) -> Vec<u64> {
        hits.iter().map(|v| v.event.id).collect()
    }

    #[test]
    fn sync_appends_then_reindexes_incrementally() {
        let store = MispStore::new();
        let a = store
            .insert(event("a", "domain", "c2.evil.example"))
            .unwrap();
        let b = store.insert(event("b", "ip-dst", "203.0.113.9")).unwrap();

        let index = SearchIndex::new();
        let first = index.sync(&store);
        assert!(first.rebuilt);
        assert_eq!(first.appended, 2);

        // No writes: the next sync is a no-op.
        assert_eq!(index.sync(&store), SyncSummary::default());

        // One update: exactly one event re-tokenized, nothing rebuilt.
        store.update(a, |e| e.add_tag(Tag::tlp_amber())).unwrap();
        let second = index.sync(&store);
        assert!(!second.rebuilt);
        assert_eq!(second.reindexed, 1);

        let hits = index.search(&Query::parse("tag:tlp:amber").unwrap());
        assert_eq!(ids(&hits), vec![a]);
        let hits = index.search(&Query::parse("value:203.0.113.9").unwrap());
        assert_eq!(ids(&hits), vec![b]);
    }

    #[test]
    fn updates_retokenize_out_of_old_postings() {
        let store = MispStore::new();
        let id = store.insert(event("a", "domain", "old.example")).unwrap();
        let index = SearchIndex::new();
        index.sync(&store);
        assert_eq!(
            ids(&index.search(&Query::parse("value:old").unwrap())),
            vec![id]
        );

        store
            .update(id, |e| {
                e.attributes[0].value = "new.example".into();
            })
            .unwrap();
        index.sync(&store);
        assert!(index.search(&Query::parse("value:old").unwrap()).is_empty());
        assert_eq!(
            ids(&index.search(&Query::parse("value:new").unwrap())),
            vec![id]
        );
    }

    #[test]
    fn boolean_and_range_queries_agree_with_the_oracle() {
        use crate::query::matches_event;

        let store = MispStore::new();
        let mut scored = event("scored", "domain", "hot.example");
        scored.add_tag(Tag::machine("cais", "decay-score", "4.5"));
        let scored_id = store.insert(scored).unwrap();
        let plain_id = store
            .insert(event("plain", "ip-dst", "203.0.113.9"))
            .unwrap();
        store.publish(plain_id).unwrap();

        let index = SearchIndex::new();
        index.sync(&store);

        for input in [
            "score>=4 AND NOT published:true",
            "type:ip-dst OR value:hot",
            "published:false",
            "contains:EXAMPLE",
            "date>=1970-01-01",
            "org:\"\"",
            "category:\"network activity\"",
        ] {
            let query = Query::parse(input).unwrap();
            let got = ids(&index.search(&query));
            let want: Vec<u64> = store
                .snapshot()
                .iter()
                .filter(|v| matches_event(&query, &v.event))
                .map(|v| v.event.id)
                .collect();
            assert_eq!(got, want, "query {input:?}");
        }
        assert_eq!(
            ids(&index.search(&Query::parse("score>=4").unwrap())),
            vec![scored_id]
        );
    }

    #[test]
    fn backend_contract_matches_linear_search() {
        let store = MispStore::new();
        store.insert(event("a", "domain", "evil.example")).unwrap();
        let b = store.insert(event("b", "domain", "good.example")).unwrap();
        store.publish(b).unwrap();

        let index = SearchIndex::new();
        let query = SearchQuery {
            published_only: true,
            ..SearchQuery::default()
        };
        let indexed = index.search_query(&store, &query);
        let linear = store.search_linear(&query);
        assert_eq!(ids(&indexed), ids(&linear));
        assert_eq!(
            indexed.iter().map(|v| v.version).collect::<Vec<_>>(),
            linear.iter().map(|v| v.version).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn metrics_flow() {
        let registry = Registry::new();
        let store = MispStore::new();
        store.insert(event("a", "domain", "evil.example")).unwrap();
        let index = SearchIndex::new();
        index.instrument(&registry);
        index.sync(&store);
        index.search(&Query::parse("value:evil").unwrap());
        assert!(index.search_str("(((").is_err());
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["search_queries_total"], 1);
        assert_eq!(snapshot.counters["search_hits_total"], 1);
        assert_eq!(snapshot.counters["search_parse_errors_total"], 1);
        assert_eq!(snapshot.counters["search_index_syncs_total"], 1);
        assert_eq!(snapshot.counters["search_index_rebuilds_total"], 1);
        assert_eq!(snapshot.gauges["search_index_events"], 1);
        assert_eq!(snapshot.histograms["search_query_nanos"].count, 1);
    }

    #[test]
    fn decay_tag_literals_match_the_decay_crate() {
        assert_eq!(
            crate::query::DECAY_SCORE_TAG,
            (
                cais_decay::DECAY_TAG_NAMESPACE,
                cais_decay::DECAY_SCORE_PREDICATE
            ),
        );
    }
}
