//! # cais-search
//!
//! An incremental inverted index and typed query language over MISP
//! events, attributes and rIoCs.
//!
//! The paper's platform stands on analysts being able to *find* shared
//! intelligence fast — the sharing layer and dashboards all assume
//! cheap lookup over a growing event store. This crate replaces the
//! linear clone-per-hit scans with:
//!
//! - [`SearchIndex`]: interned-token postings + bitset evaluation
//!   (generalized from `cais_infra`'s pattern index), kept fresh off
//!   the store changelog so churn costs O(changed events), never a
//!   full rebuild.
//! - [`Query`]: a small typed language — `field:value` terms over
//!   types, categories, tags, orgs and value tokens; `AND`/`OR`/`NOT`;
//!   and range predicates over timestamps and decayed threat scores —
//!   compiled to bitset operations over the postings.
//! - [`stix_matches`]: the same language applied to serialized STIX
//!   envelope objects, which is what lets TAXII `get-objects` requests
//!   carry a `match` filter.
//!
//! The index's contract is strict equivalence with the linear
//! baseline: for any store state and query, [`SearchIndex::search`]
//! returns exactly what a full scan under [`matches_event`] (or
//! `MispStore::search_linear` for compiled [`SearchQuery`]s) would —
//! the crate's property tests drive random churn interleavings to hold
//! it there.
//!
//! [`SearchQuery`]: cais_misp::store::SearchQuery
//!
//! # Examples
//!
//! ```
//! use cais_misp::{AttributeCategory, MispAttribute, MispEvent, MispStore};
//! use cais_search::{Query, SearchIndex};
//!
//! let store = MispStore::new();
//! let mut event = MispEvent::new("struts campaign");
//! event.add_attribute(MispAttribute::new(
//!     "vulnerability",
//!     AttributeCategory::ExternalAnalysis,
//!     "CVE-2017-9805",
//! ));
//! store.insert(event)?;
//!
//! let index = SearchIndex::new();
//! index.sync(&store);
//! let query = Query::parse("type:vulnerability AND value:cve-2017-9805").unwrap();
//! assert_eq!(index.search(&query).len(), 1);
//! # Ok::<(), cais_misp::MispError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod index;
pub mod query;
pub mod stix;

pub use bitset::SlotBitset;
pub use index::{SearchIndex, SyncSummary};
pub use query::{
    decayed_score, matches_event, Cmp, Field, ParseError, Query, DECAY_SCORE_TAG, MAX_QUERY_DEPTH,
};
pub use stix::stix_matches;
