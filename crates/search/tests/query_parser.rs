//! Parser robustness properties:
//!
//! * **Totality**: `Query::parse` never panics — arbitrary byte soup
//!   yields `Ok` or a positioned `ParseError`.
//! * **Display identity**: for any AST the generator can build,
//!   `parse(ast.to_string()) == ast` — the printed form is a lossless
//!   wire format, so queries survive being logged, shipped in TAXII
//!   `match` fields, and re-parsed server-side.
//!
//! The vendored proptest has no recursive strategies, so ASTs are
//! hand-assembled by a little stack machine driven by integer opcode
//! vectors — pushes build leaves, unary/binary ops fold the stack.

use cais_common::Timestamp;
use cais_search::{Cmp, Field, Query};
use proptest::prelude::*;

/// Leaf values spanning the quoting edge cases: bare words, colons
/// (machine tags), whitespace, quotes, backslashes, non-ASCII, empty.
const VALUES: &[&str] = &[
    "evil",
    "c2.example.com",
    "tlp:red",
    "cais-conf:reliability=\"4\"",
    "multi word",
    "wei\"rd\\back",
    "päy load",
    "AND",
    "",
];

const FIELDS: &[Field] = &[
    Field::Type,
    Field::Category,
    Field::Tag,
    Field::Org,
    Field::Value,
];

const CMPS: &[Cmp] = &[Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge];

/// One leaf query from an opcode. Never `Query::All` — the empty
/// rendering only reparses as a whole query, not as a composite child.
fn leaf(code: u64) -> Query {
    let value = VALUES[(code / 16) as usize % VALUES.len()].to_owned();
    match code % 8 {
        d @ 0..=4 => Query::Term {
            field: FIELDS[d as usize],
            value,
        },
        5 => Query::Contains(value),
        6 => Query::Published((code / 16).is_multiple_of(2)),
        _ => {
            let cmp = CMPS[(code / 16) as usize % CMPS.len()];
            if (code / 64).is_multiple_of(2) {
                // Positive-era instants only: to_rfc3339 four-digit
                // years are the format parse_rfc3339 accepts.
                Query::DateRange {
                    cmp,
                    instant: Timestamp::from_unix_millis((code % 4_000_000_000_000) as i64),
                }
            } else {
                Query::ScoreRange {
                    cmp,
                    score: (code % 2001) as f64 / 10.0 - 100.0,
                }
            }
        }
    }
}

/// Folds opcodes into an AST. Binary ops only ever combine two
/// stack entries, so `And`/`Or` nodes always have ≥2 children — a
/// single-child composite would print as its child and reparse
/// shallower than built.
fn build(codes: &[(u64, u64)]) -> Query {
    let mut stack: Vec<Query> = Vec::new();
    for &(op, operand) in codes {
        match op % 4 {
            0 | 1 => stack.push(leaf(operand)),
            2 => match stack.pop() {
                Some(inner) => stack.push(Query::Not(Box::new(inner))),
                None => stack.push(leaf(operand)),
            },
            _ => {
                if stack.len() >= 2 {
                    let rhs = stack.pop().expect("len checked");
                    let lhs = stack.pop().expect("len checked");
                    stack.push(if operand % 2 == 0 {
                        Query::And(vec![lhs, rhs])
                    } else {
                        Query::Or(vec![lhs, rhs])
                    });
                } else {
                    stack.push(leaf(operand));
                }
            }
        }
    }
    match stack.len() {
        0 => Query::All,
        1 => stack.pop().expect("len checked"),
        _ => Query::And(stack),
    }
}

proptest! {
    #[test]
    fn parse_is_total_over_arbitrary_input(input in "\\PC{0,60}") {
        // Ok or Err both fine; a panic fails the test.
        let _ = Query::parse(&input);
    }

    #[test]
    fn parse_is_total_over_operator_soup(
        pieces in prop::collection::vec(
            prop::sample::select(vec![
                "AND", "OR", "NOT", "(", ")", "\"", "\\", "<", ">=", ":",
                "type:", "score", "date", "published:", "contains:", "a", "\"x",
            ]),
            0..12,
        ),
    ) {
        let _ = Query::parse(&pieces.join(" "));
        let _ = Query::parse(&pieces.join(""));
    }

    #[test]
    fn display_reparses_to_the_same_ast(
        codes in prop::collection::vec((any::<u64>(), any::<u64>()), 0..24),
    ) {
        let query = build(&codes);
        let printed = query.to_string();
        let reparsed = Query::parse(&printed)
            .unwrap_or_else(|e| panic!("`{printed}` failed to reparse: {e}"));
        prop_assert_eq!(
            &reparsed,
            &query,
            "`{}` reparsed to `{}`",
            printed,
            reparsed
        );
        // Display is a fixpoint: printing the reparse changes nothing.
        prop_assert_eq!(reparsed.to_string(), printed);
    }
}
