//! Property test: the inverted index is observationally equivalent to
//! a linear scan. For arbitrary stores and interleaved
//! insert/update/publish/tag mutations, after every round's changelog
//! sync:
//!
//! * `SearchIndex::search` returns exactly the `(id, version)` pairs a
//!   full [`matches_event`] scan does, in id order, for a query pool
//!   spanning every language axis (terms, ranges, NOT/AND/OR, contains),
//! * the [`SearchBackend`] seam answers legacy [`SearchQuery`] filters
//!   exactly like the store's retained `search_linear` path,
//!
//! so appends, version-gated reindexing and generation tracking are
//! all exercised against both oracles.

use cais_common::Timestamp;
use cais_misp::{
    AttributeCategory, MispAttribute, MispEvent, MispStore, SearchBackend, SearchQuery, Tag,
};
use cais_search::{matches_event, Query, SearchIndex};
use proptest::prelude::*;

/// Typed attribute seeds that pass store validation.
const ATTRIBUTES: &[(&str, &str)] = &[
    ("domain", "c2.evil.example"),
    ("domain", "drop.evil.example"),
    ("ip-dst", "203.0.113.9"),
    ("ip-dst", "198.51.100.7"),
    ("url", "https://evil.example/payload"),
    ("vulnerability", "CVE-2017-9805"),
    ("text", "apache struts exploitation"),
];

const TAGS: &[&str] = &["tlp:red", "tlp:amber", "type:OSINT"];

const ORGS: &[&str] = &["CIRCL", "fleet-soc"];

/// The typed-query oracle pool: one probe per language axis plus
/// boolean compositions over them.
fn query_pool() -> Vec<Query> {
    let since = Timestamp::from_unix_millis(45 * 86_400_000);
    [
        "",
        "type:ip-dst",
        "category:\"Network activity\"",
        "tag:tlp:red",
        "org:circl",
        "value:evil",
        "value:c2.evil.example",
        "contains:struts",
        "published:true",
        "published:false",
        "score >= 2.5",
        "score < 1.0",
        "type:domain AND tag:tlp:red",
        "org:circl OR org:fleet-soc",
        "NOT type:ip-dst",
        "(tag:tlp:amber OR tag:tlp:red) AND NOT org:fleet-soc",
        "value:evil AND score >= 0.5 AND published:true",
    ]
    .into_iter()
    .map(|q| Query::parse(q).expect("pool query parses"))
    .chain(std::iter::once(Query::DateRange {
        cmp: cais_search::Cmp::Ge,
        instant: since,
    }))
    .collect()
}

/// Legacy filters pushed through the SearchBackend seam.
fn legacy_pool() -> Vec<SearchQuery> {
    vec![
        SearchQuery::default(),
        SearchQuery {
            attr_type: Some("domain".to_owned()),
            published_only: true,
            ..SearchQuery::default()
        },
        SearchQuery {
            tag: Some("tlp:red".to_owned()),
            value_contains: Some("EVIL".to_owned()),
            ..SearchQuery::default()
        },
        SearchQuery {
            since: Some(Timestamp::from_unix_millis(45 * 86_400_000)),
            attr_type: Some("ip-dst".to_owned()),
            ..SearchQuery::default()
        },
    ]
}

fn event(info: String, spec: &EventSpec) -> MispEvent {
    let mut e = MispEvent::new(info);
    e.org = ORGS[spec.org % ORGS.len()].to_owned();
    e.date = Timestamp::from_unix_millis(40 * 86_400_000).add_days(spec.age_days);
    for pick in &spec.attributes {
        let (attr_type, value) = ATTRIBUTES[pick % ATTRIBUTES.len()];
        e.add_attribute(MispAttribute::new(
            attr_type,
            AttributeCategory::NetworkActivity,
            value,
        ));
    }
    if let Some(pick) = spec.tag {
        e.add_tag(Tag::new(TAGS[pick % TAGS.len()]));
    }
    if let Some(decimals) = spec.score {
        e.add_tag(Tag::machine(
            "cais",
            "decay-score",
            &format!("{:.1}", decimals as f64 / 10.0),
        ));
    }
    e.published = spec.published;
    e
}

#[derive(Debug, Clone)]
struct EventSpec {
    attributes: Vec<usize>,
    tag: Option<usize>,
    org: usize,
    age_days: i64,
    score: Option<u8>,
    published: bool,
}

fn event_spec() -> impl Strategy<Value = EventSpec> {
    // The vendored proptest has no `prop::option`, so optional picks
    // ride one extra integer: the top value means `None`.
    (
        prop::collection::vec(0usize..ATTRIBUTES.len(), 0..4),
        0usize..=TAGS.len(),
        0usize..ORGS.len(),
        0i64..12,
        0u8..=50,
        any::<bool>(),
    )
        .prop_map(
            |(attributes, tag, org, age_days, score, published)| EventSpec {
                attributes,
                tag: (tag < TAGS.len()).then_some(tag),
                org,
                age_days,
                score: (score < 50).then_some(score),
                published,
            },
        )
}

/// Syncs the index and checks both oracles over the whole pool.
fn check(index: &SearchIndex, store: &MispStore, round: usize) {
    index.sync(store);
    let snapshot = store.snapshot();
    for query in query_pool() {
        let indexed: Vec<(u64, u64)> = index
            .search(&query)
            .iter()
            .map(|v| (v.event.id, v.version))
            .collect();
        let linear: Vec<(u64, u64)> = snapshot
            .iter()
            .filter(|v| matches_event(&query, &v.event))
            .map(|v| (v.event.id, v.version))
            .collect();
        assert_eq!(
            indexed, linear,
            "indexed diverged from matches_event on `{query}` in round {round}"
        );
    }
    for legacy in legacy_pool() {
        let via_backend: Vec<(u64, u64)> = index
            .search_query(store, &legacy)
            .iter()
            .map(|v| (v.event.id, v.version))
            .collect();
        let via_linear: Vec<(u64, u64)> = store
            .search_linear(&legacy)
            .iter()
            .map(|v| (v.event.id, v.version))
            .collect();
        assert_eq!(
            via_backend, via_linear,
            "SearchBackend diverged from search_linear on {legacy:?} in round {round}"
        );
    }
}

proptest! {
    #[test]
    fn indexed_search_matches_linear_scan_under_churn(
        seeds in prop::collection::vec(event_spec(), 1..5),
        rounds in prop::collection::vec(
            (0usize..6, event_spec(), any::<bool>()),
            0..5,
        ),
    ) {
        let store = MispStore::new();
        let index = SearchIndex::new();
        let mut ids = Vec::new();
        for (i, spec) in seeds.iter().enumerate() {
            ids.push(store.insert(event(format!("advisory {i}"), spec)).expect("insert"));
        }
        check(&index, &store, 0);

        for (round, (pick, spec, grow)) in rounds.into_iter().enumerate() {
            let id = ids[pick % ids.len()];
            let replacement = event(format!("advisory {id} (round {round})"), &spec);
            store
                .update(id, |e| {
                    e.info = replacement.info.clone();
                    e.org = replacement.org.clone();
                    e.date = replacement.date;
                    e.attributes = replacement.attributes.clone();
                    e.tags = replacement.tags.clone();
                    e.published = replacement.published;
                })
                .expect("update");
            if grow {
                let late = event(format!("late {round}"), &spec);
                ids.push(store.insert(late).expect("insert"));
            }
            check(&index, &store, round + 1);
        }
    }
}
