//! CVE identifiers, records and an in-memory database with a synthetic
//! generator.
//!
//! The paper's platform checks each incoming IoC's CVE against "a local
//! inventory" to derive the `cve` feature score. Lacking live NVD access,
//! [`CveDatabase::synthetic`] generates a seeded population of records
//! whose CVSS severity distribution roughly follows NVD's published
//! breakdown, and always contains the paper's fixture CVE-2017-9805.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use cais_common::Timestamp;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::v3::{CvssV3, Severity};
use crate::CvssParseError;

/// A validated CVE identifier (`CVE-<year>-<sequence>`).
///
/// # Examples
///
/// ```
/// use cais_cvss::CveId;
///
/// let id: CveId = "cve-2017-9805".parse()?;
/// assert_eq!(id.to_string(), "CVE-2017-9805");
/// assert_eq!(id.year(), 2017);
/// # Ok::<(), cais_cvss::CvssParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct CveId {
    year: u16,
    sequence: u32,
}

impl CveId {
    /// Creates an identifier from its parts.
    pub fn new(year: u16, sequence: u32) -> Self {
        CveId { year, sequence }
    }

    /// The year component.
    pub fn year(&self) -> u16 {
        self.year
    }

    /// The sequence component.
    pub fn sequence(&self) -> u32 {
        self.sequence
    }
}

impl fmt::Display for CveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CVE-{}-{:04}", self.year, self.sequence)
    }
}

impl FromStr for CveId {
    type Err = CvssParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let upper = s.trim().to_ascii_uppercase();
        let err = |reason: &str| CvssParseError::new(s, reason);
        let rest = upper
            .strip_prefix("CVE-")
            .ok_or_else(|| err("missing CVE- prefix"))?;
        let (year, seq) = rest
            .split_once('-')
            .ok_or_else(|| err("missing sequence"))?;
        if year.len() != 4 {
            return Err(err("year must be four digits"));
        }
        let year: u16 = year.parse().map_err(|_| err("invalid year"))?;
        if seq.len() < 4 || seq.len() > 7 {
            return Err(err("sequence must be 4-7 digits"));
        }
        let sequence: u32 = seq.parse().map_err(|_| err("invalid sequence"))?;
        Ok(CveId { year, sequence })
    }
}

impl TryFrom<String> for CveId {
    type Error = CvssParseError;

    fn try_from(value: String) -> Result<Self, Self::Error> {
        value.parse()
    }
}

impl From<CveId> for String {
    fn from(id: CveId) -> String {
        id.to_string()
    }
}

/// A CVE record: description, CVSS vector, affected products and dates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CveRecord {
    /// The CVE identifier.
    pub id: CveId,
    /// Short description of the weakness.
    pub description: String,
    /// The CVSS v3.0 vector, when scored.
    pub cvss: Option<CvssV3>,
    /// When the record was published.
    pub published: Timestamp,
    /// Affected products, as lowercase `vendor product` names (for
    /// matching against an infrastructure inventory).
    pub affected_products: Vec<String>,
    /// Affected operating systems, lowercase.
    pub affected_os: Vec<String>,
}

impl CveRecord {
    /// The base score, when the record carries a CVSS vector.
    pub fn base_score(&self) -> Option<f64> {
        self.cvss.map(|v| v.base_score())
    }

    /// The qualitative severity ([`Severity::None`] when unscored).
    pub fn severity(&self) -> Severity {
        self.cvss.map_or(Severity::None, |v| v.severity())
    }
}

/// An in-memory CVE database indexed by identifier and affected product.
///
/// # Examples
///
/// ```
/// use cais_cvss::{CveDatabase, CveId};
///
/// let db = CveDatabase::synthetic(42, 500);
/// let struts: CveId = "CVE-2017-9805".parse()?;
/// let record = db.get(&struts).expect("fixture is always present");
/// assert_eq!(record.severity().to_string(), "high");
/// assert!(db.len() >= 500);
/// # Ok::<(), cais_cvss::CvssParseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CveDatabase {
    records: HashMap<CveId, CveRecord>,
    by_product: HashMap<String, Vec<CveId>>,
}

impl CveDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        CveDatabase::default()
    }

    /// Inserts a record, replacing any previous record with the same id.
    pub fn insert(&mut self, record: CveRecord) {
        for product in &record.affected_products {
            let ids = self
                .by_product
                .entry(product.to_ascii_lowercase())
                .or_default();
            if !ids.contains(&record.id) {
                ids.push(record.id.clone());
            }
        }
        self.records.insert(record.id.clone(), record);
    }

    /// Looks up a record by identifier.
    pub fn get(&self, id: &CveId) -> Option<&CveRecord> {
        self.records.get(id)
    }

    /// Returns the identifiers of records affecting a product
    /// (case-insensitive exact product name).
    pub fn affecting_product(&self, product: &str) -> &[CveId] {
        self.by_product
            .get(&product.to_ascii_lowercase())
            .map_or(&[], Vec::as_slice)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all records.
    pub fn iter(&self) -> impl Iterator<Item = &CveRecord> {
        self.records.values()
    }

    /// The paper's fixture record: CVE-2017-9805, the Apache Struts REST
    /// plugin XStream RCE, CVSS v3.0 = 8.1 (High), published 2017-09-13.
    pub fn struts_rce_fixture() -> CveRecord {
        CveRecord {
            id: CveId::new(2017, 9805),
            description: "The REST Plugin in Apache Struts uses an XStreamHandler with an \
                          instance of XStream for deserialization without any type filtering, \
                          which can lead to Remote Code Execution when deserializing XML \
                          payloads."
                .to_owned(),
            cvss: Some(
                "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H"
                    .parse()
                    .expect("fixture vector is valid"),
            ),
            published: Timestamp::from_ymd_hms(2017, 9, 13, 0, 0, 0),
            affected_products: vec!["apache struts".to_owned(), "apache".to_owned()],
            affected_os: vec!["debian".to_owned(), "linux".to_owned()],
        }
    }

    /// Generates a seeded synthetic database of `count` records (plus the
    /// Struts fixture), with a CVSS severity mix approximating NVD's
    /// published distribution (~14% critical, ~38% high, ~38% medium,
    /// ~10% low) and products drawn from a pool matching the paper's
    /// Table III inventory.
    pub fn synthetic(seed: u64, count: usize) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut db = CveDatabase::new();
        db.insert(CveDatabase::struts_rce_fixture());

        const PRODUCTS: &[&str] = &[
            "apache struts",
            "apache",
            "apache storm",
            "apache zookeeper",
            "owncloud",
            "gitlab",
            "ossec",
            "snort",
            "suricata",
            "php",
            "openssl",
            "nginx",
            "postgresql",
            "mysql",
            "wordpress",
            "jenkins",
            "docker",
            "kubernetes",
        ];
        const OSES: &[&str] = &["linux", "windows", "debian", "ubuntu", "centos", "macos"];
        const VECTORS: &[(&str, &str)] = &[
            // (severity class, vector)
            ("critical", "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"),
            ("critical", "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H"),
            ("high", "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H"),
            ("high", "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N"),
            ("high", "CVSS:3.0/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:N"),
            ("medium", "CVSS:3.0/AV:N/AC:L/PR:L/UI:R/S:C/C:L/I:L/A:N"),
            ("medium", "CVSS:3.0/AV:N/AC:H/PR:N/UI:R/S:U/C:L/I:L/A:L"),
            ("medium", "CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:L/I:L/A:L"),
            ("low", "CVSS:3.0/AV:L/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N"),
            ("low", "CVSS:3.0/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:L/A:N"),
        ];
        const KINDS: &[&str] = &[
            "remote code execution",
            "sql injection",
            "cross-site scripting",
            "privilege escalation",
            "denial of service",
            "information disclosure",
            "authentication bypass",
            "buffer overflow",
            "path traversal",
            "deserialization of untrusted data",
        ];

        let mut sequence = 10_000u32;
        for _ in 0..count {
            sequence += rng.gen_range(1u32..20);
            let year = rng.gen_range(2014u16..=2019);
            // Severity mix: 14% critical, 38% high, 38% medium, 10% low.
            let roll: f64 = rng.gen();
            let class = if roll < 0.14 {
                "critical"
            } else if roll < 0.52 {
                "high"
            } else if roll < 0.90 {
                "medium"
            } else {
                "low"
            };
            let candidates: Vec<&(&str, &str)> =
                VECTORS.iter().filter(|(c, _)| *c == class).collect();
            let (_, vector) = candidates.choose(&mut rng).expect("non-empty class");
            // ~5% of records are unscored (CVE with no CVSS).
            let cvss = if rng.gen_bool(0.05) {
                None
            } else {
                Some(vector.parse().expect("generator vectors are valid"))
            };
            let product = PRODUCTS.choose(&mut rng).expect("non-empty");
            let os = OSES.choose(&mut rng).expect("non-empty");
            let kind = KINDS.choose(&mut rng).expect("non-empty");
            let published = Timestamp::from_ymd_hms(
                year as i32,
                rng.gen_range(1..=12),
                rng.gen_range(1..=28),
                0,
                0,
                0,
            );
            db.insert(CveRecord {
                id: CveId::new(year, sequence),
                description: format!("{kind} in {product} on {os}"),
                cvss,
                published,
                affected_products: vec![(*product).to_owned()],
                affected_os: vec![(*os).to_owned()],
            });
        }
        db
    }
}

impl FromIterator<CveRecord> for CveDatabase {
    fn from_iter<I: IntoIterator<Item = CveRecord>>(iter: I) -> Self {
        let mut db = CveDatabase::new();
        for record in iter {
            db.insert(record);
        }
        db
    }
}

impl Extend<CveRecord> for CveDatabase {
    fn extend<I: IntoIterator<Item = CveRecord>>(&mut self, iter: I) {
        for record in iter {
            self.insert(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cve_id_parse_and_format() {
        let id: CveId = "CVE-2017-9805".parse().unwrap();
        assert_eq!(id.year(), 2017);
        assert_eq!(id.sequence(), 9805);
        assert_eq!(id.to_string(), "CVE-2017-9805");
        // Long sequences keep their width; short ones are zero-padded.
        assert_eq!(CveId::new(2021, 44228).to_string(), "CVE-2021-44228");
        assert_eq!(CveId::new(2019, 17).to_string(), "CVE-2019-0017");
    }

    #[test]
    fn cve_id_rejects_malformed() {
        for bad in [
            "",
            "CVE-17-9805",
            "CVE-2017-1",
            "2017-9805",
            "CVE-2017-123456789",
        ] {
            assert!(bad.parse::<CveId>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn fixture_matches_paper() {
        let record = CveDatabase::struts_rce_fixture();
        assert_eq!(record.base_score(), Some(8.1));
        assert_eq!(record.severity(), Severity::High);
        assert_eq!(
            record.published,
            Timestamp::from_ymd_hms(2017, 9, 13, 0, 0, 0)
        );
    }

    #[test]
    fn synthetic_is_seeded_and_contains_fixture() {
        let a = CveDatabase::synthetic(7, 200);
        let b = CveDatabase::synthetic(7, 200);
        assert_eq!(a.len(), b.len());
        let id: CveId = "CVE-2017-9805".parse().unwrap();
        assert!(a.get(&id).is_some());
        // Deterministic content, not just count.
        for record in a.iter() {
            let other = b.get(&record.id).expect("same ids");
            assert_eq!(other, record);
        }
    }

    #[test]
    fn product_index_finds_struts() {
        let db = CveDatabase::synthetic(1, 300);
        let hits = db.affecting_product("Apache Struts");
        assert!(!hits.is_empty());
        assert!(hits.iter().any(|id| id == &CveId::new(2017, 9805)));
        assert!(db.affecting_product("nonexistent product").is_empty());
    }

    #[test]
    fn severity_mix_is_plausible() {
        let db = CveDatabase::synthetic(3, 2_000);
        let critical = db
            .iter()
            .filter(|r| r.severity() == Severity::Critical)
            .count() as f64;
        let fraction = critical / db.len() as f64;
        assert!(
            (0.05..0.30).contains(&fraction),
            "critical fraction {fraction} outside plausible band"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let record = CveDatabase::struts_rce_fixture();
        let json = serde_json::to_string(&record).unwrap();
        assert!(json.contains("CVE-2017-9805"));
        let back: CveRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }
}
