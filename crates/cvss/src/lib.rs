//! # cais-cvss
//!
//! CVSS (Common Vulnerability Scoring System) vectors and scores, plus a
//! CVE record store with a synthetic generator.
//!
//! The paper's `cve` heuristic feature scores an IoC by whether it names
//! a CVE and, if so, how severe that CVE's CVSS is (Table IV: no CVE = 0
//! … CVE with critical CVSS = 5). The platform therefore needs to parse
//! CVSS vectors, compute scores and bucket them into severity bands —
//! and, lacking live NVD access, a synthetic CVE database that exercises
//! the same lookups.
//!
//! # Examples
//!
//! ```
//! use cais_cvss::v3::{CvssV3, Severity};
//!
//! // CVE-2017-9805, the paper's use case: CVSS v3.0 base score 8.1.
//! let cvss: CvssV3 = "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H".parse()?;
//! assert_eq!(cvss.base_score(), 8.1);
//! assert_eq!(cvss.severity(), Severity::High);
//! # Ok::<(), cais_cvss::CvssParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cve;
pub mod v2;
pub mod v3;

pub use cve::{CveDatabase, CveId, CveRecord};
pub use v3::{CvssV3, Severity};

use std::fmt;

/// Error returned when a CVSS vector string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CvssParseError {
    input: String,
    reason: String,
}

impl CvssParseError {
    pub(crate) fn new(input: &str, reason: impl Into<String>) -> Self {
        CvssParseError {
            input: input.to_owned(),
            reason: reason.into(),
        }
    }

    /// The input that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for CvssParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CVSS vector {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for CvssParseError {}
