//! CVSS v3.0 vectors: parsing and base/temporal scoring.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::CvssParseError;

/// Attack Vector (AV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AttackVector {
    Network,
    Adjacent,
    Local,
    Physical,
}

/// Attack Complexity (AC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AttackComplexity {
    Low,
    High,
}

/// Privileges Required (PR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum PrivilegesRequired {
    None,
    Low,
    High,
}

/// User Interaction (UI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum UserInteraction {
    None,
    Required,
}

/// Scope (S).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Scope {
    Unchanged,
    Changed,
}

/// Impact on Confidentiality, Integrity or Availability (C/I/A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Impact {
    None,
    Low,
    High,
}

/// Exploit Code Maturity (E), temporal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[allow(missing_docs)]
pub enum ExploitMaturity {
    #[default]
    NotDefined,
    Unproven,
    ProofOfConcept,
    Functional,
    High,
}

/// Remediation Level (RL), temporal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[allow(missing_docs)]
pub enum RemediationLevel {
    #[default]
    NotDefined,
    OfficialFix,
    TemporaryFix,
    Workaround,
    Unavailable,
}

/// Report Confidence (RC), temporal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[allow(missing_docs)]
pub enum ReportConfidence {
    #[default]
    NotDefined,
    Unknown,
    Reasonable,
    Confirmed,
}

/// A security requirement (CR/IR/AR) for environmental scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[allow(missing_docs)]
pub enum Requirement {
    #[default]
    NotDefined,
    Low,
    Medium,
    High,
}

impl Requirement {
    fn weight(self) -> f64 {
        match self {
            Requirement::NotDefined | Requirement::Medium => 1.0,
            Requirement::Low => 0.5,
            Requirement::High => 1.5,
        }
    }
}

/// The deployment's confidentiality/integrity/availability requirements,
/// driving the environmental score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct SecurityRequirements {
    /// Confidentiality Requirement (CR).
    pub confidentiality: Requirement,
    /// Integrity Requirement (IR).
    pub integrity: Requirement,
    /// Availability Requirement (AR).
    pub availability: Requirement,
}

/// Qualitative severity rating of a CVSS v3.0 score.
///
/// These are exactly the buckets the paper's Table IV `cve` feature maps
/// to attribute scores 2–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
#[allow(missing_docs)]
pub enum Severity {
    None,
    Low,
    Medium,
    High,
    Critical,
}

impl Severity {
    /// Buckets a score per the CVSS v3.0 qualitative rating scale.
    ///
    /// # Examples
    ///
    /// ```
    /// use cais_cvss::v3::Severity;
    /// assert_eq!(Severity::from_score(8.1), Severity::High);
    /// assert_eq!(Severity::from_score(9.8), Severity::Critical);
    /// assert_eq!(Severity::from_score(0.0), Severity::None);
    /// ```
    pub fn from_score(score: f64) -> Severity {
        if score <= 0.0 {
            Severity::None
        } else if score < 4.0 {
            Severity::Low
        } else if score < 7.0 {
            Severity::Medium
        } else if score < 9.0 {
            Severity::High
        } else {
            Severity::Critical
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Severity::None => "none",
            Severity::Low => "low",
            Severity::Medium => "medium",
            Severity::High => "high",
            Severity::Critical => "critical",
        };
        f.write_str(name)
    }
}

/// A CVSS v3.0 vector: base metrics plus optional temporal metrics.
///
/// # Examples
///
/// ```
/// use cais_cvss::v3::CvssV3;
///
/// let v: CvssV3 = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H".parse()?;
/// assert_eq!(v.base_score(), 9.8);
/// assert_eq!(v.to_string(), "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H");
/// # Ok::<(), cais_cvss::CvssParseError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CvssV3 {
    /// Attack Vector.
    pub attack_vector: AttackVector,
    /// Attack Complexity.
    pub attack_complexity: AttackComplexity,
    /// Privileges Required.
    pub privileges_required: PrivilegesRequired,
    /// User Interaction.
    pub user_interaction: UserInteraction,
    /// Scope.
    pub scope: Scope,
    /// Confidentiality impact.
    pub confidentiality: Impact,
    /// Integrity impact.
    pub integrity: Impact,
    /// Availability impact.
    pub availability: Impact,
    /// Exploit Code Maturity (temporal; defaults to Not Defined).
    #[serde(default)]
    pub exploit_maturity: ExploitMaturity,
    /// Remediation Level (temporal; defaults to Not Defined).
    #[serde(default)]
    pub remediation_level: RemediationLevel,
    /// Report Confidence (temporal; defaults to Not Defined).
    #[serde(default)]
    pub report_confidence: ReportConfidence,
}

/// Rounds up to one decimal place, as the CVSS v3.0 specification
/// requires.
fn roundup(value: f64) -> f64 {
    (value * 10.0).ceil() / 10.0
}

impl CvssV3 {
    /// Computes the base score per the CVSS v3.0 specification.
    pub fn base_score(&self) -> f64 {
        let iss = 1.0
            - (1.0 - impact_weight(self.confidentiality))
                * (1.0 - impact_weight(self.integrity))
                * (1.0 - impact_weight(self.availability));
        let impact = match self.scope {
            Scope::Unchanged => 6.42 * iss,
            Scope::Changed => 7.52 * (iss - 0.029) - 3.25 * (iss - 0.02).powi(15),
        };
        let exploitability = 8.22
            * av_weight(self.attack_vector)
            * ac_weight(self.attack_complexity)
            * pr_weight(self.privileges_required, self.scope)
            * ui_weight(self.user_interaction);
        if impact <= 0.0 {
            return 0.0;
        }
        match self.scope {
            Scope::Unchanged => roundup((impact + exploitability).min(10.0)),
            Scope::Changed => roundup((1.08 * (impact + exploitability)).min(10.0)),
        }
    }

    /// Computes the temporal score (equal to the base score when all
    /// temporal metrics are Not Defined).
    pub fn temporal_score(&self) -> f64 {
        let e = match self.exploit_maturity {
            ExploitMaturity::NotDefined | ExploitMaturity::High => 1.0,
            ExploitMaturity::Functional => 0.97,
            ExploitMaturity::ProofOfConcept => 0.94,
            ExploitMaturity::Unproven => 0.91,
        };
        let rl = match self.remediation_level {
            RemediationLevel::NotDefined | RemediationLevel::Unavailable => 1.0,
            RemediationLevel::Workaround => 0.97,
            RemediationLevel::TemporaryFix => 0.96,
            RemediationLevel::OfficialFix => 0.95,
        };
        let rc = match self.report_confidence {
            ReportConfidence::NotDefined | ReportConfidence::Confirmed => 1.0,
            ReportConfidence::Reasonable => 0.96,
            ReportConfidence::Unknown => 0.92,
        };
        roundup(self.base_score() * e * rl * rc)
    }

    /// The qualitative severity of the base score.
    pub fn severity(&self) -> Severity {
        Severity::from_score(self.base_score())
    }

    /// Computes the environmental score per the CVSS v3.0 specification,
    /// with the vector's own base metrics as the modified metrics and
    /// the deployment's CR/IR/AR applied.
    pub fn environmental_score(&self, requirements: SecurityRequirements) -> f64 {
        let miss = (1.0
            - (1.0 - impact_weight(self.confidentiality) * requirements.confidentiality.weight())
                * (1.0 - impact_weight(self.integrity) * requirements.integrity.weight())
                * (1.0 - impact_weight(self.availability) * requirements.availability.weight()))
        .min(0.915);
        let modified_impact = match self.scope {
            Scope::Unchanged => 6.42 * miss,
            Scope::Changed => 7.52 * (miss - 0.029) - 3.25 * (miss - 0.02).powi(15),
        };
        if modified_impact <= 0.0 {
            return 0.0;
        }
        let modified_exploitability = 8.22
            * av_weight(self.attack_vector)
            * ac_weight(self.attack_complexity)
            * pr_weight(self.privileges_required, self.scope)
            * ui_weight(self.user_interaction);
        let e = match self.exploit_maturity {
            ExploitMaturity::NotDefined | ExploitMaturity::High => 1.0,
            ExploitMaturity::Functional => 0.97,
            ExploitMaturity::ProofOfConcept => 0.94,
            ExploitMaturity::Unproven => 0.91,
        };
        let rl = match self.remediation_level {
            RemediationLevel::NotDefined | RemediationLevel::Unavailable => 1.0,
            RemediationLevel::Workaround => 0.97,
            RemediationLevel::TemporaryFix => 0.96,
            RemediationLevel::OfficialFix => 0.95,
        };
        let rc = match self.report_confidence {
            ReportConfidence::NotDefined | ReportConfidence::Confirmed => 1.0,
            ReportConfidence::Reasonable => 0.96,
            ReportConfidence::Unknown => 0.92,
        };
        let combined = match self.scope {
            Scope::Unchanged => (modified_impact + modified_exploitability).min(10.0),
            Scope::Changed => (1.08 * (modified_impact + modified_exploitability)).min(10.0),
        };
        roundup(roundup(combined) * e * rl * rc)
    }
}

fn impact_weight(impact: Impact) -> f64 {
    match impact {
        Impact::High => 0.56,
        Impact::Low => 0.22,
        Impact::None => 0.0,
    }
}

fn av_weight(av: AttackVector) -> f64 {
    match av {
        AttackVector::Network => 0.85,
        AttackVector::Adjacent => 0.62,
        AttackVector::Local => 0.55,
        AttackVector::Physical => 0.2,
    }
}

fn ac_weight(ac: AttackComplexity) -> f64 {
    match ac {
        AttackComplexity::Low => 0.77,
        AttackComplexity::High => 0.44,
    }
}

fn pr_weight(pr: PrivilegesRequired, scope: Scope) -> f64 {
    match (pr, scope) {
        (PrivilegesRequired::None, _) => 0.85,
        (PrivilegesRequired::Low, Scope::Unchanged) => 0.62,
        (PrivilegesRequired::Low, Scope::Changed) => 0.68,
        (PrivilegesRequired::High, Scope::Unchanged) => 0.27,
        (PrivilegesRequired::High, Scope::Changed) => 0.5,
    }
}

fn ui_weight(ui: UserInteraction) -> f64 {
    match ui {
        UserInteraction::None => 0.85,
        UserInteraction::Required => 0.62,
    }
}

impl FromStr for CvssV3 {
    type Err = CvssParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: &str| CvssParseError::new(s, reason);
        let mut parts = s.split('/');
        match parts.next() {
            Some("CVSS:3.0") | Some("CVSS:3.1") => {}
            _ => return Err(err("missing CVSS:3.x prefix")),
        }
        let mut av = None;
        let mut ac = None;
        let mut pr = None;
        let mut ui = None;
        let mut scope = None;
        let mut c = None;
        let mut i = None;
        let mut a = None;
        let mut e = ExploitMaturity::NotDefined;
        let mut rl = RemediationLevel::NotDefined;
        let mut rc = ReportConfidence::NotDefined;
        for part in parts {
            let Some((metric, value)) = part.split_once(':') else {
                return Err(err("metric missing `:`"));
            };
            match metric {
                "AV" => {
                    av = Some(match value {
                        "N" => AttackVector::Network,
                        "A" => AttackVector::Adjacent,
                        "L" => AttackVector::Local,
                        "P" => AttackVector::Physical,
                        _ => return Err(err("bad AV value")),
                    })
                }
                "AC" => {
                    ac = Some(match value {
                        "L" => AttackComplexity::Low,
                        "H" => AttackComplexity::High,
                        _ => return Err(err("bad AC value")),
                    })
                }
                "PR" => {
                    pr = Some(match value {
                        "N" => PrivilegesRequired::None,
                        "L" => PrivilegesRequired::Low,
                        "H" => PrivilegesRequired::High,
                        _ => return Err(err("bad PR value")),
                    })
                }
                "UI" => {
                    ui = Some(match value {
                        "N" => UserInteraction::None,
                        "R" => UserInteraction::Required,
                        _ => return Err(err("bad UI value")),
                    })
                }
                "S" => {
                    scope = Some(match value {
                        "U" => Scope::Unchanged,
                        "C" => Scope::Changed,
                        _ => return Err(err("bad S value")),
                    })
                }
                "C" | "I" | "A" => {
                    let impact = match value {
                        "N" => Impact::None,
                        "L" => Impact::Low,
                        "H" => Impact::High,
                        _ => return Err(err("bad impact value")),
                    };
                    match metric {
                        "C" => c = Some(impact),
                        "I" => i = Some(impact),
                        _ => a = Some(impact),
                    }
                }
                "E" => {
                    e = match value {
                        "X" => ExploitMaturity::NotDefined,
                        "U" => ExploitMaturity::Unproven,
                        "P" => ExploitMaturity::ProofOfConcept,
                        "F" => ExploitMaturity::Functional,
                        "H" => ExploitMaturity::High,
                        _ => return Err(err("bad E value")),
                    }
                }
                "RL" => {
                    rl = match value {
                        "X" => RemediationLevel::NotDefined,
                        "O" => RemediationLevel::OfficialFix,
                        "T" => RemediationLevel::TemporaryFix,
                        "W" => RemediationLevel::Workaround,
                        "U" => RemediationLevel::Unavailable,
                        _ => return Err(err("bad RL value")),
                    }
                }
                "RC" => {
                    rc = match value {
                        "X" => ReportConfidence::NotDefined,
                        "U" => ReportConfidence::Unknown,
                        "R" => ReportConfidence::Reasonable,
                        "C" => ReportConfidence::Confirmed,
                        _ => return Err(err("bad RC value")),
                    }
                }
                _ => return Err(err("unknown metric")),
            }
        }
        Ok(CvssV3 {
            attack_vector: av.ok_or_else(|| err("missing AV"))?,
            attack_complexity: ac.ok_or_else(|| err("missing AC"))?,
            privileges_required: pr.ok_or_else(|| err("missing PR"))?,
            user_interaction: ui.ok_or_else(|| err("missing UI"))?,
            scope: scope.ok_or_else(|| err("missing S"))?,
            confidentiality: c.ok_or_else(|| err("missing C"))?,
            integrity: i.ok_or_else(|| err("missing I"))?,
            availability: a.ok_or_else(|| err("missing A"))?,
            exploit_maturity: e,
            remediation_level: rl,
            report_confidence: rc,
        })
    }
}

impl fmt::Display for CvssV3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CVSS:3.0/AV:{}/AC:{}/PR:{}/UI:{}/S:{}/C:{}/I:{}/A:{}",
            match self.attack_vector {
                AttackVector::Network => "N",
                AttackVector::Adjacent => "A",
                AttackVector::Local => "L",
                AttackVector::Physical => "P",
            },
            match self.attack_complexity {
                AttackComplexity::Low => "L",
                AttackComplexity::High => "H",
            },
            match self.privileges_required {
                PrivilegesRequired::None => "N",
                PrivilegesRequired::Low => "L",
                PrivilegesRequired::High => "H",
            },
            match self.user_interaction {
                UserInteraction::None => "N",
                UserInteraction::Required => "R",
            },
            match self.scope {
                Scope::Unchanged => "U",
                Scope::Changed => "C",
            },
            impact_letter(self.confidentiality),
            impact_letter(self.integrity),
            impact_letter(self.availability),
        )?;
        if self.exploit_maturity != ExploitMaturity::NotDefined {
            write!(
                f,
                "/E:{}",
                match self.exploit_maturity {
                    ExploitMaturity::NotDefined => "X",
                    ExploitMaturity::Unproven => "U",
                    ExploitMaturity::ProofOfConcept => "P",
                    ExploitMaturity::Functional => "F",
                    ExploitMaturity::High => "H",
                }
            )?;
        }
        if self.remediation_level != RemediationLevel::NotDefined {
            write!(
                f,
                "/RL:{}",
                match self.remediation_level {
                    RemediationLevel::NotDefined => "X",
                    RemediationLevel::OfficialFix => "O",
                    RemediationLevel::TemporaryFix => "T",
                    RemediationLevel::Workaround => "W",
                    RemediationLevel::Unavailable => "U",
                }
            )?;
        }
        if self.report_confidence != ReportConfidence::NotDefined {
            write!(
                f,
                "/RC:{}",
                match self.report_confidence {
                    ReportConfidence::NotDefined => "X",
                    ReportConfidence::Unknown => "U",
                    ReportConfidence::Reasonable => "R",
                    ReportConfidence::Confirmed => "C",
                }
            )?;
        }
        Ok(())
    }
}

fn impact_letter(impact: Impact) -> &'static str {
    match impact {
        Impact::None => "N",
        Impact::Low => "L",
        Impact::High => "H",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(vector: &str) -> f64 {
        vector.parse::<CvssV3>().unwrap().base_score()
    }

    #[test]
    fn known_scores_from_nvd() {
        // CVE-2017-9805 (the paper's use case).
        assert_eq!(score("CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H"), 8.1);
        // CVE-2021-44228 (log4shell).
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H"), 10.0);
        // CVE-2014-0160 (heartbleed).
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N"), 7.5);
        // A classic 9.8.
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"), 9.8);
        // Low-severity local vector: impact 6.42×0.22 = 1.4124,
        // exploitability 8.22×0.55×0.44×0.27×0.62 = 0.333, sum 1.745 → 1.8.
        assert_eq!(score("CVSS:3.0/AV:L/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N"), 1.8);
        // Scope-changed XSS-style vector.
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:L/UI:R/S:C/C:L/I:L/A:N"), 5.4);
    }

    #[test]
    fn zero_impact_is_zero() {
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N"), 0.0);
        assert_eq!(score("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:N/I:N/A:N"), 0.0);
    }

    #[test]
    fn severity_bands() {
        let v: CvssV3 = "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H"
            .parse()
            .unwrap();
        assert_eq!(v.severity(), Severity::High);
        assert_eq!(Severity::from_score(3.9), Severity::Low);
        assert_eq!(Severity::from_score(4.0), Severity::Medium);
        assert_eq!(Severity::from_score(6.9), Severity::Medium);
        assert_eq!(Severity::from_score(7.0), Severity::High);
        assert_eq!(Severity::from_score(8.9), Severity::High);
        assert_eq!(Severity::from_score(9.0), Severity::Critical);
    }

    #[test]
    fn temporal_score_reduces_base() {
        let v: CvssV3 = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/E:U/RL:O/RC:U"
            .parse()
            .unwrap();
        assert!(v.temporal_score() < v.base_score());
        // All Not Defined → temporal == base.
        let plain: CvssV3 = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
            .parse()
            .unwrap();
        assert_eq!(plain.temporal_score(), plain.base_score());
    }

    #[test]
    fn display_roundtrip() {
        for vector in [
            "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
            "CVSS:3.0/AV:L/AC:L/PR:L/UI:R/S:C/C:L/I:L/A:L",
            "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/E:F/RL:W/RC:R",
        ] {
            let parsed: CvssV3 = vector.parse().unwrap();
            assert_eq!(parsed.to_string(), vector);
            let reparsed: CvssV3 = parsed.to_string().parse().unwrap();
            assert_eq!(reparsed, parsed);
        }
    }

    #[test]
    fn accepts_v31_prefix() {
        assert!("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
            .parse::<CvssV3>()
            .is_ok());
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
            "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H", // missing A
            "CVSS:3.0/AV:Z/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", // bad AV
            "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/QQ:Z", // unknown metric
            "CVSS:3.0/AVN",                             // missing colon
        ] {
            assert!(bad.parse::<CvssV3>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn roundup_behaviour() {
        assert_eq!(roundup(4.02), 4.1);
        assert_eq!(roundup(4.0), 4.0);
        assert_eq!(roundup(0.0), 0.0);
    }

    #[test]
    fn all_vectors_stay_in_range() {
        // Exhaustive sweep of base-metric combinations.
        use AttackComplexity as AC;
        use AttackVector as AV;
        use PrivilegesRequired as PR;
        use UserInteraction as UI;
        for av in [AV::Network, AV::Adjacent, AV::Local, AV::Physical] {
            for ac in [AC::Low, AC::High] {
                for pr in [PR::None, PR::Low, PR::High] {
                    for ui in [UI::None, UI::Required] {
                        for s in [Scope::Unchanged, Scope::Changed] {
                            for c in [Impact::None, Impact::Low, Impact::High] {
                                for i in [Impact::None, Impact::Low, Impact::High] {
                                    for a in [Impact::None, Impact::Low, Impact::High] {
                                        let v = CvssV3 {
                                            attack_vector: av,
                                            attack_complexity: ac,
                                            privileges_required: pr,
                                            user_interaction: ui,
                                            scope: s,
                                            confidentiality: c,
                                            integrity: i,
                                            availability: a,
                                            exploit_maturity: ExploitMaturity::NotDefined,
                                            remediation_level: RemediationLevel::NotDefined,
                                            report_confidence: ReportConfidence::NotDefined,
                                        };
                                        let score = v.base_score();
                                        assert!((0.0..=10.0).contains(&score), "{v} → {score}");
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod environmental_tests {
    use super::*;

    fn rce() -> CvssV3 {
        "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H"
            .parse()
            .unwrap()
    }

    #[test]
    fn default_requirements_reproduce_the_base_score() {
        let v = rce();
        assert_eq!(
            v.environmental_score(SecurityRequirements::default()),
            v.base_score()
        );
    }

    #[test]
    fn high_requirements_raise_the_score() {
        let v = rce();
        let high = SecurityRequirements {
            confidentiality: Requirement::High,
            integrity: Requirement::High,
            availability: Requirement::High,
        };
        // Impact saturates at the 0.915 cap, so "high everything" cannot
        // lower it and typically raises it.
        assert!(v.environmental_score(high) >= v.base_score());
    }

    #[test]
    fn low_requirements_lower_the_score() {
        let v = rce();
        let low = SecurityRequirements {
            confidentiality: Requirement::Low,
            integrity: Requirement::Low,
            availability: Requirement::Low,
        };
        assert!(v.environmental_score(low) < v.base_score());
    }

    #[test]
    fn environmental_stays_in_range() {
        let low = SecurityRequirements {
            confidentiality: Requirement::Low,
            integrity: Requirement::Low,
            availability: Requirement::Low,
        };
        let high = SecurityRequirements {
            confidentiality: Requirement::High,
            integrity: Requirement::High,
            availability: Requirement::High,
        };
        for vector in [
            "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H",
            "CVSS:3.0/AV:L/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N",
            "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N",
        ] {
            let v: CvssV3 = vector.parse().unwrap();
            for req in [SecurityRequirements::default(), low, high] {
                let score = v.environmental_score(req);
                assert!((0.0..=10.0).contains(&score), "{vector} → {score}");
            }
        }
    }

    #[test]
    fn zero_impact_stays_zero() {
        let v: CvssV3 = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N"
            .parse()
            .unwrap();
        let high = SecurityRequirements {
            confidentiality: Requirement::High,
            integrity: Requirement::High,
            availability: Requirement::High,
        };
        assert_eq!(v.environmental_score(high), 0.0);
    }
}
