//! CVSS v2 base vectors, kept for feeds that still publish v2 scores.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::CvssParseError;

/// Access Vector (AV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AccessVector {
    Local,
    AdjacentNetwork,
    Network,
}

/// Access Complexity (AC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AccessComplexity {
    High,
    Medium,
    Low,
}

/// Authentication (Au).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Authentication {
    Multiple,
    Single,
    None,
}

/// Impact on C/I/A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ImpactV2 {
    None,
    Partial,
    Complete,
}

/// A CVSS v2 base vector.
///
/// # Examples
///
/// ```
/// use cais_cvss::v2::CvssV2;
///
/// // CVE-2014-0160 (heartbleed) scored 5.0 under CVSS v2.
/// let v: CvssV2 = "AV:N/AC:L/Au:N/C:P/I:N/A:N".parse()?;
/// assert_eq!(v.base_score(), 5.0);
/// # Ok::<(), cais_cvss::CvssParseError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CvssV2 {
    /// Access Vector.
    pub access_vector: AccessVector,
    /// Access Complexity.
    pub access_complexity: AccessComplexity,
    /// Authentication.
    pub authentication: Authentication,
    /// Confidentiality impact.
    pub confidentiality: ImpactV2,
    /// Integrity impact.
    pub integrity: ImpactV2,
    /// Availability impact.
    pub availability: ImpactV2,
}

impl CvssV2 {
    /// Computes the CVSS v2 base score.
    pub fn base_score(&self) -> f64 {
        let impact = 10.41
            * (1.0
                - (1.0 - impact_weight(self.confidentiality))
                    * (1.0 - impact_weight(self.integrity))
                    * (1.0 - impact_weight(self.availability)));
        let exploitability =
            20.0 * match self.access_vector {
                AccessVector::Local => 0.395,
                AccessVector::AdjacentNetwork => 0.646,
                AccessVector::Network => 1.0,
            } * match self.access_complexity {
                AccessComplexity::High => 0.35,
                AccessComplexity::Medium => 0.61,
                AccessComplexity::Low => 0.71,
            } * match self.authentication {
                Authentication::Multiple => 0.45,
                Authentication::Single => 0.56,
                Authentication::None => 0.704,
            };
        let f_impact = if impact == 0.0 { 0.0 } else { 1.176 };
        let raw = (0.6 * impact + 0.4 * exploitability - 1.5) * f_impact;
        (raw * 10.0).round() / 10.0
    }
}

fn impact_weight(impact: ImpactV2) -> f64 {
    match impact {
        ImpactV2::None => 0.0,
        ImpactV2::Partial => 0.275,
        ImpactV2::Complete => 0.660,
    }
}

impl FromStr for CvssV2 {
    type Err = CvssParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: &str| CvssParseError::new(s, reason);
        let body = s.strip_prefix("CVSS:2.0/").unwrap_or(s);
        let mut av = None;
        let mut ac = None;
        let mut au = None;
        let mut c = None;
        let mut i = None;
        let mut a = None;
        for part in body.split('/') {
            let Some((metric, value)) = part.split_once(':') else {
                return Err(err("metric missing `:`"));
            };
            match metric {
                "AV" => {
                    av = Some(match value {
                        "L" => AccessVector::Local,
                        "A" => AccessVector::AdjacentNetwork,
                        "N" => AccessVector::Network,
                        _ => return Err(err("bad AV value")),
                    })
                }
                "AC" => {
                    ac = Some(match value {
                        "H" => AccessComplexity::High,
                        "M" => AccessComplexity::Medium,
                        "L" => AccessComplexity::Low,
                        _ => return Err(err("bad AC value")),
                    })
                }
                "Au" => {
                    au = Some(match value {
                        "M" => Authentication::Multiple,
                        "S" => Authentication::Single,
                        "N" => Authentication::None,
                        _ => return Err(err("bad Au value")),
                    })
                }
                "C" | "I" | "A" => {
                    let impact = match value {
                        "N" => ImpactV2::None,
                        "P" => ImpactV2::Partial,
                        "C" => ImpactV2::Complete,
                        _ => return Err(err("bad impact value")),
                    };
                    match metric {
                        "C" => c = Some(impact),
                        "I" => i = Some(impact),
                        _ => a = Some(impact),
                    }
                }
                _ => return Err(err("unknown metric")),
            }
        }
        Ok(CvssV2 {
            access_vector: av.ok_or_else(|| err("missing AV"))?,
            access_complexity: ac.ok_or_else(|| err("missing AC"))?,
            authentication: au.ok_or_else(|| err("missing Au"))?,
            confidentiality: c.ok_or_else(|| err("missing C"))?,
            integrity: i.ok_or_else(|| err("missing I"))?,
            availability: a.ok_or_else(|| err("missing A"))?,
        })
    }
}

impl fmt::Display for CvssV2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AV:{}/AC:{}/Au:{}/C:{}/I:{}/A:{}",
            match self.access_vector {
                AccessVector::Local => "L",
                AccessVector::AdjacentNetwork => "A",
                AccessVector::Network => "N",
            },
            match self.access_complexity {
                AccessComplexity::High => "H",
                AccessComplexity::Medium => "M",
                AccessComplexity::Low => "L",
            },
            match self.authentication {
                Authentication::Multiple => "M",
                Authentication::Single => "S",
                Authentication::None => "N",
            },
            impact_letter(self.confidentiality),
            impact_letter(self.integrity),
            impact_letter(self.availability),
        )
    }
}

fn impact_letter(impact: ImpactV2) -> &'static str {
    match impact {
        ImpactV2::None => "N",
        ImpactV2::Partial => "P",
        ImpactV2::Complete => "C",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(vector: &str) -> f64 {
        vector.parse::<CvssV2>().unwrap().base_score()
    }

    #[test]
    fn known_v2_scores() {
        assert_eq!(score("AV:N/AC:L/Au:N/C:P/I:N/A:N"), 5.0); // heartbleed
        assert_eq!(score("AV:N/AC:L/Au:N/C:C/I:C/A:C"), 10.0);
        assert_eq!(score("AV:L/AC:H/Au:N/C:N/I:N/A:N"), 0.0);
        assert_eq!(score("AV:N/AC:M/Au:N/C:P/I:P/A:P"), 6.8);
    }

    #[test]
    fn accepts_optional_prefix() {
        assert_eq!(score("CVSS:2.0/AV:N/AC:L/Au:N/C:P/I:N/A:N"), 5.0);
    }

    #[test]
    fn display_roundtrip() {
        let v: CvssV2 = "AV:N/AC:M/Au:S/C:P/I:C/A:N".parse().unwrap();
        let back: CvssV2 = v.to_string().parse().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors() {
        for bad in ["", "AV:N", "AV:N/AC:L/Au:N/C:P/I:N/A:Z", "nonsense"] {
            assert!(bad.parse::<CvssV2>().is_err(), "{bad:?}");
        }
    }
}
