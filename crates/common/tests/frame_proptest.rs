//! Property tests for the length-prefixed wire framing, focused on the
//! invariants the multiplexed serving core leans on:
//!
//! - tagged/untagged round-trips are lossless for any payload and any
//!   trace header, including headers whose ids sit on `u64` bit
//!   boundaries;
//! - the `TRACE_FLAG` high bit never collides with a legal length, so a
//!   length word near the flag boundary either round-trips or fails
//!   loudly — it can never desync a reader;
//! - a stream of interleaved tagged and untagged frames (a
//!   mixed-version federation on one socket) reads back frame-for-frame
//!   with the right headers.

use std::io::Cursor;

use cais_common::frame::{
    read_frame, read_frame_traced, write_frame, write_frame_traced, TraceHeader, MAX_FRAME,
    TRACE_FLAG, TRACE_HEADER_LEN,
};
use proptest::prelude::*;

/// Trace ids that stress the encoding: boundary values around every
/// byte/bit edge plus arbitrary u64s.
fn edge_u64() -> impl Strategy<Value = u64> {
    (0u8..8, any::<u64>()).prop_map(|(pick, random)| match pick {
        0 => 0,
        1 => 1,
        2 => u64::from(u32::MAX),
        3 => u64::from(u32::MAX) + 1,
        4 => u64::from(TRACE_FLAG),
        5 => 1u64 << 63,
        6 => u64::MAX,
        _ => random,
    })
}

proptest! {
    #[test]
    fn tagged_roundtrip_is_lossless(
        trace_id in edge_u64(),
        span_id in edge_u64(),
        payload in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let header = TraceHeader { trace_id, span_id };
        let mut buf = Vec::new();
        write_frame_traced(&mut buf, Some(header), &payload).unwrap();
        prop_assert_eq!(buf.len(), 4 + TRACE_HEADER_LEN + payload.len());
        let (read_header, read_payload) =
            read_frame_traced(&mut Cursor::new(buf)).unwrap();
        prop_assert_eq!(read_header, Some(header));
        prop_assert_eq!(read_payload, payload);
    }

    #[test]
    fn untagged_roundtrip_is_lossless(
        payload in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut buf = Vec::new();
        write_frame_traced(&mut buf, None, &payload).unwrap();
        // The untagged encoder stays byte-identical to the legacy one,
        // so pre-trace peers keep interoperating.
        let mut legacy = Vec::new();
        write_frame(&mut legacy, &payload).unwrap();
        prop_assert_eq!(&buf, &legacy);
        let (header, read_payload) =
            read_frame_traced(&mut Cursor::new(buf)).unwrap();
        prop_assert_eq!(header, None);
        prop_assert_eq!(read_payload, payload);
    }

    /// Length words straddling the `TRACE_FLAG` boundary: every word is
    /// either a valid frame both readers agree on, or an error — never
    /// a silent desync. The interesting region is lengths near
    /// `MAX_FRAME` (just below/above the cap) crossed with the flag
    /// bit, where a buggy mask could read the flag as length bits.
    #[test]
    fn length_words_near_the_flag_boundary_never_desync(
        below_cap in 0u32..=8,
        above_cap in 0u32..=8,
        flagged in any::<bool>(),
        use_cap_side in any::<bool>(),
    ) {
        let length = if use_cap_side {
            MAX_FRAME - below_cap
        } else {
            MAX_FRAME + 1 + above_cap
        };
        let word = if flagged { length | TRACE_FLAG } else { length };
        // A header-sized body is plenty: oversize detection must fire
        // on the length word alone, before any payload is read.
        let mut buf = word.to_be_bytes().to_vec();
        buf.extend_from_slice(&[0u8; TRACE_HEADER_LEN]);
        let result = read_frame_traced(&mut Cursor::new(&buf));
        if length > MAX_FRAME {
            prop_assert!(result.is_err(), "length {length} past cap must error");
        } else {
            // In-cap length, truncated body: must error (EOF), never
            // hand back a short payload. (Untagged, the 16 header
            // bytes count as payload; tagged, they are consumed as the
            // header and the payload is missing entirely.)
            if length as usize > buf.len() - 4 {
                prop_assert!(result.is_err(), "truncated frame must error");
            }
        }
        // The legacy reader must reject every flagged word outright:
        // flag | length always exceeds the cap from its point of view.
        if flagged {
            prop_assert!(read_frame(&mut Cursor::new(&buf)).is_err());
        }
    }

    /// A single stream interleaving tagged and untagged frames — the
    /// mixed-version federation case — reads back frame-for-frame.
    #[test]
    fn mixed_tagged_untagged_streams_read_back_in_order(
        frames in prop::collection::vec(
            (
                any::<bool>(),
                edge_u64(),
                edge_u64(),
                prop::collection::vec(any::<u8>(), 0..256),
            ),
            1..16,
        ),
    ) {
        let expected_header = |tagged: bool, trace_id: u64, span_id: u64| {
            tagged.then_some(TraceHeader { trace_id, span_id })
        };
        let mut buf = Vec::new();
        for (tagged, trace_id, span_id, payload) in &frames {
            let header = expected_header(*tagged, *trace_id, *span_id);
            write_frame_traced(&mut buf, header, payload).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for (tagged, trace_id, span_id, payload) in &frames {
            let (header, read_payload) = read_frame_traced(&mut cursor).unwrap();
            prop_assert_eq!(header, expected_header(*tagged, *trace_id, *span_id));
            prop_assert_eq!(&read_payload, payload);
        }
        // Stream fully consumed: no stray bytes between frames.
        let remaining = cursor.get_ref().len() as u64 - cursor.position();
        prop_assert_eq!(remaining, 0);
    }
}
