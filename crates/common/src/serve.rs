//! The multiplexed serving core shared by every TCP front-end in the
//! workspace.
//!
//! The TAXII server, the telemetry scrape endpoint and the bus bridge
//! all speak the same length-prefixed framing ([`crate::frame`]), and
//! since PR 5 a warm response is usually a cached `Arc` memcpy — which
//! made their historical thread-per-connection accept loops the
//! serving bottleneck (ROADMAP open item 5). This module replaces the
//! three divergent loops with one **sharded-acceptor + bounded worker
//! pool** core:
//!
//! - One acceptor thread accepts on a nonblocking listener, applies a
//!   max-connection guard, and deals connections round-robin to a
//!   fixed pool of sweep workers. Transient `accept()` failures (e.g.
//!   `EMFILE` under fd pressure) are counted and ridden out with
//!   exponential backoff instead of ending the loop.
//! - Each worker owns a shard of nonblocking connections and sweeps
//!   them: buffered reads are parsed into complete frames by a
//!   per-connection state machine (length word, optional
//!   [`TraceHeader`], payload), handed to the [`FrameService`], and
//!   the replies queued on a bounded outbound queue that is flushed
//!   with nonblocking writes. A sweep that makes no progress parks
//!   with escalating backoff, so idle shards cost almost no CPU.
//! - Backpressure: when a connection's outbound queue exceeds
//!   [`ServeConfig::max_outbound_bytes`], the service's push hook
//!   ([`FrameService::poll`]) is skipped until the peer drains — a
//!   slow consumer throttles itself, not the process.
//! - Idle and stalled-read timeouts close abandoned connections, and
//!   [`ServeHandle::shutdown`] drains pending writes before joining
//!   every thread (graceful shutdown).
//!
//! The core is deliberately `std`-only (no `epoll` binding exists in
//! the offline vendor set, and this crate forbids `unsafe`), so
//! "readiness" is discovered by the nonblocking sweep itself: a full
//! pass over 10k mostly-idle connections is ~10k cheap `EWOULDBLOCK`
//! reads, well under the park cadence. Metrics flow through the
//! [`ServeMetrics`] trait so the core stays independent of
//! `cais-telemetry` (which sits above this crate); `cais-telemetry`
//! provides the `Registry`-backed implementation that surfaces the
//! `serve_*` counter/gauge/histogram family.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::frame::{TraceHeader, MAX_FRAME, TRACE_FLAG, TRACE_HEADER_LEN};

/// Tuning for the serving core. The defaults suit the workspace's
/// request/response protocols; push-style services (the bus bridge)
/// mostly care about [`ServeConfig::max_outbound_bytes`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Sweep worker threads. Defaults to the available parallelism
    /// clamped to `[1, 4]` — sweeps are syscall-bound, so more workers
    /// than cores only adds context switching.
    pub workers: usize,
    /// Hard cap on concurrently served connections; connections
    /// accepted beyond it are closed immediately (and counted as
    /// rejected).
    pub max_connections: usize,
    /// Close a connection with no inbound bytes, no queued output and
    /// no partial frame for this long. `None` disables the idle reaper.
    pub idle_timeout: Option<Duration>,
    /// Close a connection whose *partial* frame has made no progress
    /// for this long — a stalled or byte-trickling peer cannot pin a
    /// worker slot forever. `None` disables the stall reaper.
    pub read_timeout: Option<Duration>,
    /// Outbound-queue bound per connection, in bytes. While a
    /// connection's queue exceeds this, [`FrameService::poll`] is not
    /// invoked for it (backpressure on push traffic); request/response
    /// replies are still queued, since the peer produces at most one
    /// request per pending reply.
    pub max_outbound_bytes: usize,
    /// Longest a worker parks between sweeps when nothing progresses;
    /// the park escalates from ~50µs up to this bound.
    pub max_park: Duration,
    /// During [`ServeHandle::shutdown`], how long workers keep
    /// flushing pending writes before abandoning unflushed
    /// connections.
    pub shutdown_grace: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
        ServeConfig {
            workers: cores.clamp(1, 4),
            max_connections: 16_384,
            idle_timeout: Some(Duration::from_secs(120)),
            read_timeout: Some(Duration::from_secs(30)),
            max_outbound_bytes: 4 * 1024 * 1024,
            max_park: Duration::from_millis(2),
            shutdown_grace: Duration::from_secs(1),
        }
    }
}

/// Observability hooks the core fires as it serves. Every method has a
/// no-op default, so implementors pick what they surface;
/// `cais-telemetry` provides the `Registry`-backed implementation
/// behind the `serve_*` metric family.
pub trait ServeMetrics: Send + Sync + 'static {
    /// A connection was accepted (before the capacity guard).
    fn accepted(&self) {}
    /// `accept()` failed transiently (e.g. `EMFILE`); the acceptor
    /// backs off and continues.
    fn accept_error(&self) {}
    /// An accepted connection was closed immediately because the
    /// server is at [`ServeConfig::max_connections`].
    fn rejected(&self) {}
    /// A connection was closed (any reason, including timeouts).
    fn closed(&self) {}
    /// A connection was closed by the idle or stalled-read reaper.
    fn timed_out(&self) {}
    /// Current live-connection count, sampled once per sweep.
    fn connections(&self, _live: i64) {}
    /// Total queued-but-unwritten outbound bytes, sampled once per
    /// sweep.
    fn queue_depth(&self, _bytes: i64) {}
    /// A complete inbound frame was parsed.
    fn frame_in(&self) {}
    /// An outbound frame was fully written.
    fn frame_out(&self) {}
    /// Wall time from a request frame's arrival to its reply being
    /// fully written to the socket.
    fn request_nanos(&self, _nanos: u64) {}
}

/// The do-nothing [`ServeMetrics`] implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoServeMetrics;

impl ServeMetrics for NoServeMetrics {}

/// One outbound frame payload. `Shared` lets cached responses (the
/// PR 5 `Arc`-held page bytes) be queued without copying.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A payload owned by this reply.
    Owned(Vec<u8>),
    /// A shared (typically cached) payload.
    Shared(Arc<Vec<u8>>),
}

impl Payload {
    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Owned(bytes) => bytes,
            Payload::Shared(bytes) => bytes,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the payload is empty (a keepalive/ack frame).
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

/// The frames a service wants written to the current connection, plus
/// an optional close-after-flush request. Reused across calls by the
/// worker, so services just push.
#[derive(Debug, Default)]
pub struct Outbox {
    items: Vec<(Option<TraceHeader>, Payload)>,
    close: bool,
}

impl Outbox {
    /// Queues an owned payload as one untagged frame.
    pub fn push_owned(&mut self, bytes: Vec<u8>) {
        self.items.push((None, Payload::Owned(bytes)));
    }

    /// Queues a shared payload as one untagged frame, without copying.
    pub fn push_shared(&mut self, bytes: Arc<Vec<u8>>) {
        self.items.push((None, Payload::Shared(bytes)));
    }

    /// Queues an owned payload, tagged with a [`TraceHeader`] when one
    /// is given (the `TRACE_FLAG` wire path). With `None` this is
    /// [`Outbox::push_owned`].
    pub fn push_owned_traced(&mut self, header: Option<TraceHeader>, bytes: Vec<u8>) {
        self.items.push((header, Payload::Owned(bytes)));
    }

    /// Queues a shared payload, tagged with a [`TraceHeader`] when one
    /// is given, without copying the payload.
    pub fn push_shared_traced(&mut self, header: Option<TraceHeader>, bytes: Arc<Vec<u8>>) {
        self.items.push((header, Payload::Shared(bytes)));
    }

    /// Requests the connection be closed once queued frames flush.
    pub fn close(&mut self) {
        self.close = true;
    }

    /// Frames queued so far in this call.
    pub fn queued(&self) -> usize {
        self.items.len()
    }
}

/// A protocol served by the core: per-connection state plus frame and
/// push hooks. Implementations must be cheap to call — they run on the
/// sweep workers.
pub trait FrameService: Send + Sync + 'static {
    /// Per-connection state (the protocol's state machine).
    type Conn: Send + 'static;

    /// Called once when a connection is adopted by a worker.
    fn on_connect(&self, peer: SocketAddr) -> Self::Conn;

    /// Called for every complete inbound frame. Replies pushed to
    /// `out` are written back in order; the reply completing this
    /// request is the *last* one pushed, and its full write latency is
    /// recorded as the request→response time.
    fn on_frame(
        &self,
        conn: &mut Self::Conn,
        header: Option<TraceHeader>,
        payload: Vec<u8>,
        out: &mut Outbox,
    );

    /// Called once per sweep for push-style traffic (the bus bridge's
    /// subscription fan-out, keepalives). Skipped while the
    /// connection's outbound queue exceeds the backpressure bound.
    fn poll(&self, _conn: &mut Self::Conn, _now: Instant, _out: &mut Outbox) {}

    /// Called when the connection is closed for any reason.
    fn on_disconnect(&self, _conn: &mut Self::Conn) {}
}

#[derive(Debug, Default)]
struct StatsInner {
    accepted: AtomicU64,
    accept_errors: AtomicU64,
    rejected: AtomicU64,
    closed: AtomicU64,
    timeouts: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    live: AtomicI64,
    queued_bytes: AtomicI64,
}

/// A point-in-time snapshot of the core's counters, for tests and the
/// load-generation harness (drop detection: every request frame must
/// produce a reply frame).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted (including later-rejected ones).
    pub accepted: u64,
    /// Transient `accept()` errors ridden out with backoff.
    pub accept_errors: u64,
    /// Connections closed at the capacity guard.
    pub rejected: u64,
    /// Connections closed, any reason.
    pub closed: u64,
    /// Connections closed by the idle/stalled-read reapers.
    pub timeouts: u64,
    /// Complete frames parsed.
    pub frames_in: u64,
    /// Frames fully written.
    pub frames_out: u64,
    /// Payload + framing bytes read.
    pub bytes_in: u64,
    /// Payload + framing bytes written.
    pub bytes_out: u64,
    /// Currently live connections.
    pub live: i64,
    /// Currently queued outbound bytes across all connections.
    pub queued_bytes: i64,
}

struct Shared<S: FrameService, M: ServeMetrics> {
    service: S,
    metrics: M,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
    stats: StatsInner,
}

type Inbox = Arc<Mutex<Vec<(TcpStream, SocketAddr)>>>;

/// A handle to a running server: its bound address, live counters and
/// graceful shutdown. Dropping the handle *without* calling
/// [`ServeHandle::shutdown`] leaves the server running detached for
/// the life of the process (the legacy accept-loop behaviour).
pub struct ServeHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<dyn Fn() -> ServeStats + Send + Sync>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl ServeHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the core's counters.
    pub fn stats(&self) -> ServeStats {
        (self.stats)()
    }

    /// Graceful shutdown: stops accepting, lets workers flush pending
    /// writes (bounded by [`ServeConfig::shutdown_grace`]), closes
    /// every connection and joins all threads. Returns the final
    /// counter snapshot.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown.store(true, Ordering::Release);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        (self.stats)()
    }
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Binds `addr` and serves `service` on the multiplexed core.
///
/// # Errors
///
/// Returns the bind error when the address is unavailable.
pub fn serve<S: FrameService, M: ServeMetrics>(
    addr: &str,
    config: ServeConfig,
    service: S,
    metrics: M,
) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let workers = config.workers.max(1);
    let shutdown = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        service,
        metrics,
        config,
        shutdown: Arc::clone(&shutdown),
        stats: StatsInner::default(),
    });
    let inboxes: Vec<Inbox> = (0..workers).map(|_| Inbox::default()).collect();
    let mut threads = Vec::with_capacity(workers + 1);
    for (index, inbox) in inboxes.iter().enumerate() {
        let shared = Arc::clone(&shared);
        let inbox = Arc::clone(inbox);
        threads.push(
            thread::Builder::new()
                .name(format!("cais-serve-worker-{index}"))
                .spawn(move || Worker::new(shared, inbox).run())?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("cais-serve-accept".into())
                .spawn(move || acceptor_loop(listener, shared, inboxes))?,
        );
    }
    let stats_view = Arc::clone(&shared);
    Ok(ServeHandle {
        addr: local_addr,
        shutdown,
        stats: Arc::new(move || snapshot(&stats_view.stats)),
        threads,
    })
}

fn acceptor_loop<S: FrameService, M: ServeMetrics>(
    listener: TcpListener,
    shared: Arc<Shared<S, M>>,
    inboxes: Vec<Inbox>,
) {
    const ERROR_BACKOFF_FLOOR: Duration = Duration::from_millis(1);
    const ERROR_BACKOFF_CEIL: Duration = Duration::from_secs(1);
    const IDLE_PARK_FLOOR: Duration = Duration::from_micros(100);
    let idle_park_ceil = shared.config.max_park;
    let mut error_backoff = ERROR_BACKOFF_FLOOR;
    let mut idle_park = IDLE_PARK_FLOOR;
    let mut next = 0usize;
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, peer)) => {
                error_backoff = ERROR_BACKOFF_FLOOR;
                idle_park = IDLE_PARK_FLOOR;
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                shared.metrics.accepted();
                let live = shared.stats.live.load(Ordering::Relaxed);
                if live >= shared.config.max_connections as i64 {
                    // Capacity guard: close instead of serving. The
                    // peer sees a clean EOF rather than a hung socket.
                    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.rejected();
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.rejected();
                    continue;
                }
                let _ = stream.set_nodelay(true);
                shared.stats.live.fetch_add(1, Ordering::Relaxed);
                inboxes[next]
                    .lock()
                    .expect("serve inbox poisoned")
                    .push((stream, peer));
                next = (next + 1) % inboxes.len();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(idle_park);
                idle_park = (idle_park * 2).min(idle_park_ceil);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept failure — classically EMFILE when
                // the process runs out of descriptors. Back off and
                // keep accepting; ending the loop would silently kill
                // the endpoint for every future client.
                shared.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                shared.metrics.accept_error();
                thread::sleep(error_backoff);
                error_backoff = (error_backoff * 2).min(ERROR_BACKOFF_CEIL);
            }
        }
    }
}

struct WriteItem {
    /// The frame head: 4-byte length word, plus the 16 [`TraceHeader`]
    /// bytes when the reply is trace-tagged (`TRACE_FLAG` set in the
    /// word).
    head: [u8; 4 + TRACE_HEADER_LEN],
    head_len: usize,
    payload: Payload,
    /// Write progress over the logical `head ++ payload` buffer.
    pos: usize,
    /// When the request frame that produced this reply was parsed;
    /// completion records the request→response latency.
    started: Option<Instant>,
}

impl WriteItem {
    fn new(header: Option<TraceHeader>, payload: Payload, started: Option<Instant>) -> Self {
        let mut head = [0u8; 4 + TRACE_HEADER_LEN];
        let head_len = match header {
            Some(h) => {
                head[..4].copy_from_slice(&((payload.len() as u32) | TRACE_FLAG).to_be_bytes());
                head[4..].copy_from_slice(&h.to_bytes());
                4 + TRACE_HEADER_LEN
            }
            None => {
                head[..4].copy_from_slice(&(payload.len() as u32).to_be_bytes());
                4
            }
        };
        WriteItem {
            head,
            head_len,
            payload,
            pos: 0,
            started,
        }
    }

    fn total_len(&self) -> usize {
        self.head_len + self.payload.len()
    }
}

/// Floor/ceiling of the per-connection read-recheck backoff. Without
/// it every sweep pays one `read` syscall per adopted connection, so a
/// shard full of *waiting* peers makes the worker's sweep cost scale
/// with total connections rather than active ones. Backing off sockets
/// that keep returning `WouldBlock` bounds the idle-connection tax at
/// the cost of up to [`READ_BACKOFF_CEIL`] of added first-byte latency
/// on a quiet connection.
const READ_BACKOFF_FLOOR: Duration = Duration::from_micros(50);
const READ_BACKOFF_CEIL: Duration = Duration::from_millis(1);

struct Connection<C> {
    stream: TcpStream,
    state: C,
    /// Accumulated unparsed inbound bytes.
    buf: Vec<u8>,
    pending: VecDeque<WriteItem>,
    queued_bytes: usize,
    last_activity: Instant,
    /// Next instant the socket is worth a read syscall.
    next_read: Instant,
    /// Current read-recheck backoff window.
    read_backoff: Duration,
    /// Flush pending writes, then close.
    closing: bool,
    /// Close immediately (peer gone or protocol error).
    dead: bool,
    timed_out: bool,
}

struct Worker<S: FrameService, M: ServeMetrics> {
    shared: Arc<Shared<S, M>>,
    inbox: Inbox,
    conns: Vec<Connection<S::Conn>>,
    scratch: Vec<u8>,
    outbox: Outbox,
}

impl<S: FrameService, M: ServeMetrics> Worker<S, M> {
    fn new(shared: Arc<Shared<S, M>>, inbox: Inbox) -> Self {
        Worker {
            shared,
            inbox,
            conns: Vec::new(),
            scratch: vec![0u8; 64 * 1024],
            outbox: Outbox::default(),
        }
    }

    fn run(mut self) {
        const PARK_FLOOR: Duration = Duration::from_micros(50);
        let park_ceil = self.shared.config.max_park;
        let mut park = PARK_FLOOR;
        let mut shutdown_deadline: Option<Instant> = None;
        loop {
            let shutting = self.shared.shutdown.load(Ordering::Acquire);
            self.adopt(shutting);
            let now = Instant::now();
            let mut progress = false;
            for index in 0..self.conns.len() {
                progress |= self.sweep(index, now, shutting);
            }
            self.reap();
            self.shared
                .metrics
                .connections(self.shared.stats.live.load(Ordering::Relaxed));
            self.shared
                .metrics
                .queue_depth(self.shared.stats.queued_bytes.load(Ordering::Relaxed));
            if shutting {
                let deadline = *shutdown_deadline
                    .get_or_insert_with(|| now + self.shared.config.shutdown_grace);
                if self.conns.iter().all(|c| c.pending.is_empty()) || now >= deadline {
                    for conn in &mut self.conns {
                        conn.dead = true;
                    }
                    self.reap();
                    return;
                }
            }
            if progress {
                park = PARK_FLOOR;
            } else {
                thread::sleep(park);
                park = (park * 2).min(park_ceil);
            }
        }
    }

    /// Moves newly accepted connections from the inbox into this
    /// worker's shard.
    fn adopt(&mut self, shutting: bool) {
        let adopted: Vec<(TcpStream, SocketAddr)> = {
            let mut inbox = self.inbox.lock().expect("serve inbox poisoned");
            if inbox.is_empty() {
                return;
            }
            inbox.drain(..).collect()
        };
        for (stream, peer) in adopted {
            let state = self.shared.service.on_connect(peer);
            let now = Instant::now();
            self.conns.push(Connection {
                stream,
                state,
                buf: Vec::new(),
                pending: VecDeque::new(),
                queued_bytes: 0,
                last_activity: now,
                next_read: now,
                read_backoff: READ_BACKOFF_FLOOR,
                closing: shutting,
                dead: false,
                timed_out: false,
            });
        }
    }

    /// One pass over one connection: flush, read, parse, serve, poll,
    /// flush, reap timeouts. Returns whether any byte moved.
    fn sweep(&mut self, index: usize, now: Instant, shutting: bool) -> bool {
        let mut progress = false;
        progress |= self.flush(index, now);
        if !self.conns[index].closing && !self.conns[index].dead && !shutting {
            progress |= self.read_and_serve(index, now);
        }
        {
            let conn = &mut self.conns[index];
            if shutting {
                conn.closing = true;
            }
        }
        if !self.conns[index].closing
            && !self.conns[index].dead
            && self.conns[index].queued_bytes < self.shared.config.max_outbound_bytes
        {
            let conn = &mut self.conns[index];
            self.outbox.items.clear();
            self.outbox.close = false;
            self.shared
                .service
                .poll(&mut conn.state, now, &mut self.outbox);
            progress |= self.enqueue_outbox(index, None);
        }
        progress |= self.flush(index, now);
        let conn = &mut self.conns[index];
        if conn.closing && conn.pending.is_empty() {
            conn.dead = true;
        }
        if !conn.dead {
            if let Some(read_timeout) = self.shared.config.read_timeout {
                if !conn.buf.is_empty() && now.duration_since(conn.last_activity) > read_timeout {
                    conn.timed_out = true;
                    conn.dead = true;
                }
            }
        }
        if !conn.dead {
            if let Some(idle_timeout) = self.shared.config.idle_timeout {
                if conn.buf.is_empty()
                    && conn.pending.is_empty()
                    && now.duration_since(conn.last_activity) > idle_timeout
                {
                    conn.timed_out = true;
                    conn.dead = true;
                }
            }
        }
        progress
    }

    /// Nonblocking reads, frame parsing and service dispatch for one
    /// connection.
    fn read_and_serve(&mut self, index: usize, now: Instant) -> bool {
        if now < self.conns[index].next_read {
            return false;
        }
        let mut progress = false;
        // Bounded reads per sweep keep one firehose peer from starving
        // its shard-mates.
        for _ in 0..4 {
            let conn = &mut self.conns[index];
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&self.scratch[..n]);
                    conn.last_activity = now;
                    self.shared
                        .stats
                        .bytes_in
                        .fetch_add(n as u64, Ordering::Relaxed);
                    progress = true;
                    if n < self.scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        {
            let conn = &mut self.conns[index];
            if progress {
                conn.next_read = now;
                conn.read_backoff = READ_BACKOFF_FLOOR;
            } else {
                conn.next_read = now + conn.read_backoff;
                conn.read_backoff = (conn.read_backoff * 2).min(READ_BACKOFF_CEIL);
            }
        }
        if self.conns[index].dead {
            return progress;
        }
        // Parse every complete frame that arrived.
        loop {
            let (header, payload, consumed) = {
                let conn = &self.conns[index];
                match parse_frame(&conn.buf) {
                    Ok(Some(parsed)) => parsed,
                    Ok(None) => break,
                    Err(_) => {
                        // Oversized or corrupt length word: the stream
                        // cannot be resynchronised, drop the peer.
                        self.conns[index].dead = true;
                        return progress;
                    }
                }
            };
            let conn = &mut self.conns[index];
            conn.buf.drain(..consumed);
            self.shared.stats.frames_in.fetch_add(1, Ordering::Relaxed);
            self.shared.metrics.frame_in();
            let started = Instant::now();
            self.outbox.items.clear();
            self.outbox.close = false;
            self.shared
                .service
                .on_frame(&mut conn.state, header, payload, &mut self.outbox);
            self.enqueue_outbox(index, Some(started));
            progress = true;
            if self.conns[index].closing {
                break;
            }
        }
        progress
    }

    /// Moves the worker outbox into the connection's pending write
    /// queue; the last reply of a request carries `started` so its
    /// flush records the request→response latency.
    fn enqueue_outbox(&mut self, index: usize, started: Option<Instant>) -> bool {
        let conn = &mut self.conns[index];
        let count = self.outbox.items.len();
        for (i, (header, payload)) in self.outbox.items.drain(..).enumerate() {
            let item = WriteItem::new(header, payload, if i + 1 == count { started } else { None });
            conn.queued_bytes += item.total_len();
            self.shared
                .stats
                .queued_bytes
                .fetch_add(item.total_len() as i64, Ordering::Relaxed);
            conn.pending.push_back(item);
        }
        if self.outbox.close {
            conn.closing = true;
        }
        count > 0
    }

    /// Writes as much pending output as the socket accepts.
    fn flush(&mut self, index: usize, now: Instant) -> bool {
        let conn = &mut self.conns[index];
        let mut progress = false;
        'items: while let Some(front) = conn.pending.front_mut() {
            let total = front.total_len();
            while front.pos < total {
                let result = if front.pos < front.head_len {
                    conn.stream.write(&front.head[front.pos..front.head_len])
                } else {
                    conn.stream
                        .write(&front.payload.as_slice()[front.pos - front.head_len..])
                };
                match result {
                    Ok(0) => {
                        conn.dead = true;
                        break 'items;
                    }
                    Ok(n) => {
                        front.pos += n;
                        conn.queued_bytes -= n;
                        conn.last_activity = now;
                        self.shared
                            .stats
                            .bytes_out
                            .fetch_add(n as u64, Ordering::Relaxed);
                        self.shared
                            .stats
                            .queued_bytes
                            .fetch_sub(n as i64, Ordering::Relaxed);
                        progress = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break 'items,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.dead = true;
                        break 'items;
                    }
                }
            }
            self.shared.stats.frames_out.fetch_add(1, Ordering::Relaxed);
            self.shared.metrics.frame_out();
            if let Some(started) = front.started {
                self.shared
                    .metrics
                    .request_nanos(started.elapsed().as_nanos() as u64);
            }
            conn.pending.pop_front();
        }
        if conn.dead && conn.queued_bytes > 0 {
            // Give dropped bytes back to the global gauge.
            self.shared
                .stats
                .queued_bytes
                .fetch_sub(conn.queued_bytes as i64, Ordering::Relaxed);
            conn.queued_bytes = 0;
            conn.pending.clear();
        }
        if progress {
            // A peer that just received a reply tends to answer (next
            // request, or FIN) right away — check its socket promptly.
            conn.next_read = now;
            conn.read_backoff = READ_BACKOFF_FLOOR;
        }
        progress
    }

    /// Drops dead connections and fires the close accounting.
    fn reap(&mut self) {
        let shared = &self.shared;
        self.conns.retain_mut(|conn| {
            if !conn.dead {
                return true;
            }
            if conn.queued_bytes > 0 {
                shared
                    .stats
                    .queued_bytes
                    .fetch_sub(conn.queued_bytes as i64, Ordering::Relaxed);
            }
            shared.service.on_disconnect(&mut conn.state);
            shared.stats.closed.fetch_add(1, Ordering::Relaxed);
            shared.stats.live.fetch_sub(1, Ordering::Relaxed);
            shared.metrics.closed();
            if conn.timed_out {
                shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                shared.metrics.timed_out();
            }
            false
        });
    }
}

type ParsedFrame = (Option<TraceHeader>, Vec<u8>, usize);

/// Parses one frame from the front of `buf`: `Ok(None)` when more
/// bytes are needed, `Err` when the length word is oversized.
fn parse_frame(buf: &[u8]) -> io::Result<Option<ParsedFrame>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let word = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let (header_len, len) = if word & TRACE_FLAG != 0 {
        (TRACE_HEADER_LEN, word & !TRACE_FLAG)
    } else {
        (0, word)
    };
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap"),
        ));
    }
    let total = 4 + header_len + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let header = if header_len > 0 {
        let mut bytes = [0u8; TRACE_HEADER_LEN];
        bytes.copy_from_slice(&buf[4..4 + TRACE_HEADER_LEN]);
        Some(TraceHeader::from_bytes(&bytes))
    } else {
        None
    };
    let payload = buf[4 + header_len..total].to_vec();
    Ok(Some((header, payload, total)))
}

fn snapshot(stats: &StatsInner) -> ServeStats {
    ServeStats {
        accepted: stats.accepted.load(Ordering::Relaxed),
        accept_errors: stats.accept_errors.load(Ordering::Relaxed),
        rejected: stats.rejected.load(Ordering::Relaxed),
        closed: stats.closed.load(Ordering::Relaxed),
        timeouts: stats.timeouts.load(Ordering::Relaxed),
        frames_in: stats.frames_in.load(Ordering::Relaxed),
        frames_out: stats.frames_out.load(Ordering::Relaxed),
        bytes_in: stats.bytes_in.load(Ordering::Relaxed),
        bytes_out: stats.bytes_out.load(Ordering::Relaxed),
        live: stats.live.load(Ordering::Relaxed),
        queued_bytes: stats.queued_bytes.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, read_frame_traced, write_frame, write_frame_traced};
    use std::net::TcpStream;
    use std::time::Duration;

    /// Echoes every frame back, preserving the trace header; replies to
    /// the payload `"shared"` with a cached `Arc` buffer and closes on
    /// `"quit"`.
    struct Echo {
        cached: Arc<Vec<u8>>,
    }

    impl Default for Echo {
        fn default() -> Self {
            Echo {
                cached: Arc::new(b"cached-shared-reply".to_vec()),
            }
        }
    }

    impl FrameService for Echo {
        type Conn = ();
        fn on_connect(&self, _peer: SocketAddr) -> Self::Conn {}
        fn on_frame(
            &self,
            _conn: &mut Self::Conn,
            header: Option<TraceHeader>,
            payload: Vec<u8>,
            out: &mut Outbox,
        ) {
            match payload.as_slice() {
                b"quit" => out.close(),
                b"shared" => out.push_shared(Arc::clone(&self.cached)),
                _ => out.push_owned_traced(header, payload),
            }
        }
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn echo_roundtrip_owned_and_shared() {
        let handle = serve(
            "127.0.0.1:0",
            quick_config(),
            Echo::default(),
            NoServeMetrics,
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut stream, b"hello serve").unwrap();
        let (header, echoed) = read_frame_traced(&mut stream).unwrap();
        assert!(header.is_none());
        assert_eq!(echoed, b"hello serve");

        write_frame(&mut stream, b"shared").unwrap();
        let reply = read_frame(&mut stream).unwrap();
        assert_eq!(reply, b"cached-shared-reply");

        let stats = handle.stats();
        assert_eq!(stats.accepted, 1);
        assert!(stats.frames_in >= 2);
        assert!(stats.frames_out >= 2);
        drop(stream);
        handle.shutdown();
    }

    #[test]
    fn trace_header_passes_through() {
        let handle = serve(
            "127.0.0.1:0",
            quick_config(),
            Echo::default(),
            NoServeMetrics,
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let header = TraceHeader {
            trace_id: 0xfeed_beef_dead_cafe,
            span_id: 0x1234_5678_9abc_def0,
        };
        write_frame_traced(&mut stream, Some(header), b"traced payload").unwrap();
        let (echoed_header, payload) = read_frame_traced(&mut stream).unwrap();
        assert_eq!(echoed_header, Some(header));
        assert_eq!(payload, b"traced payload");
        handle.shutdown();
    }

    #[test]
    fn service_close_ends_connection() {
        let handle = serve(
            "127.0.0.1:0",
            quick_config(),
            Echo::default(),
            NoServeMetrics,
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut stream, b"quit").unwrap();
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "close without a reply sends nothing");
        handle.shutdown();
    }

    #[test]
    fn fragmented_and_pipelined_frames_parse() {
        let handle = serve(
            "127.0.0.1:0",
            quick_config(),
            Echo::default(),
            NoServeMetrics,
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Two pipelined frames written in deliberately awkward chunks.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first frame").unwrap();
        write_frame(&mut wire, b"second frame").unwrap();
        for chunk in wire.chunks(3) {
            stream.write_all(chunk).unwrap();
            stream.flush().unwrap();
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(read_frame(&mut stream).unwrap(), b"first frame");
        assert_eq!(read_frame(&mut stream).unwrap(), b"second frame");
        handle.shutdown();
    }

    #[test]
    fn max_connections_guard_rejects_excess() {
        let config = ServeConfig {
            workers: 1,
            max_connections: 2,
            ..ServeConfig::default()
        };
        let handle = serve("127.0.0.1:0", config, Echo::default(), NoServeMetrics).unwrap();
        let mut keep = Vec::new();
        for _ in 0..2 {
            let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            write_frame(&mut stream, b"ping").unwrap();
            assert_eq!(read_frame(&mut stream).unwrap(), b"ping");
            keep.push(stream);
        }
        // The third connection must be turned away with a clean EOF.
        let mut extra = TcpStream::connect(handle.local_addr()).unwrap();
        extra
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = Vec::new();
        extra.read_to_end(&mut buf).unwrap();
        assert!(buf.is_empty());
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.stats().rejected == 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(handle.stats().rejected, 1);
        drop(keep);
        handle.shutdown();
    }

    #[test]
    fn idle_timeout_reaps_silent_connections() {
        let config = ServeConfig {
            workers: 1,
            idle_timeout: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        };
        let handle = serve("127.0.0.1:0", config, Echo::default(), NoServeMetrics).unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        assert!(buf.is_empty(), "idle close is a clean EOF");
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.stats().timeouts == 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        let stats = handle.stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.closed, 1);
        handle.shutdown();
    }

    #[test]
    fn graceful_shutdown_joins_and_reports() {
        let handle = serve(
            "127.0.0.1:0",
            quick_config(),
            Echo::default(),
            NoServeMetrics,
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut stream, b"ping").unwrap();
        assert_eq!(read_frame(&mut stream).unwrap(), b"ping");
        let addr = handle.local_addr();
        let stats = handle.shutdown();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.live, 0, "all connections reaped at shutdown");
        // The listener is gone: a fresh connect cannot complete a frame
        // roundtrip (accept queue may take the SYN, but nobody serves).
        let probe = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        if let Ok(mut probe) = probe {
            probe
                .set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            write_frame(&mut probe, b"ping").unwrap();
            assert!(read_frame(&mut probe).is_err());
        }
    }

    #[test]
    fn oversized_length_word_drops_peer() {
        let handle = serve(
            "127.0.0.1:0",
            quick_config(),
            Echo::default(),
            NoServeMetrics,
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let word = (MAX_FRAME + 1).to_be_bytes();
        stream.write_all(&word).unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        assert!(buf.is_empty(), "corrupt stream closed without reply");
        handle.shutdown();
    }

    #[test]
    fn parse_frame_handles_partials_and_flagged_words() {
        assert!(parse_frame(&[]).unwrap().is_none());
        assert!(parse_frame(&[0, 0]).unwrap().is_none());
        let mut wire = Vec::new();
        let header = TraceHeader {
            trace_id: 7,
            span_id: 9,
        };
        write_frame_traced(&mut wire, Some(header), b"abc").unwrap();
        assert!(parse_frame(&wire[..wire.len() - 1]).unwrap().is_none());
        let (parsed_header, payload, consumed) = parse_frame(&wire).unwrap().unwrap();
        assert_eq!(parsed_header, Some(header));
        assert_eq!(payload, b"abc");
        assert_eq!(consumed, wire.len());
        let oversized = (MAX_FRAME + 1).to_be_bytes();
        assert!(parse_frame(&oversized).is_err());
    }
}
