//! Length-prefixed framing shared by every TCP surface in the
//! workspace.
//!
//! The wire format is a 4-byte big-endian length followed by that many
//! payload bytes. `cais-bus` uses it for its PUB bridge and
//! `cais-telemetry` for its scrape endpoint, so a single client
//! implementation can talk to both.
//!
//! ## Trace headers
//!
//! A frame may optionally carry a 16-byte [`TraceHeader`] (trace id +
//! span id) ahead of the payload so causal traces survive the TCP
//! seam. Presence is signalled by [`TRACE_FLAG`], the high bit of the
//! length word — real lengths never exceed the 16 MiB [`MAX_FRAME`]
//! cap, so the bit is always free. [`read_frame_traced`] accepts both
//! shapes, which keeps new readers compatible with untagged (pre-trace)
//! peers: an untagged frame simply arrives with no header and the
//! receiver starts a fresh root trace. [`read_frame`] predates the
//! header and only understands untagged frames.

use std::io::{self, Read, Write};

/// Maximum accepted frame size (16 MiB), protecting against corrupt
/// length prefixes.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// High bit of the length word: set when a [`TraceHeader`] precedes the
/// payload.
pub const TRACE_FLAG: u32 = 0x8000_0000;

/// Bytes occupied by an encoded [`TraceHeader`].
pub const TRACE_HEADER_LEN: usize = 16;

/// The causal-trace identity a frame can carry across the wire: which
/// trace the payload belongs to and which span sent it. Pure wire
/// type — the span semantics live in `cais-telemetry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceHeader {
    /// Trace the frame belongs to.
    pub trace_id: u64,
    /// Span that emitted the frame (the receiver's parent).
    pub span_id: u64,
}

impl TraceHeader {
    /// Encodes the header as 16 big-endian bytes.
    pub fn to_bytes(self) -> [u8; TRACE_HEADER_LEN] {
        let mut buf = [0u8; TRACE_HEADER_LEN];
        buf[..8].copy_from_slice(&self.trace_id.to_be_bytes());
        buf[8..].copy_from_slice(&self.span_id.to_be_bytes());
        buf
    }

    /// Decodes a header from its 16 big-endian bytes.
    pub fn from_bytes(buf: &[u8; TRACE_HEADER_LEN]) -> Self {
        let mut id = [0u8; 8];
        id.copy_from_slice(&buf[..8]);
        let mut span = [0u8; 8];
        span.copy_from_slice(&buf[8..]);
        TraceHeader {
            trace_id: u64::from_be_bytes(id),
            span_id: u64::from_be_bytes(span),
        }
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    writer.write_all(&buf)
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Returns an error on I/O failure, EOF mid-frame, or a frame larger
/// than the 16 MiB cap.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes one frame, tagging it with a [`TraceHeader`] when one is
/// given. With `None` the output is byte-identical to [`write_frame`],
/// so untagged peers keep interoperating.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidData` when the payload
/// exceeds [`MAX_FRAME`].
pub fn write_frame_traced<W: Write>(
    writer: &mut W,
    header: Option<TraceHeader>,
    payload: &[u8],
) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds cap", payload.len()),
        ));
    }
    let Some(header) = header else {
        return write_frame(writer, payload);
    };
    let mut buf = Vec::with_capacity(4 + TRACE_HEADER_LEN + payload.len());
    buf.extend_from_slice(&((payload.len() as u32) | TRACE_FLAG).to_be_bytes());
    buf.extend_from_slice(&header.to_bytes());
    buf.extend_from_slice(payload);
    writer.write_all(&buf)
}

/// Reads one frame that may or may not carry a [`TraceHeader`].
///
/// Untagged frames (from [`write_frame`] or a pre-trace peer) come back
/// with `None`; the caller is expected to start a fresh root trace in
/// that case.
///
/// # Errors
///
/// Returns an error on I/O failure, EOF mid-frame, or a payload larger
/// than the 16 MiB cap.
pub fn read_frame_traced<R: Read>(reader: &mut R) -> io::Result<(Option<TraceHeader>, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf)?;
    let word = u32::from_be_bytes(len_buf);
    let (header, len) = if word & TRACE_FLAG != 0 {
        let mut header_buf = [0u8; TRACE_HEADER_LEN];
        reader.read_exact(&mut header_buf)?;
        (
            Some(TraceHeader::from_bytes(&header_buf)),
            word & !TRACE_FLAG,
        )
    } else {
        (None, word)
    };
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok((header, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(buf.len(), 9);
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
    }

    #[test]
    fn empty_frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[]).unwrap();
        assert_eq!(buf.len(), 4);
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).unwrap().is_empty());
    }

    #[test]
    fn rejects_oversize() {
        let mut cursor = io::Cursor::new(u32::MAX.to_be_bytes().to_vec());
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn eof_mid_payload_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6); // cut payload short
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn trace_header_byte_roundtrip() {
        let header = TraceHeader {
            trace_id: 0xDEAD_BEEF_CAFE_F00D,
            span_id: 7,
        };
        assert_eq!(TraceHeader::from_bytes(&header.to_bytes()), header);
    }

    #[test]
    fn tagged_frame_roundtrip() {
        let header = TraceHeader {
            trace_id: 42,
            span_id: 9,
        };
        let mut buf = Vec::new();
        write_frame_traced(&mut buf, Some(header), b"payload").unwrap();
        assert_eq!(buf.len(), 4 + TRACE_HEADER_LEN + 7);
        let mut cursor = io::Cursor::new(buf);
        let (read_header, payload) = read_frame_traced(&mut cursor).unwrap();
        assert_eq!(read_header, Some(header));
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn untagged_write_is_byte_identical_to_legacy() {
        let mut legacy = Vec::new();
        write_frame(&mut legacy, b"hello").unwrap();
        let mut untagged = Vec::new();
        write_frame_traced(&mut untagged, None, b"hello").unwrap();
        assert_eq!(legacy, untagged);
    }

    #[test]
    fn traced_reader_accepts_untagged_peer_frames() {
        // A pre-trace peer writes with the legacy encoder; the new
        // reader must take the frame and report no header.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"old peer").unwrap();
        let mut cursor = io::Cursor::new(buf);
        let (header, payload) = read_frame_traced(&mut cursor).unwrap();
        assert_eq!(header, None);
        assert_eq!(payload, b"old peer");
    }

    #[test]
    fn legacy_reader_cannot_misread_a_tagged_frame_as_valid() {
        // The flag bit pushes the apparent length far past MAX_FRAME,
        // so an old reader fails loudly instead of desyncing silently.
        let mut buf = Vec::new();
        write_frame_traced(
            &mut buf,
            Some(TraceHeader {
                trace_id: 1,
                span_id: 2,
            }),
            b"x",
        )
        .unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn traced_frame_rejects_oversize() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(TRACE_FLAG | (MAX_FRAME + 1)).to_be_bytes());
        buf.extend_from_slice(&[0u8; TRACE_HEADER_LEN]);
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame_traced(&mut cursor).is_err());
    }
}
