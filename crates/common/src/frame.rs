//! Length-prefixed framing shared by every TCP surface in the
//! workspace.
//!
//! The wire format is a 4-byte big-endian length followed by that many
//! payload bytes. `cais-bus` uses it for its PUB bridge and
//! `cais-telemetry` for its scrape endpoint, so a single client
//! implementation can talk to both.

use std::io::{self, Read, Write};

/// Maximum accepted frame size (16 MiB), protecting against corrupt
/// length prefixes.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    writer.write_all(&buf)
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Returns an error on I/O failure, EOF mid-frame, or a frame larger
/// than the 16 MiB cap.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(buf.len(), 9);
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
    }

    #[test]
    fn empty_frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[]).unwrap();
        assert_eq!(buf.len(), 4);
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).unwrap().is_empty());
    }

    #[test]
    fn rejects_oversize() {
        let mut cursor = io::Cursor::new(u32::MAX.to_be_bytes().to_vec());
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn eof_mid_payload_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6); // cut payload short
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
