//! A per-source / per-peer circuit breaker.
//!
//! Classic closed → open → half-open, but with a *probe-count*
//! cooldown instead of a wall clock: while open, each denied call
//! counts down the cooldown, and when it reaches zero the breaker
//! half-opens and admits one trial call. This keeps the whole state
//! machine deterministic per call sequence — the property the
//! serial == parallel ingestion contract and the seeded chaos suite
//! both lean on.

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub trip_after: u32,
    /// Denied probes an open breaker absorbs before half-opening.
    pub cooldown_probes: u32,
    /// Successful half-open trials required to close again.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_after: 3,
            cooldown_probes: 2,
            half_open_successes: 1,
        }
    }
}

impl BreakerConfig {
    /// A breaker that never trips (pass-through).
    pub fn disabled() -> Self {
        BreakerConfig {
            trip_after: u32::MAX,
            ..BreakerConfig::default()
        }
    }
}

/// Where the breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls are denied while the cooldown counts down.
    Open,
    /// A trial call is admitted; success closes, failure re-opens.
    HalfOpen,
}

/// Counts of state transitions, for telemetry and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerTransitions {
    /// Times the breaker tripped open (including re-opens).
    pub opened: u64,
    /// Times the cooldown expired into half-open.
    pub half_opened: u64,
    /// Times a half-open trial closed the breaker.
    pub closed: u64,
}

/// A deterministic closed → open → half-open circuit breaker.
///
/// # Examples
///
/// ```
/// use cais_common::resilience::{BreakerConfig, BreakerState, CircuitBreaker};
///
/// let mut breaker = CircuitBreaker::new(BreakerConfig {
///     trip_after: 2,
///     cooldown_probes: 1,
///     half_open_successes: 1,
/// });
/// assert!(breaker.allow());
/// breaker.on_failure();
/// breaker.on_failure(); // trips
/// assert_eq!(breaker.state(), BreakerState::Open);
/// assert!(!breaker.allow()); // cooldown probe, denied
/// assert!(breaker.allow()); // half-open trial
/// breaker.on_success();
/// assert_eq!(breaker.state(), BreakerState::Closed);
/// assert_eq!(breaker.transitions().opened, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
    trial_successes: u32,
    transitions: BreakerTransitions,
}

impl CircuitBreaker {
    /// A closed breaker under `config`.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            trial_successes: 0,
            transitions: BreakerTransitions::default(),
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the source is currently isolated (open or probing).
    pub fn is_quarantined(&self) -> bool {
        self.state != BreakerState::Closed
    }

    /// Transition counters so far.
    pub fn transitions(&self) -> BreakerTransitions {
        self.transitions
    }

    /// Whether the next call may proceed. Denied probes count down an
    /// open breaker's cooldown; once it expires the breaker half-opens
    /// and the following call is admitted as the trial.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                    self.trial_successes = 0;
                    self.transitions.half_opened += 1;
                }
                false
            }
        }
    }

    /// Records a successful call.
    pub fn on_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.trial_successes += 1;
                if self.trial_successes >= self.config.half_open_successes.max(1) {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.transitions.closed += 1;
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Records a failed call (after its retry budget, if any).
    pub fn on_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                if self.consecutive_failures >= self.config.trip_after {
                    self.trip();
                }
            }
            // A failed trial re-opens for a fresh cooldown.
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.cooldown_left = self.config.cooldown_probes.max(1);
        self.transitions.opened += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(trip_after: u32, cooldown: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            trip_after,
            cooldown_probes: cooldown,
            half_open_successes: 1,
        })
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = breaker(3, 2);
        b.on_failure();
        b.on_failure();
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn cooldown_denies_exactly_n_probes() {
        let mut b = breaker(1, 3);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(!b.allow()); // third probe exhausts the cooldown
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow()); // the trial
    }

    #[test]
    fn failed_trial_reopens_with_fresh_cooldown() {
        let mut b = breaker(1, 1);
        b.on_failure();
        assert!(!b.allow());
        assert!(b.allow()); // trial
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions().opened, 2);
        assert!(!b.allow());
        assert!(b.allow());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        let t = b.transitions();
        assert_eq!((t.opened, t.half_opened, t.closed), (2, 2, 1));
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b = CircuitBreaker::new(BreakerConfig::disabled());
        for _ in 0..10_000 {
            b.on_failure();
            assert!(b.allow());
        }
        assert_eq!(b.transitions(), BreakerTransitions::default());
    }

    #[test]
    fn multi_success_half_open_requires_the_full_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            trip_after: 1,
            cooldown_probes: 1,
            half_open_successes: 2,
        });
        b.on_failure();
        assert!(!b.allow());
        assert!(b.allow());
        b.on_success();
        assert_eq!(b.state(), BreakerState::HalfOpen); // one more needed
        assert!(b.allow());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
