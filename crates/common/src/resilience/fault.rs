//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] scripts what goes wrong at named call sites ("feed:
//! abuse-ch", "taxii.frame", "misp.push"). Each site carries its own
//! mode — an explicit per-call script, a transient outage, a permanent
//! failure, a periodic drop, or a seeded failure rate — and its own
//! RNG stream derived from the plan seed and the site name, so the
//! fault sequence at one site never depends on how often other sites
//! are called. No wall clock is involved anywhere: the same plan over
//! the same call sequence injects byte-identical faults.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What an injected fault does to one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The call fails outright: a fetch error, a dropped frame, a
    /// failed delivery.
    Error,
    /// The payload is replaced with garbage bytes, so the call succeeds
    /// at the transport level but fails to parse downstream.
    Garbage,
    /// The payload is cut short mid-stream.
    Truncate,
    /// The previous payload is replayed verbatim — a duplicate
    /// delivery the consumer's dedup must absorb.
    Replay,
    /// The operation is applied but its acknowledgement is lost: the
    /// caller observes an error even though the effect landed.
    /// Exercises idempotent re-delivery.
    AckLost,
    /// The call is delayed by this many *virtual* milliseconds;
    /// consumers route the delay to their injected sleeper.
    Delay(u32),
}

/// How one site decides whether a call faults.
#[derive(Debug)]
enum SiteMode {
    /// Explicit per-call script; `None` entries succeed. After the
    /// script is exhausted the site is healthy.
    Script(VecDeque<Option<FaultKind>>),
    /// The first `remaining` calls fault, then the site is healthy —
    /// a transient outage sized to (or past) a retry budget.
    FailFirst { remaining: u64, kind: FaultKind },
    /// Every call faults: a permanently dead peer.
    Always(FaultKind),
    /// Calls numbered `period`, `2·period`, … fault (1-based), like
    /// the classic flaky-source wrapper.
    EveryNth { period: u64, kind: FaultKind },
    /// Each call faults independently with probability `p`, drawn from
    /// the site's seeded RNG stream.
    Rate {
        p: f64,
        kind: FaultKind,
        rng: StdRng,
    },
}

#[derive(Debug, Default)]
struct SiteState {
    mode: Option<SiteMode>,
    calls: u64,
    injected: u64,
}

#[derive(Debug, Default)]
struct PlanInner {
    sites: HashMap<String, SiteState>,
}

/// A shareable, seeded fault-injection plan.
///
/// Cloning shares the underlying state: every component holding a
/// clone consumes from the same per-site scripts and counters.
///
/// # Examples
///
/// ```
/// use cais_common::resilience::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new(42)
///     .fail_first("feed:a", 2, FaultKind::Error) // transient outage
///     .always("feed:dead", FaultKind::Error);    // permanently down
///
/// assert_eq!(plan.next("feed:a"), Some(FaultKind::Error));
/// assert_eq!(plan.next("feed:a"), Some(FaultKind::Error));
/// assert_eq!(plan.next("feed:a"), None); // recovered
/// assert_eq!(plan.next("feed:dead"), Some(FaultKind::Error));
/// assert_eq!(plan.injected("feed:a"), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    inner: Arc<Mutex<PlanInner>>,
}

impl FaultPlan {
    /// Creates an empty plan: every site is healthy until scripted.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            inner: Arc::new(Mutex::new(PlanInner::default())),
        }
    }

    /// A plan injecting nothing anywhere (still counts calls).
    pub fn healthy() -> Self {
        FaultPlan::new(0)
    }

    /// The seed the plan (and every per-site RNG stream) derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn set_mode(self, site: &str, mode: SiteMode) -> Self {
        {
            let mut inner = self.inner.lock().expect("fault plan poisoned");
            inner.sites.entry(site.to_owned()).or_default().mode = Some(mode);
        }
        self
    }

    /// Scripts the site call by call; `None` entries succeed, and the
    /// site is healthy once the script runs out.
    pub fn script(self, site: &str, faults: Vec<Option<FaultKind>>) -> Self {
        self.set_mode(site, SiteMode::Script(faults.into()))
    }

    /// The site's first `n` calls fault with `kind`, then it recovers.
    pub fn fail_first(self, site: &str, n: u64, kind: FaultKind) -> Self {
        self.set_mode(site, SiteMode::FailFirst { remaining: n, kind })
    }

    /// Every call at the site faults with `kind`.
    pub fn always(self, site: &str, kind: FaultKind) -> Self {
        self.set_mode(site, SiteMode::Always(kind))
    }

    /// Calls numbered `period`, `2·period`, … (1-based) fault.
    ///
    /// # Panics
    ///
    /// Panics when `period` is zero.
    pub fn every_nth(self, site: &str, period: u64, kind: FaultKind) -> Self {
        assert!(period > 0, "period must be positive");
        self.set_mode(site, SiteMode::EveryNth { period, kind })
    }

    /// Each call at the site faults independently with probability `p`,
    /// from an RNG stream seeded by the plan seed and the site name.
    pub fn rate(self, site: &str, p: f64, kind: FaultKind) -> Self {
        let rng = StdRng::seed_from_u64(self.seed ^ site_hash(site));
        self.set_mode(site, SiteMode::Rate { p, kind, rng })
    }

    /// Decides the next call at `site`: `None` means the call proceeds
    /// healthily. Unscripted sites always proceed (but are counted).
    pub fn next(&self, site: &str) -> Option<FaultKind> {
        let mut inner = self.inner.lock().expect("fault plan poisoned");
        let state = inner.sites.entry(site.to_owned()).or_default();
        state.calls += 1;
        let fault = match &mut state.mode {
            None => None,
            Some(SiteMode::Script(script)) => script.pop_front().flatten(),
            Some(SiteMode::FailFirst { remaining, kind }) => {
                if *remaining > 0 {
                    *remaining -= 1;
                    Some(*kind)
                } else {
                    None
                }
            }
            Some(SiteMode::Always(kind)) => Some(*kind),
            Some(SiteMode::EveryNth { period, kind }) => {
                if state.calls.is_multiple_of(*period) {
                    Some(*kind)
                } else {
                    None
                }
            }
            Some(SiteMode::Rate { p, kind, rng }) => {
                if rng.gen_bool(*p) {
                    Some(*kind)
                } else {
                    None
                }
            }
        };
        if fault.is_some() {
            state.injected += 1;
        }
        fault
    }

    /// How many calls the site has seen.
    pub fn calls(&self, site: &str) -> u64 {
        self.inner
            .lock()
            .expect("fault plan poisoned")
            .sites
            .get(site)
            .map_or(0, |s| s.calls)
    }

    /// How many faults the site has injected.
    pub fn injected(&self, site: &str) -> u64 {
        self.inner
            .lock()
            .expect("fault plan poisoned")
            .sites
            .get(site)
            .map_or(0, |s| s.injected)
    }

    /// Total faults injected across every site.
    pub fn total_injected(&self) -> u64 {
        self.inner
            .lock()
            .expect("fault plan poisoned")
            .sites
            .values()
            .map(|s| s.injected)
            .sum()
    }

    /// Every site the plan has scripted or seen, sorted by name.
    pub fn sites(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .lock()
            .expect("fault plan poisoned")
            .sites
            .keys()
            .cloned()
            .collect();
        names.sort_unstable();
        names
    }
}

/// FNV-1a over the site name: stable, dependency-free, and good enough
/// to decorrelate per-site RNG streams. XOR it with a plan or run seed
/// to derive the per-site stream seed.
pub fn site_hash(site: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in site.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Applies a payload-shaped fault to a fetched payload. `previous` is
/// the last successfully served payload (for [`FaultKind::Replay`]).
/// Transport-shaped kinds (`Error`, `AckLost`, `Delay`) pass the
/// payload through unchanged — callers handle those before fetching.
pub fn mangle_payload(kind: FaultKind, payload: String, previous: Option<&str>) -> String {
    match kind {
        FaultKind::Garbage => "\u{1}\u{2}%%% injected garbage %%%\u{3}".to_owned(),
        FaultKind::Truncate => {
            let cut = payload
                .char_indices()
                .nth(payload.chars().count() / 2)
                .map_or(0, |(i, _)| i);
            payload[..cut].to_owned()
        }
        FaultKind::Replay => previous.map_or(payload, str::to_owned),
        FaultKind::Error | FaultKind::AckLost | FaultKind::Delay(_) => payload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_consume_in_order_then_heal() {
        let plan = FaultPlan::new(1).script(
            "s",
            vec![Some(FaultKind::Garbage), None, Some(FaultKind::Error)],
        );
        assert_eq!(plan.next("s"), Some(FaultKind::Garbage));
        assert_eq!(plan.next("s"), None);
        assert_eq!(plan.next("s"), Some(FaultKind::Error));
        assert_eq!(plan.next("s"), None);
        assert_eq!(plan.calls("s"), 4);
        assert_eq!(plan.injected("s"), 2);
    }

    #[test]
    fn every_nth_matches_period_semantics() {
        let plan = FaultPlan::new(0).every_nth("s", 3, FaultKind::Error);
        let pattern: Vec<bool> = (0..6).map(|_| plan.next("s").is_some()).collect();
        assert_eq!(pattern, [false, false, true, false, false, true]);
    }

    #[test]
    fn rate_streams_are_deterministic_per_seed_and_site() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed).rate("s", 0.5, FaultKind::Error);
            (0..32).map(|_| plan.next("s").is_some()).collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
        // Different sites under the same seed draw distinct streams.
        let plan =
            FaultPlan::new(9)
                .rate("a", 0.5, FaultKind::Error)
                .rate("b", 0.5, FaultKind::Error);
        let a: Vec<bool> = (0..32).map(|_| plan.next("a").is_some()).collect();
        let b: Vec<bool> = (0..32).map(|_| plan.next("b").is_some()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn rate_is_independent_of_other_sites_call_order() {
        let solo = FaultPlan::new(3).rate("x", 0.4, FaultKind::Error);
        let solo_seq: Vec<bool> = (0..16).map(|_| solo.next("x").is_some()).collect();
        let interleaved =
            FaultPlan::new(3)
                .rate("x", 0.4, FaultKind::Error)
                .rate("noise", 0.9, FaultKind::Error);
        let mut seq = Vec::new();
        for _ in 0..16 {
            let _ = interleaved.next("noise");
            seq.push(interleaved.next("x").is_some());
            let _ = interleaved.next("noise");
        }
        assert_eq!(solo_seq, seq);
    }

    #[test]
    fn clones_share_state() {
        let plan = FaultPlan::new(0).fail_first("s", 1, FaultKind::Error);
        let other = plan.clone();
        assert_eq!(other.next("s"), Some(FaultKind::Error));
        assert_eq!(plan.next("s"), None);
        assert_eq!(plan.injected("s"), 1);
    }

    #[test]
    fn unscripted_sites_are_healthy_but_counted() {
        let plan = FaultPlan::healthy();
        assert_eq!(plan.next("anything"), None);
        assert_eq!(plan.calls("anything"), 1);
        assert_eq!(plan.total_injected(), 0);
        assert_eq!(plan.sites(), vec!["anything".to_owned()]);
    }

    #[test]
    fn mangle_covers_payload_kinds() {
        let truncated = mangle_payload(FaultKind::Truncate, "abcdef".into(), None);
        assert_eq!(truncated, "abc");
        let replayed = mangle_payload(FaultKind::Replay, "new".into(), Some("old"));
        assert_eq!(replayed, "old");
        // Replay with no history degrades to the fresh payload.
        assert_eq!(mangle_payload(FaultKind::Replay, "new".into(), None), "new");
        assert!(mangle_payload(FaultKind::Garbage, "x".into(), None).contains("garbage"));
        // Truncation respects multi-byte boundaries.
        let utf8 = mangle_payload(FaultKind::Truncate, "héllö wörld".into(), None);
        assert!(utf8.len() < "héllö wörld".len());
    }
}
