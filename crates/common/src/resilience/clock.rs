//! Injectable time sources.
//!
//! The retry ladder's [`Sleeper`](super::Sleeper) abstracts *waiting*;
//! [`Clock`] abstracts *reading the time*. Components that make
//! time-dependent decisions (indicator decay, expiry sweeps) take a
//! clock instead of calling [`Timestamp::now`] directly, so tests and
//! chaos runs drive them through a [`VirtualClock`] in pure virtual
//! time — deterministic from a seed, no wall clock involved — while
//! production uses [`SystemClock`].

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::time::Timestamp;

/// A readable time source. Implementations must be cheap and
/// thread-safe: callers read the clock once per decision, possibly from
/// several threads.
pub trait Clock: Send + Sync {
    /// The current instant according to this clock.
    fn now(&self) -> Timestamp;
}

/// The wall clock (production default).
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        Timestamp::now()
    }
}

/// A manually advanced clock for deterministic tests.
///
/// Clones share the same underlying instant, so a test can hand one
/// handle to the component under test and keep another to advance time
/// with. Time never advances on its own.
///
/// # Examples
///
/// ```
/// use cais_common::resilience::{Clock, VirtualClock};
/// use cais_common::Timestamp;
///
/// let clock = VirtualClock::starting_at(Timestamp::from_unix_secs(1_000));
/// let handle = clock.clone();
/// clock.advance_days(2);
/// assert_eq!(handle.now(), Timestamp::from_unix_secs(1_000).add_days(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    millis: Arc<AtomicI64>,
}

impl VirtualClock {
    /// A clock frozen at the Unix epoch.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// A clock frozen at `start`.
    pub fn starting_at(start: Timestamp) -> Self {
        VirtualClock {
            millis: Arc::new(AtomicI64::new(start.unix_millis())),
        }
    }

    /// Jumps the clock to an absolute instant (backwards is allowed —
    /// the clock makes no monotonicity promise; tests own it).
    pub fn set(&self, at: Timestamp) {
        self.millis.store(at.unix_millis(), Ordering::SeqCst);
    }

    /// Advances the clock by a duration.
    pub fn advance(&self, by: Duration) {
        let millis = i64::try_from(by.as_millis()).unwrap_or(i64::MAX);
        self.millis.fetch_add(millis, Ordering::SeqCst);
    }

    /// Advances the clock by whole days.
    pub fn advance_days(&self, days: i64) {
        self.millis.fetch_add(
            days.saturating_mul(crate::time::MILLIS_PER_DAY),
            Ordering::SeqCst,
        );
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_unix_millis(self.millis.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_tracks_wall_time() {
        let before = Timestamp::now();
        let read = SystemClock.now();
        let after = Timestamp::now();
        assert!(before <= read && read <= after);
    }

    #[test]
    fn virtual_clock_only_moves_when_told() {
        let clock = VirtualClock::starting_at(Timestamp::from_unix_secs(100));
        assert_eq!(clock.now(), Timestamp::from_unix_secs(100));
        assert_eq!(clock.now(), Timestamp::from_unix_secs(100));
        clock.advance(Duration::from_secs(5));
        assert_eq!(clock.now(), Timestamp::from_unix_secs(105));
        clock.advance_days(1);
        assert_eq!(clock.now(), Timestamp::from_unix_secs(105).add_days(1));
        clock.set(Timestamp::EPOCH);
        assert_eq!(clock.now(), Timestamp::EPOCH);
    }

    #[test]
    fn clones_share_the_instant() {
        let clock = VirtualClock::new();
        let handle = clock.clone();
        clock.advance(Duration::from_millis(250));
        assert_eq!(handle.now(), Timestamp::from_unix_millis(250));
    }
}
