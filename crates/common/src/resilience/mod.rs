//! Deterministic resilience primitives shared by every I/O seam.
//!
//! Three pieces compose into the platform's failure-handling story:
//!
//! - [`FaultPlan`] — a seeded, per-call-site fault-injection script.
//!   Each site draws its faults from its own RNG stream (seeded from
//!   the plan seed and the site name), so cross-site call order never
//!   changes what a site observes — chaos runs replay exactly from a
//!   seed, with no wall clock involved.
//! - [`RetryPolicy`] — bounded attempts with exponential backoff and
//!   seeded jitter. Waiting is delegated to a [`Sleeper`], so tests use
//!   virtual time ([`RecordingSleeper`]) and production threads wait on
//!   an interruptible [`StopToken`].
//! - [`CircuitBreaker`] — per-source/per-peer closed → open → half-open
//!   isolation with a probe-count cooldown, deterministic per call
//!   sequence.
//! - [`Clock`] — an injectable time *reader* next to the [`Sleeper`]
//!   time *waiter*: time-dependent logic (indicator decay, expiry
//!   sweeps) reads a [`SystemClock`] in production and a manually
//!   advanced [`VirtualClock`] in tests.
//!
//! The determinism contract extends here: with any seeded plan, the
//! set of faults a call site sees — and therefore retry and breaker
//! counters — is a pure function of the plan seed and that site's call
//! sequence.

mod breaker;
mod clock;
mod fault;
mod retry;

pub use breaker::{BreakerConfig, BreakerState, BreakerTransitions, CircuitBreaker};
pub use clock::{Clock, SystemClock, VirtualClock};
pub use fault::{mangle_payload, site_hash, FaultKind, FaultPlan};
pub use retry::{RecordingSleeper, RetryOutcome, RetryPolicy, Sleeper, StopToken, ThreadSleeper};
