//! Bounded retries with exponential backoff, seeded jitter and an
//! injectable clock.
//!
//! A [`RetryPolicy`] is pure arithmetic: given an attempt number and a
//! caller-owned RNG it computes the next backoff delay. *Waiting* is
//! delegated to a [`Sleeper`], so tests run the whole retry ladder in
//! virtual time ([`RecordingSleeper`]) and production threads wait on
//! an interruptible [`StopToken`] that a shutdown wakes immediately.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::Rng;

/// Bounded exponential backoff with seeded jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Multiplier applied per further retry (typically 2).
    pub multiplier: u32,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Fraction of the delay added as jitter drawn from the caller's
    /// seeded RNG (0.0 disables jitter; 0.1 adds up to +10%).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            multiplier: 2,
            max_delay: Duration::from_secs(2),
            jitter: 0.1,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// A fast policy for tests: immediate-ish retries, no jitter.
    pub fn fast(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_delay: Duration::from_millis(1),
            multiplier: 2,
            max_delay: Duration::from_millis(8),
            jitter: 0.0,
        }
    }

    /// The backoff before retry number `retry` (1-based: the delay
    /// between attempt `retry` and attempt `retry + 1`), with jitter
    /// drawn from `rng` — deterministic given the RNG state.
    pub fn delay(&self, retry: u32, rng: &mut StdRng) -> Duration {
        let factor = u64::from(self.multiplier.max(1)).saturating_pow(retry.saturating_sub(1));
        let raw = self
            .base_delay
            .saturating_mul(u32::try_from(factor.min(u64::from(u32::MAX))).unwrap_or(u32::MAX));
        let capped = raw.min(self.max_delay);
        if self.jitter <= 0.0 {
            return capped;
        }
        let extra = capped.as_secs_f64() * self.jitter * rng.gen::<f64>();
        capped + Duration::from_secs_f64(extra)
    }

    /// Runs `op` under the policy: up to [`RetryPolicy::max_attempts`]
    /// calls, sleeping the backoff between attempts on `sleeper`.
    /// Returns the first success, the last error once the budget is
    /// spent, or `Err(None)`-style interruption when the sleeper was
    /// woken by a stop signal (reported through [`RetryOutcome`]).
    pub fn run<T, E>(
        &self,
        rng: &mut StdRng,
        sleeper: &impl Sleeper,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> RetryOutcome<T, E> {
        let mut retries = 0;
        for attempt in 1..=self.max_attempts.max(1) {
            match op(attempt) {
                Ok(value) => {
                    return RetryOutcome {
                        result: Ok(value),
                        retries,
                        interrupted: false,
                    }
                }
                Err(error) => {
                    if attempt == self.max_attempts.max(1) {
                        return RetryOutcome {
                            result: Err(error),
                            retries,
                            interrupted: false,
                        };
                    }
                    retries += 1;
                    if !sleeper.sleep(self.delay(attempt, rng)) {
                        return RetryOutcome {
                            result: Err(error),
                            retries,
                            interrupted: true,
                        };
                    }
                }
            }
        }
        unreachable!("loop returns on the final attempt");
    }
}

/// The outcome of one retried operation.
#[derive(Debug)]
pub struct RetryOutcome<T, E> {
    /// The first success or the last error.
    pub result: Result<T, E>,
    /// How many retries were spent (0 = first attempt succeeded).
    pub retries: u32,
    /// Whether a stop signal interrupted the backoff wait (the result
    /// is then the error observed before the wait).
    pub interrupted: bool,
}

/// Where backoff waits go — the injectable clock of the retry ladder.
pub trait Sleeper {
    /// Waits for `duration`. Returns `false` when interrupted by a
    /// stop signal: callers must abandon the retry loop.
    fn sleep(&self, duration: Duration) -> bool;
}

/// Really sleeps on the current thread (production default).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&self, duration: Duration) -> bool {
        std::thread::sleep(duration);
        true
    }
}

/// Sleeps in virtual time: returns instantly, accumulating the total
/// wait it was asked for. The deterministic test clock.
#[derive(Debug, Default)]
pub struct RecordingSleeper {
    slept: Mutex<Vec<Duration>>,
}

impl RecordingSleeper {
    /// A fresh virtual clock.
    pub fn new() -> Self {
        RecordingSleeper::default()
    }

    /// Every wait requested so far, in order.
    pub fn naps(&self) -> Vec<Duration> {
        self.slept.lock().expect("sleeper poisoned").clone()
    }

    /// Total virtual time requested.
    pub fn total(&self) -> Duration {
        self.naps().iter().sum()
    }
}

impl Sleeper for RecordingSleeper {
    fn sleep(&self, duration: Duration) -> bool {
        self.slept.lock().expect("sleeper poisoned").push(duration);
        true
    }
}

#[derive(Debug, Default)]
struct StopInner {
    stopped: AtomicBool,
    mutex: Mutex<()>,
    condvar: Condvar,
}

/// A shareable stop signal whose waits are interruptible: a thread
/// sleeping out a backoff on the token wakes the moment
/// [`StopToken::trigger`] fires, so shutdown latency never scales with
/// the backoff schedule.
///
/// # Examples
///
/// ```
/// use std::time::{Duration, Instant};
/// use cais_common::resilience::{Sleeper, StopToken};
///
/// let token = StopToken::new();
/// let waiter = token.clone();
/// let handle = std::thread::spawn(move || waiter.sleep(Duration::from_secs(60)));
/// let started = Instant::now();
/// token.trigger();
/// assert!(!handle.join().unwrap()); // interrupted, not timed out
/// assert!(started.elapsed() < Duration::from_secs(5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StopToken {
    inner: Arc<StopInner>,
}

impl StopToken {
    /// A fresh, untriggered token.
    pub fn new() -> Self {
        StopToken::default()
    }

    /// Signals stop and wakes every waiter.
    pub fn trigger(&self) {
        self.inner.stopped.store(true, Ordering::SeqCst);
        let _guard = self.inner.mutex.lock().expect("stop token poisoned");
        self.inner.condvar.notify_all();
    }

    /// Whether stop has been signalled.
    pub fn is_stopped(&self) -> bool {
        self.inner.stopped.load(Ordering::SeqCst)
    }
}

impl Sleeper for StopToken {
    /// Waits up to `duration`; returns `false` immediately when the
    /// token is (or becomes) triggered.
    fn sleep(&self, duration: Duration) -> bool {
        if self.is_stopped() {
            return false;
        }
        let deadline = std::time::Instant::now() + duration;
        let mut guard = self.inner.mutex.lock().expect("stop token poisoned");
        loop {
            if self.is_stopped() {
                return false;
            }
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return true;
            };
            let (next, timeout) = self
                .inner
                .condvar
                .wait_timeout(guard, remaining)
                .expect("stop token poisoned");
            guard = next;
            if timeout.timed_out() {
                return !self.is_stopped();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            multiplier: 2,
            max_delay: Duration::from_millis(55),
            jitter: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let delays: Vec<u64> = (1..=4)
            .map(|r| policy.delay(r, &mut rng).as_millis() as u64)
            .collect();
        assert_eq!(delays, [10, 20, 40, 55]);
    }

    #[test]
    fn jitter_is_bounded_and_seed_deterministic() {
        let policy = RetryPolicy {
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        let sample = |seed: u64| -> Vec<Duration> {
            let mut rng = StdRng::seed_from_u64(seed);
            (1..=3).map(|r| policy.delay(r, &mut rng)).collect()
        };
        assert_eq!(sample(7), sample(7));
        let mut rng = StdRng::seed_from_u64(7);
        for retry in 1..=3 {
            let jittered = policy.delay(retry, &mut rng);
            let mut no_jitter_rng = StdRng::seed_from_u64(0);
            let base = RetryPolicy {
                jitter: 0.0,
                ..policy.clone()
            }
            .delay(retry, &mut no_jitter_rng);
            assert!(jittered >= base);
            assert!(jittered.as_secs_f64() <= base.as_secs_f64() * 1.5 + 1e-9);
        }
    }

    #[test]
    fn run_retries_until_success() {
        let policy = RetryPolicy::fast(5);
        let mut rng = StdRng::seed_from_u64(0);
        let sleeper = RecordingSleeper::new();
        let mut calls = 0;
        let outcome = policy.run(&mut rng, &sleeper, |attempt| {
            calls += 1;
            if attempt < 3 {
                Err("transient")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(outcome.result.unwrap(), 3);
        assert_eq!(outcome.retries, 2);
        assert!(!outcome.interrupted);
        assert_eq!(calls, 3);
        assert_eq!(sleeper.naps().len(), 2);
    }

    #[test]
    fn run_surfaces_last_error_when_budget_spent() {
        let policy = RetryPolicy::fast(3);
        let mut rng = StdRng::seed_from_u64(0);
        let outcome = policy.run::<(), _>(&mut rng, &RecordingSleeper::new(), |attempt| {
            Err(format!("fail {attempt}"))
        });
        assert_eq!(outcome.result.unwrap_err(), "fail 3");
        assert_eq!(outcome.retries, 2);
    }

    #[test]
    fn triggered_token_interrupts_the_ladder() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_secs(30),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let token = StopToken::new();
        token.trigger();
        let mut rng = StdRng::seed_from_u64(0);
        let started = std::time::Instant::now();
        let outcome = policy.run::<(), _>(&mut rng, &token, |_| Err("down"));
        assert!(outcome.interrupted);
        assert_eq!(outcome.retries, 1);
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn token_sleep_times_out_normally_when_untriggered() {
        let token = StopToken::new();
        assert!(token.sleep(Duration::from_millis(5)));
        assert!(!token.is_stopped());
    }
}
