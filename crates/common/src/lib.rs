//! # cais-common
//!
//! Shared substrate for the CAIS (Context-Aware Intelligence Sharing)
//! workspace: timestamps, UUIDs, observable detection and shared error
//! types.
//!
//! The crates in this workspace deliberately avoid external dependencies
//! for these primitives (`chrono`, `uuid`, `regex`): threat-intelligence
//! interchange only needs RFC 3339 timestamps, v4/v5-style identifiers and
//! a handful of syntactic detectors (IP addresses, domains, hashes, CVE
//! identifiers), all of which are small, well-specified and implemented
//! here with exhaustive tests.
//!
//! # Examples
//!
//! ```
//! use cais_common::{Timestamp, Uuid, ObservableKind};
//!
//! let ts = Timestamp::parse_rfc3339("2017-09-13T00:00:00Z")?;
//! assert_eq!(ts.to_rfc3339(), "2017-09-13T00:00:00Z");
//!
//! let id = Uuid::new_v4();
//! assert_eq!(id.to_string().len(), 36);
//!
//! assert_eq!(
//!     ObservableKind::detect("CVE-2017-9805"),
//!     Some(ObservableKind::Cve)
//! );
//! # Ok::<(), cais_common::TimestampParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod observable;
pub mod resilience;
pub mod serve;
pub mod time;
pub mod uuid;

pub use frame::{read_frame, write_frame, MAX_FRAME};
pub use observable::{Observable, ObservableKind};
pub use time::{Age, Timestamp, TimestampParseError};
pub use uuid::{Uuid, UuidParseError};
