//! Syntactic detection and extraction of cyber observables.
//!
//! OSINT feeds deliver indicator values as bare strings (an IP address, a
//! domain, a file hash, a CVE identifier). [`ObservableKind::detect`]
//! classifies a single token and [`extract`] scans free text — such as an
//! advisory paragraph — and pulls out every observable it contains. The
//! detectors are deliberately hand-rolled rather than regex-based: each is
//! a few lines of explicit scanning code with exhaustive tests.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The syntactic category of an observable value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ObservableKind {
    /// An IPv4 address in dotted-quad notation.
    Ipv4,
    /// An IPv6 address (full or `::`-compressed hexadecimal form).
    Ipv6,
    /// A DNS domain name.
    Domain,
    /// A URL with an explicit scheme.
    Url,
    /// An e-mail address.
    Email,
    /// An MD5 digest (32 hex characters).
    Md5,
    /// A SHA-1 digest (40 hex characters).
    Sha1,
    /// A SHA-256 digest (64 hex characters).
    Sha256,
    /// A CVE identifier such as `CVE-2017-9805`.
    Cve,
}

impl ObservableKind {
    /// All observable kinds, in detection-priority order.
    pub const ALL: [ObservableKind; 9] = [
        ObservableKind::Cve,
        ObservableKind::Url,
        ObservableKind::Email,
        ObservableKind::Ipv4,
        ObservableKind::Ipv6,
        ObservableKind::Md5,
        ObservableKind::Sha1,
        ObservableKind::Sha256,
        ObservableKind::Domain,
    ];

    /// Classifies a single token, returning `None` when it matches no
    /// known observable syntax.
    ///
    /// Detection is prioritized: a value that could be read several ways
    /// is classified as the most specific kind (for example,
    /// `CVE-2017-9805` is a [`ObservableKind::Cve`], not a domain, and a
    /// 32-character hex string is an [`ObservableKind::Md5`], not a
    /// domain label).
    ///
    /// # Examples
    ///
    /// ```
    /// use cais_common::ObservableKind;
    ///
    /// assert_eq!(ObservableKind::detect("198.51.100.7"), Some(ObservableKind::Ipv4));
    /// assert_eq!(ObservableKind::detect("evil.example.com"), Some(ObservableKind::Domain));
    /// assert_eq!(ObservableKind::detect("hello world"), None);
    /// ```
    pub fn detect(token: &str) -> Option<ObservableKind> {
        let token = token.trim();
        if is_cve(token) {
            Some(ObservableKind::Cve)
        } else if is_url(token) {
            Some(ObservableKind::Url)
        } else if is_email(token) {
            Some(ObservableKind::Email)
        } else if is_ipv4(token) {
            Some(ObservableKind::Ipv4)
        } else if is_ipv6(token) {
            Some(ObservableKind::Ipv6)
        } else if let Some(kind) = detect_hash(token) {
            Some(kind)
        } else if is_domain(token) {
            Some(ObservableKind::Domain)
        } else {
            None
        }
    }

    /// Returns the STIX 2.0 cyber-observable object type corresponding to
    /// this kind (for example `ipv4-addr` or `file`).
    pub fn stix_object_type(self) -> &'static str {
        match self {
            ObservableKind::Ipv4 => "ipv4-addr",
            ObservableKind::Ipv6 => "ipv6-addr",
            ObservableKind::Domain => "domain-name",
            ObservableKind::Url => "url",
            ObservableKind::Email => "email-addr",
            ObservableKind::Md5 | ObservableKind::Sha1 | ObservableKind::Sha256 => "file",
            ObservableKind::Cve => "vulnerability",
        }
    }

    /// Returns the MISP attribute type conventionally used for this kind.
    pub fn misp_attribute_type(self) -> &'static str {
        match self {
            ObservableKind::Ipv4 | ObservableKind::Ipv6 => "ip-dst",
            ObservableKind::Domain => "domain",
            ObservableKind::Url => "url",
            ObservableKind::Email => "email-src",
            ObservableKind::Md5 => "md5",
            ObservableKind::Sha1 => "sha1",
            ObservableKind::Sha256 => "sha256",
            ObservableKind::Cve => "vulnerability",
        }
    }
}

impl fmt::Display for ObservableKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ObservableKind::Ipv4 => "ipv4",
            ObservableKind::Ipv6 => "ipv6",
            ObservableKind::Domain => "domain",
            ObservableKind::Url => "url",
            ObservableKind::Email => "email",
            ObservableKind::Md5 => "md5",
            ObservableKind::Sha1 => "sha1",
            ObservableKind::Sha256 => "sha256",
            ObservableKind::Cve => "cve",
        };
        f.write_str(name)
    }
}

/// An observable value together with its detected kind.
///
/// # Examples
///
/// ```
/// use cais_common::{Observable, ObservableKind};
///
/// let obs = Observable::parse("203.0.113.9").expect("an IPv4 address");
/// assert_eq!(obs.kind(), ObservableKind::Ipv4);
/// assert_eq!(obs.value(), "203.0.113.9");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Observable {
    kind: ObservableKind,
    value: String,
}

impl Observable {
    /// Creates an observable with an explicitly known kind.
    ///
    /// The value is normalized: surrounding whitespace is trimmed, and
    /// case-insensitive kinds (domains, hashes, e-mail, CVE) are
    /// lowercased — except CVE identifiers, which are uppercased by
    /// convention.
    pub fn new(kind: ObservableKind, value: impl Into<String>) -> Self {
        let raw = value.into();
        let trimmed = raw.trim();
        let value = match kind {
            ObservableKind::Domain
            | ObservableKind::Email
            | ObservableKind::Md5
            | ObservableKind::Sha1
            | ObservableKind::Sha256 => trimmed.to_ascii_lowercase(),
            ObservableKind::Cve => trimmed.to_ascii_uppercase(),
            _ => trimmed.to_owned(),
        };
        Observable { kind, value }
    }

    /// Detects the kind of `token` and builds an observable from it.
    ///
    /// Returns `None` when the token matches no known observable syntax.
    pub fn parse(token: &str) -> Option<Self> {
        ObservableKind::detect(token).map(|kind| Observable::new(kind, token))
    }

    /// The detected kind.
    pub fn kind(&self) -> ObservableKind {
        self.kind
    }

    /// The normalized value.
    pub fn value(&self) -> &str {
        &self.value
    }

    /// A stable deduplication key: kind plus normalized value.
    pub fn dedup_key(&self) -> String {
        format!("{}:{}", self.kind, self.value)
    }
}

impl fmt::Display for Observable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.value, self.kind)
    }
}

/// Extracts every observable appearing in free text.
///
/// Tokens are split on whitespace and common punctuation, with trailing
/// sentence punctuation stripped, so observables embedded in prose
/// (`"... exploited CVE-2017-9805, contacting 203.0.113.9."`) are found.
///
/// # Examples
///
/// ```
/// use cais_common::{observable::extract, ObservableKind};
///
/// let found = extract("Struts RCE CVE-2017-9805 beacons to c2.evil.example.");
/// assert_eq!(found.len(), 2);
/// assert_eq!(found[0].kind(), ObservableKind::Cve);
/// assert_eq!(found[1].value(), "c2.evil.example");
/// ```
pub fn extract(text: &str) -> Vec<Observable> {
    let mut out = Vec::new();
    for raw in text.split(|c: char| {
        c.is_whitespace()
            || matches!(
                c,
                ',' | ';' | '(' | ')' | '[' | ']' | '<' | '>' | '"' | '\''
            )
    }) {
        let token = raw
            .trim_matches(|c: char| matches!(c, '.' | '!' | '?' | ':') && !raw.starts_with("http"));
        // Don't strip ':' from URLs.
        let token = if is_url(raw) {
            raw.trim_end_matches(['.', '!', '?'])
        } else {
            token
        };
        if token.is_empty() {
            continue;
        }
        if let Some(obs) = Observable::parse(token) {
            out.push(obs);
        }
    }
    out
}

fn is_ipv4(s: &str) -> bool {
    let mut parts = 0;
    for part in s.split('.') {
        parts += 1;
        if parts > 4 || part.is_empty() || part.len() > 3 {
            return false;
        }
        if !part.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
        if part.len() > 1 && part.starts_with('0') {
            return false; // no leading zeros
        }
        match part.parse::<u32>() {
            Ok(v) if v <= 255 => {}
            _ => return false,
        }
    }
    parts == 4
}

fn is_ipv6(s: &str) -> bool {
    // Accepts full and `::`-compressed forms; rejects IPv4-mapped tails
    // for simplicity (they are rare in feed data).
    if !s.contains(':') {
        return false;
    }
    let double_colons = s.matches("::").count();
    if double_colons > 1 || s.contains(":::") {
        return false;
    }
    let groups: Vec<&str> = s.split(':').collect();
    if groups.len() > 8 {
        return false;
    }
    let mut nonempty = 0;
    for g in &groups {
        if g.is_empty() {
            continue;
        }
        if g.len() > 4 || !g.bytes().all(|b| b.is_ascii_hexdigit()) {
            return false;
        }
        nonempty += 1;
    }
    if double_colons == 1 {
        (1..8).contains(&nonempty)
    } else {
        groups.len() == 8 && nonempty == 8
    }
}

fn is_domain(s: &str) -> bool {
    if s.len() < 4 || s.len() > 253 || !s.contains('.') {
        return false;
    }
    if s.starts_with('.') || s.ends_with('.') || s.starts_with('-') {
        return false;
    }
    let labels: Vec<&str> = s.split('.').collect();
    if labels.len() < 2 {
        return false;
    }
    for label in &labels {
        if label.is_empty() || label.len() > 63 {
            return false;
        }
        if label.starts_with('-') || label.ends_with('-') {
            return false;
        }
        if !label
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return false;
        }
    }
    // The top-level label must be alphabetic (rules out IPv4 and version
    // strings like "1.2.3.4" or "v1.2").
    let tld = labels.last().expect("at least two labels");
    tld.len() >= 2 && tld.bytes().all(|b| b.is_ascii_alphabetic())
}

fn is_url(s: &str) -> bool {
    let lower = s.to_ascii_lowercase();
    for scheme in ["http://", "https://", "ftp://", "hxxp://", "hxxps://"] {
        if let Some(rest) = lower.strip_prefix(scheme) {
            return !rest.is_empty() && !rest.starts_with('/');
        }
    }
    false
}

fn is_email(s: &str) -> bool {
    let Some((local, domain)) = s.split_once('@') else {
        return false;
    };
    if local.is_empty() || local.len() > 64 || s.matches('@').count() != 1 {
        return false;
    }
    if !local
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-' | b'+'))
    {
        return false;
    }
    is_domain(domain)
}

fn detect_hash(s: &str) -> Option<ObservableKind> {
    if !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    // Require at least one letter so a 32-digit decimal number is not
    // mistaken for an MD5.
    if !s.bytes().any(|b| b.is_ascii_alphabetic()) {
        return None;
    }
    match s.len() {
        32 => Some(ObservableKind::Md5),
        40 => Some(ObservableKind::Sha1),
        64 => Some(ObservableKind::Sha256),
        _ => None,
    }
}

fn is_cve(s: &str) -> bool {
    let upper = s.to_ascii_uppercase();
    let Some(rest) = upper.strip_prefix("CVE-") else {
        return false;
    };
    let Some((year, seq)) = rest.split_once('-') else {
        return false;
    };
    year.len() == 4
        && year.bytes().all(|b| b.is_ascii_digit())
        && seq.len() >= 4
        && seq.len() <= 7
        && seq.bytes().all(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_ipv4() {
        assert_eq!(
            ObservableKind::detect("0.0.0.0"),
            Some(ObservableKind::Ipv4)
        );
        assert_eq!(
            ObservableKind::detect("255.255.255.255"),
            Some(ObservableKind::Ipv4)
        );
        assert_eq!(
            ObservableKind::detect("198.51.100.7"),
            Some(ObservableKind::Ipv4)
        );
    }

    #[test]
    fn reject_bad_ipv4() {
        for s in [
            "256.1.1.1",
            "1.2.3",
            "1.2.3.4.5",
            "01.2.3.4",
            "a.b.c.d",
            "1..2.3",
        ] {
            assert_ne!(
                ObservableKind::detect(s),
                Some(ObservableKind::Ipv4),
                "input {s}"
            );
        }
    }

    #[test]
    fn detect_ipv6() {
        for s in [
            "2001:db8:0:0:0:0:0:1",
            "2001:db8::1",
            "::1",
            "fe80::a1b2:c3d4",
        ] {
            assert_eq!(ObservableKind::detect(s), Some(ObservableKind::Ipv6), "{s}");
        }
    }

    #[test]
    fn reject_bad_ipv6() {
        for s in ["2001:db8", ":::1", "2001::db8::1", "12345::1", "g::1"] {
            assert_ne!(ObservableKind::detect(s), Some(ObservableKind::Ipv6), "{s}");
        }
    }

    #[test]
    fn detect_domain() {
        for s in [
            "example.com",
            "evil.example.co.uk",
            "xn--bcher-kva.example",
            "a-b.example.org",
        ] {
            assert_eq!(
                ObservableKind::detect(s),
                Some(ObservableKind::Domain),
                "{s}"
            );
        }
    }

    #[test]
    fn reject_bad_domain() {
        for s in [
            "localhost",
            "example.",
            ".example.com",
            "exa mple.com",
            "v1.2",
            "-bad.example.com",
            "bad-.example.com",
            "example.c",
        ] {
            assert_ne!(
                ObservableKind::detect(s),
                Some(ObservableKind::Domain),
                "{s}"
            );
        }
    }

    #[test]
    fn detect_url() {
        for s in [
            "http://evil.example/payload",
            "https://evil.example",
            "hxxp://defanged.example/x", // defanged URLs common in OSINT reports
            "ftp://files.example/drop.bin",
        ] {
            assert_eq!(ObservableKind::detect(s), Some(ObservableKind::Url), "{s}");
        }
    }

    #[test]
    fn detect_email() {
        assert_eq!(
            ObservableKind::detect("phisher+x@evil.example.com"),
            Some(ObservableKind::Email)
        );
        assert_ne!(
            ObservableKind::detect("not@an@email.com"),
            Some(ObservableKind::Email)
        );
    }

    #[test]
    fn detect_hashes() {
        let md5 = "d41d8cd98f00b204e9800998ecf8427e";
        let sha1 = "da39a3ee5e6b4b0d3255bfef95601890afd80709";
        let sha256 = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
        assert_eq!(ObservableKind::detect(md5), Some(ObservableKind::Md5));
        assert_eq!(ObservableKind::detect(sha1), Some(ObservableKind::Sha1));
        assert_eq!(ObservableKind::detect(sha256), Some(ObservableKind::Sha256));
        // 33 hex chars is nothing.
        assert_eq!(ObservableKind::detect(&format!("{md5}a")), None);
        // all-digit strings of hash length are not hashes
        assert_eq!(
            ObservableKind::detect("12345678901234567890123456789012"),
            None
        );
    }

    #[test]
    fn detect_cve() {
        assert_eq!(
            ObservableKind::detect("CVE-2017-9805"),
            Some(ObservableKind::Cve)
        );
        assert_eq!(
            ObservableKind::detect("cve-2021-44228"),
            Some(ObservableKind::Cve)
        );
        for s in [
            "CVE-17-9805",
            "CVE-2017-1",
            "CVE-2017-98051234",
            "CVE20179805",
        ] {
            assert_ne!(ObservableKind::detect(s), Some(ObservableKind::Cve), "{s}");
        }
    }

    #[test]
    fn normalization() {
        let d = Observable::new(ObservableKind::Domain, "  EVIL.Example.COM ");
        assert_eq!(d.value(), "evil.example.com");
        let c = Observable::new(ObservableKind::Cve, "cve-2017-9805");
        assert_eq!(c.value(), "CVE-2017-9805");
        let h = Observable::new(ObservableKind::Md5, "D41D8CD98F00B204E9800998ECF8427E");
        assert_eq!(h.value(), "d41d8cd98f00b204e9800998ecf8427e");
    }

    #[test]
    fn dedup_key_is_stable() {
        let a = Observable::new(ObservableKind::Domain, "Evil.Example.COM");
        let b = Observable::new(ObservableKind::Domain, "evil.example.com");
        assert_eq!(a.dedup_key(), b.dedup_key());
    }

    #[test]
    fn extract_from_prose() {
        let text = "Apache Struts RCE (CVE-2017-9805) observed: c2 at 203.0.113.9, \
                    domain c2.evil.example, payload d41d8cd98f00b204e9800998ecf8427e.";
        let found = extract(text);
        let kinds: Vec<ObservableKind> = found.iter().map(Observable::kind).collect();
        assert!(kinds.contains(&ObservableKind::Cve));
        assert!(kinds.contains(&ObservableKind::Ipv4));
        assert!(kinds.contains(&ObservableKind::Domain));
        assert!(kinds.contains(&ObservableKind::Md5));
        assert_eq!(found.len(), 4);
    }

    #[test]
    fn extract_urls_keep_punctuation_inside() {
        let found = extract("payload hosted at http://evil.example/a.php.");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind(), ObservableKind::Url);
        assert_eq!(found[0].value(), "http://evil.example/a.php");
    }

    #[test]
    fn extract_from_empty_text() {
        assert!(extract("").is_empty());
        assert!(extract("no indicators in this sentence at all").is_empty());
    }

    #[test]
    fn stix_and_misp_mappings_are_total() {
        for kind in ObservableKind::ALL {
            assert!(!kind.stix_object_type().is_empty());
            assert!(!kind.misp_attribute_type().is_empty());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let obs = Observable::parse("198.51.100.7").unwrap();
        let json = serde_json::to_string(&obs).unwrap();
        let back: Observable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, obs);
    }
}
