//! Minimal UUID implementation (random v4 and name-derived v5-style).
//!
//! STIX 2.0 object identifiers have the form `<type>--<uuid>` and MISP
//! events and attributes are keyed by UUIDs. This module provides exactly
//! what the workspace needs: random version-4 UUIDs, deterministic
//! name-derived UUIDs (for stable deduplication keys), parsing and
//! canonical hyphenated formatting.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A 128-bit universally unique identifier.
///
/// # Examples
///
/// ```
/// use cais_common::Uuid;
///
/// let a = Uuid::new_v4();
/// let b = Uuid::new_v4();
/// assert_ne!(a, b);
///
/// let parsed: Uuid = a.to_string().parse()?;
/// assert_eq!(parsed, a);
/// # Ok::<(), cais_common::UuidParseError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Uuid([u8; 16]);

impl Uuid {
    /// The nil UUID, `00000000-0000-0000-0000-000000000000`.
    pub const NIL: Uuid = Uuid([0; 16]);

    /// Creates a random version-4 UUID using the thread-local RNG.
    pub fn new_v4() -> Self {
        let mut bytes = [0u8; 16];
        rand::Rng::fill(&mut rand::thread_rng(), &mut bytes);
        Uuid::from_random_bytes(bytes)
    }

    /// Creates a version-4 UUID from caller-supplied random bytes.
    ///
    /// The version and variant bits are overwritten as RFC 4122 requires,
    /// so any byte source (including a seeded RNG, for reproducible
    /// simulations) yields a well-formed UUID.
    pub fn from_random_bytes(mut bytes: [u8; 16]) -> Self {
        bytes[6] = (bytes[6] & 0x0f) | 0x40; // version 4
        bytes[8] = (bytes[8] & 0x3f) | 0x80; // RFC 4122 variant
        Uuid(bytes)
    }

    /// Creates a deterministic UUID derived from a name.
    ///
    /// This plays the role of RFC 4122 version-5 UUIDs: equal names always
    /// produce equal UUIDs, so it is suitable for content-addressed
    /// identifiers (for example, deduplication keys for identical feed
    /// records). The digest is a 128-bit FNV-1a variant rather than SHA-1;
    /// the workspace only relies on determinism and dispersion, not on
    /// cryptographic strength.
    ///
    /// # Examples
    ///
    /// ```
    /// use cais_common::Uuid;
    /// let a = Uuid::new_v5("indicator:198.51.100.7");
    /// let b = Uuid::new_v5("indicator:198.51.100.7");
    /// assert_eq!(a, b);
    /// assert_ne!(a, Uuid::new_v5("indicator:198.51.100.8"));
    /// ```
    pub fn new_v5(name: &str) -> Self {
        // Two independent 64-bit FNV-1a streams with distinct offsets give
        // a well-dispersed 128-bit digest.
        const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
        const OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut a = OFFSET_A;
        let mut b = OFFSET_B;
        for &byte in name.as_bytes() {
            a = (a ^ u64::from(byte)).wrapping_mul(PRIME);
            b = (b ^ u64::from(byte.rotate_left(3))).wrapping_mul(PRIME);
            b = b.rotate_left(17);
        }
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&a.to_be_bytes());
        bytes[8..].copy_from_slice(&b.to_be_bytes());
        bytes[6] = (bytes[6] & 0x0f) | 0x50; // version 5
        bytes[8] = (bytes[8] & 0x3f) | 0x80;
        Uuid(bytes)
    }

    /// Returns the raw big-endian bytes.
    pub const fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Returns the RFC 4122 version number encoded in this UUID.
    pub const fn version(&self) -> u8 {
        self.0[6] >> 4
    }

    /// Returns `true` if this is the nil UUID.
    pub fn is_nil(&self) -> bool {
        self.0 == [0; 16]
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut out = [0u8; 36];
        let mut pos = 0;
        for (i, &byte) in self.0.iter().enumerate() {
            if matches!(i, 4 | 6 | 8 | 10) {
                out[pos] = b'-';
                pos += 1;
            }
            out[pos] = HEX[usize::from(byte >> 4)];
            out[pos + 1] = HEX[usize::from(byte & 0x0f)];
            pos += 2;
        }
        // All bytes written are ASCII.
        f.write_str(std::str::from_utf8(&out).expect("ascii"))
    }
}

impl FromStr for Uuid {
    type Err = UuidParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || UuidParseError::new(s);
        let bytes = s.as_bytes();
        if bytes.len() != 36 {
            return Err(err());
        }
        let mut out = [0u8; 16];
        let mut oi = 0;
        let mut i = 0;
        while i < 36 {
            if matches!(i, 8 | 13 | 18 | 23) {
                if bytes[i] != b'-' {
                    return Err(err());
                }
                i += 1;
                continue;
            }
            let hi = hex_val(bytes[i]).ok_or_else(err)?;
            let lo = hex_val(bytes[i + 1]).ok_or_else(err)?;
            out[oi] = (hi << 4) | lo;
            oi += 1;
            i += 2;
        }
        Ok(Uuid(out))
    }
}

impl Serialize for Uuid {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for Uuid {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Error returned when a UUID string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UuidParseError {
    input: String,
}

impl UuidParseError {
    fn new(input: &str) -> Self {
        UuidParseError {
            input: input.to_owned(),
        }
    }

    /// The input that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for UuidParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid UUID: {:?}", self.input)
    }
}

impl std::error::Error for UuidParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn v4_has_version_and_variant_bits() {
        for _ in 0..64 {
            let u = Uuid::new_v4();
            assert_eq!(u.version(), 4);
            assert_eq!(u.as_bytes()[8] & 0xc0, 0x80);
        }
    }

    #[test]
    fn v4_uuids_are_distinct() {
        let set: HashSet<Uuid> = (0..1_000).map(|_| Uuid::new_v4()).collect();
        assert_eq!(set.len(), 1_000);
    }

    #[test]
    fn display_format_is_canonical() {
        let u = Uuid([
            0x55, 0x0e, 0x84, 0x00, 0xe2, 0x9b, 0x41, 0xd4, 0xa7, 0x16, 0x44, 0x66, 0x55, 0x44,
            0x00, 0x00,
        ]);
        assert_eq!(u.to_string(), "550e8400-e29b-41d4-a716-446655440000");
    }

    #[test]
    fn parse_roundtrip() {
        let u = Uuid::new_v4();
        let parsed: Uuid = u.to_string().parse().unwrap();
        assert_eq!(parsed, u);
        // Uppercase input is accepted.
        let upper: Uuid = u.to_string().to_uppercase().parse().unwrap();
        assert_eq!(upper, u);
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in [
            "",
            "550e8400e29b41d4a716446655440000",
            "550e8400-e29b-41d4-a716-44665544000",
            "550e8400-e29b-41d4-a716-4466554400000",
            "550e8400_e29b_41d4_a716_446655440000",
            "zzze8400-e29b-41d4-a716-446655440000",
        ] {
            assert!(Uuid::from_str(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn v5_is_deterministic_and_disperses() {
        let a = Uuid::new_v5("misp-event:1");
        assert_eq!(a, Uuid::new_v5("misp-event:1"));
        assert_eq!(a.version(), 5);
        let set: HashSet<Uuid> = (0..1_000).map(|i| Uuid::new_v5(&format!("n{i}"))).collect();
        assert_eq!(set.len(), 1_000);
    }

    #[test]
    fn nil_is_nil() {
        assert!(Uuid::NIL.is_nil());
        assert!(!Uuid::new_v4().is_nil());
        assert_eq!(
            Uuid::NIL.to_string(),
            "00000000-0000-0000-0000-000000000000"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let u = Uuid::new_v4();
        let json = serde_json::to_string(&u).unwrap();
        let back: Uuid = serde_json::from_str(&json).unwrap();
        assert_eq!(back, u);
    }

    #[test]
    fn seeded_random_bytes_are_reproducible() {
        use rand::{Rng, SeedableRng};
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        r1.fill(&mut b1);
        r2.fill(&mut b2);
        assert_eq!(Uuid::from_random_bytes(b1), Uuid::from_random_bytes(b2));
    }
}
