//! RFC 3339 timestamps and age bucketing.
//!
//! STIX 2.0 and MISP both exchange timestamps as RFC 3339 / ISO 8601
//! strings in UTC (`2017-09-13T00:00:00.000Z`). [`Timestamp`] stores
//! milliseconds since the Unix epoch and converts to and from that string
//! form without external dependencies, using the standard civil-calendar
//! algorithms.
//!
//! [`Age`] buckets a timestamp relative to "now" into the categories the
//! paper's heuristic tables use (`last_24h`, `last_week`, `last_month`,
//! `last_year`, `other`).

use std::fmt;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Milliseconds in one second.
const MILLIS_PER_SEC: i64 = 1_000;
/// Milliseconds in one minute.
const MILLIS_PER_MIN: i64 = 60 * MILLIS_PER_SEC;
/// Milliseconds in one hour.
const MILLIS_PER_HOUR: i64 = 60 * MILLIS_PER_MIN;
/// Milliseconds in one day.
pub const MILLIS_PER_DAY: i64 = 24 * MILLIS_PER_HOUR;

/// A point in time, stored as milliseconds since the Unix epoch (UTC).
///
/// `Timestamp` is `Copy`, totally ordered, hashable and serializes as an
/// RFC 3339 string, which makes it directly usable inside STIX and MISP
/// JSON documents.
///
/// # Examples
///
/// ```
/// use cais_common::Timestamp;
///
/// let t = Timestamp::parse_rfc3339("2017-09-13T12:30:45.123Z")?;
/// assert_eq!(t.to_rfc3339(), "2017-09-13T12:30:45.123Z");
/// assert!(t < Timestamp::parse_rfc3339("2018-01-01T00:00:00Z")?);
/// # Ok::<(), cais_common::TimestampParseError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The Unix epoch, `1970-01-01T00:00:00Z`.
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from milliseconds since the Unix epoch.
    ///
    /// # Examples
    ///
    /// ```
    /// use cais_common::Timestamp;
    /// let t = Timestamp::from_unix_millis(0);
    /// assert_eq!(t, Timestamp::EPOCH);
    /// ```
    pub const fn from_unix_millis(millis: i64) -> Self {
        Timestamp(millis)
    }

    /// Creates a timestamp from whole seconds since the Unix epoch.
    pub const fn from_unix_secs(secs: i64) -> Self {
        Timestamp(secs * MILLIS_PER_SEC)
    }

    /// Creates a timestamp from a civil date and time-of-day in UTC.
    ///
    /// Months are 1-based (January = 1) and days are 1-based.
    ///
    /// # Examples
    ///
    /// ```
    /// use cais_common::Timestamp;
    /// let t = Timestamp::from_ymd_hms(2017, 9, 13, 0, 0, 0);
    /// assert_eq!(t.to_rfc3339(), "2017-09-13T00:00:00Z");
    /// ```
    pub fn from_ymd_hms(year: i32, month: u32, day: u32, hour: u32, min: u32, sec: u32) -> Self {
        let days = days_from_civil(year, month, day);
        let millis = days * MILLIS_PER_DAY
            + i64::from(hour) * MILLIS_PER_HOUR
            + i64::from(min) * MILLIS_PER_MIN
            + i64::from(sec) * MILLIS_PER_SEC;
        Timestamp(millis)
    }

    /// Returns the current wall-clock time.
    pub fn now() -> Self {
        let since_epoch = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default();
        Timestamp(since_epoch.as_millis() as i64)
    }

    /// Returns milliseconds since the Unix epoch.
    pub const fn unix_millis(self) -> i64 {
        self.0
    }

    /// Returns whole seconds since the Unix epoch, truncating toward
    /// negative infinity.
    pub const fn unix_secs(self) -> i64 {
        self.0.div_euclid(MILLIS_PER_SEC)
    }

    /// Returns a timestamp advanced by the given number of milliseconds
    /// (which may be negative).
    ///
    /// # Examples
    ///
    /// ```
    /// use cais_common::Timestamp;
    /// let t = Timestamp::EPOCH.add_millis(1_000);
    /// assert_eq!(t.unix_secs(), 1);
    /// ```
    pub const fn add_millis(self, millis: i64) -> Self {
        Timestamp(self.0 + millis)
    }

    /// Returns a timestamp advanced by the given number of whole days.
    pub const fn add_days(self, days: i64) -> Self {
        Timestamp(self.0 + days * MILLIS_PER_DAY)
    }

    /// Returns the signed difference `self - other` in milliseconds.
    pub const fn millis_since(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }

    /// Parses an RFC 3339 timestamp in UTC.
    ///
    /// Accepts `YYYY-MM-DDTHH:MM:SS[.fff...]Z` (any number of fractional
    /// digits; precision beyond milliseconds is truncated), a `+00:00` /
    /// `-00:00` offset suffix, a lowercase `t`/`z`, and a bare date
    /// `YYYY-MM-DD` (interpreted as midnight UTC). Non-zero offsets are
    /// rejected: threat-intelligence interchange is UTC-only.
    ///
    /// # Errors
    ///
    /// Returns [`TimestampParseError`] when the input is not a valid UTC
    /// RFC 3339 timestamp or the date does not exist in the proleptic
    /// Gregorian calendar.
    ///
    /// # Examples
    ///
    /// ```
    /// use cais_common::Timestamp;
    /// let a = Timestamp::parse_rfc3339("2017-09-13T00:00:00Z")?;
    /// let b = Timestamp::parse_rfc3339("2017-09-13")?;
    /// assert_eq!(a, b);
    /// # Ok::<(), cais_common::TimestampParseError>(())
    /// ```
    pub fn parse_rfc3339(input: &str) -> Result<Self, TimestampParseError> {
        let bytes = input.as_bytes();
        let err = || TimestampParseError::new(input);

        // Date part: YYYY-MM-DD
        if bytes.len() < 10 || bytes[4] != b'-' || bytes[7] != b'-' {
            return Err(err());
        }
        let year: i32 = input[0..4].parse().map_err(|_| err())?;
        let month: u32 = digits2(&bytes[5..7]).ok_or_else(err)?;
        let day: u32 = digits2(&bytes[8..10]).ok_or_else(err)?;
        if !valid_civil(year, month, day) {
            return Err(err());
        }

        if bytes.len() == 10 {
            return Ok(Timestamp::from_ymd_hms(year, month, day, 0, 0, 0));
        }

        // Time part: THH:MM:SS
        if bytes.len() < 20 || (bytes[10] != b'T' && bytes[10] != b't' && bytes[10] != b' ') {
            return Err(err());
        }
        if bytes[13] != b':' || bytes[16] != b':' {
            return Err(err());
        }
        let hour: u32 = digits2(&bytes[11..13]).ok_or_else(err)?;
        let min: u32 = digits2(&bytes[14..16]).ok_or_else(err)?;
        let sec: u32 = digits2(&bytes[17..19]).ok_or_else(err)?;
        if hour > 23 || min > 59 || sec > 60 {
            return Err(err());
        }
        // Leap seconds are clamped to :59, matching common practice.
        let sec = sec.min(59);

        let mut pos = 19;
        let mut frac_millis: i64 = 0;
        if bytes.get(pos) == Some(&b'.') {
            pos += 1;
            let start = pos;
            while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                pos += 1;
            }
            if pos == start {
                return Err(err());
            }
            // Use at most the first 3 digits (millisecond precision).
            let digits = &input[start..pos.min(start + 3)];
            let mut value: i64 = digits.parse().map_err(|_| err())?;
            for _ in digits.len()..3 {
                value *= 10;
            }
            frac_millis = value;
        }

        // Offset: Z | z | +00:00 | -00:00
        let rest = &input[pos..];
        match rest {
            "Z" | "z" | "+00:00" | "-00:00" | "+0000" | "-0000" => {}
            _ => return Err(err()),
        }

        Ok(Timestamp::from_ymd_hms(year, month, day, hour, min, sec).add_millis(frac_millis))
    }

    /// Formats the timestamp as RFC 3339 in UTC.
    ///
    /// The fractional part is included (exactly three digits) only when
    /// the timestamp has sub-second precision, matching MISP's and STIX's
    /// conventional output.
    pub fn to_rfc3339(self) -> String {
        let (year, month, day, hour, min, sec, millis) = self.to_civil();
        if millis == 0 {
            format!("{year:04}-{month:02}-{day:02}T{hour:02}:{min:02}:{sec:02}Z")
        } else {
            format!("{year:04}-{month:02}-{day:02}T{hour:02}:{min:02}:{sec:02}.{millis:03}Z")
        }
    }

    /// Decomposes the timestamp into civil UTC fields
    /// `(year, month, day, hour, minute, second, millisecond)`.
    pub fn to_civil(self) -> (i32, u32, u32, u32, u32, u32, u32) {
        let days = self.0.div_euclid(MILLIS_PER_DAY);
        let mut rem = self.0.rem_euclid(MILLIS_PER_DAY);
        let (year, month, day) = civil_from_days(days);
        let hour = (rem / MILLIS_PER_HOUR) as u32;
        rem %= MILLIS_PER_HOUR;
        let min = (rem / MILLIS_PER_MIN) as u32;
        rem %= MILLIS_PER_MIN;
        let sec = (rem / MILLIS_PER_SEC) as u32;
        let millis = (rem % MILLIS_PER_SEC) as u32;
        (year, month, day, hour, min, sec, millis)
    }

    /// Buckets this timestamp's age relative to `now`.
    ///
    /// Future timestamps (`self > now`) are bucketed as
    /// [`Age::Last24Hours`]: an indicator stamped slightly ahead of the
    /// local clock is still "fresh".
    pub fn age_at(self, now: Timestamp) -> Age {
        Age::from_delta_millis(now.millis_since(self))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_rfc3339())
    }
}

impl Serialize for Timestamp {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_rfc3339())
    }
}

impl<'de> Deserialize<'de> for Timestamp {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Timestamp::parse_rfc3339(&s).map_err(serde::de::Error::custom)
    }
}

/// Error returned when an RFC 3339 timestamp cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimestampParseError {
    input: String,
}

impl TimestampParseError {
    fn new(input: &str) -> Self {
        TimestampParseError {
            input: input.to_owned(),
        }
    }

    /// The input that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for TimestampParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid RFC 3339 timestamp: {:?}", self.input)
    }
}

impl std::error::Error for TimestampParseError {}

/// Age bucket of an event relative to the evaluation time.
///
/// These are exactly the buckets the paper's Table IV uses for the
/// `modified`/`created` and `valid_from` features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Age {
    /// Within the last 24 hours (or in the future).
    Last24Hours,
    /// Older than 24 hours but within the last 7 days.
    LastWeek,
    /// Older than 7 days but within the last 30 days.
    LastMonth,
    /// Older than 30 days but within the last 365 days.
    LastYear,
    /// Older than 365 days.
    Older,
}

impl Age {
    /// Buckets a `now - then` difference in milliseconds.
    ///
    /// # Examples
    ///
    /// ```
    /// use cais_common::Age;
    /// assert_eq!(Age::from_delta_millis(0), Age::Last24Hours);
    /// assert_eq!(Age::from_delta_millis(8 * 24 * 3_600_000), Age::LastMonth);
    /// ```
    pub fn from_delta_millis(delta: i64) -> Age {
        if delta <= MILLIS_PER_DAY {
            Age::Last24Hours
        } else if delta <= 7 * MILLIS_PER_DAY {
            Age::LastWeek
        } else if delta <= 30 * MILLIS_PER_DAY {
            Age::LastMonth
        } else if delta <= 365 * MILLIS_PER_DAY {
            Age::LastYear
        } else {
            Age::Older
        }
    }
}

impl fmt::Display for Age {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Age::Last24Hours => "last_24h",
            Age::LastWeek => "last_week",
            Age::LastMonth => "last_month",
            Age::LastYear => "last_year",
            Age::Older => "other",
        };
        f.write_str(name)
    }
}

fn digits2(bytes: &[u8]) -> Option<u32> {
    if bytes.len() == 2 && bytes[0].is_ascii_digit() && bytes[1].is_ascii_digit() {
        Some(u32::from(bytes[0] - b'0') * 10 + u32::from(bytes[1] - b'0'))
    } else {
        None
    }
}

fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(year) => 29,
        2 => 28,
        _ => 0,
    }
}

fn valid_civil(year: i32, month: u32, day: u32) -> bool {
    (1..=12).contains(&month) && day >= 1 && day <= days_in_month(year, month)
}

/// Days since the Unix epoch for a civil date (Howard Hinnant's
/// `days_from_civil` algorithm, proleptic Gregorian calendar).
fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(month);
    let d = i64::from(day);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for a number of days since the Unix epoch (Howard Hinnant's
/// `civil_from_days` algorithm).
fn civil_from_days(days: i64) -> (i32, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_roundtrip() {
        assert_eq!(Timestamp::EPOCH.to_rfc3339(), "1970-01-01T00:00:00Z");
        assert_eq!(
            Timestamp::parse_rfc3339("1970-01-01T00:00:00Z").unwrap(),
            Timestamp::EPOCH
        );
    }

    #[test]
    fn parse_paper_use_case_date() {
        // CVE-2017-9805 created / last modified date from Section IV-B.
        let t = Timestamp::parse_rfc3339("2017-09-13T00:00:00Z").unwrap();
        let (y, m, d, ..) = t.to_civil();
        assert_eq!((y, m, d), (2017, 9, 13));
    }

    #[test]
    fn parse_bare_date_is_midnight() {
        let a = Timestamp::parse_rfc3339("2017-09-13").unwrap();
        let b = Timestamp::parse_rfc3339("2017-09-13T00:00:00Z").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_fractional_seconds() {
        let t = Timestamp::parse_rfc3339("2020-02-29T23:59:59.123Z").unwrap();
        assert_eq!(t.to_rfc3339(), "2020-02-29T23:59:59.123Z");
        // More precision than milliseconds is truncated.
        let u = Timestamp::parse_rfc3339("2020-02-29T23:59:59.123456Z").unwrap();
        assert_eq!(t, u);
        // Fewer digits are scaled up.
        let v = Timestamp::parse_rfc3339("2020-02-29T23:59:59.1Z").unwrap();
        assert_eq!(v.to_rfc3339(), "2020-02-29T23:59:59.100Z");
    }

    #[test]
    fn parse_zero_offsets() {
        for s in [
            "2021-01-02T03:04:05Z",
            "2021-01-02t03:04:05z",
            "2021-01-02T03:04:05+00:00",
            "2021-01-02T03:04:05-00:00",
        ] {
            let t = Timestamp::parse_rfc3339(s).unwrap();
            assert_eq!(t.to_rfc3339(), "2021-01-02T03:04:05Z", "input {s}");
        }
    }

    #[test]
    fn parse_rejects_nonzero_offset() {
        assert!(Timestamp::parse_rfc3339("2021-01-02T03:04:05+02:00").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "not a date",
            "2021-13-01T00:00:00Z",
            "2021-00-10T00:00:00Z",
            "2021-02-30T00:00:00Z",
            "2021-01-02T24:00:00Z",
            "2021-01-02T00:60:00Z",
            "2021-01-02T00:00:00",
            "2021-01-02T00:00:00.Z",
            "2021-1-2T00:00:00Z",
        ] {
            assert!(Timestamp::parse_rfc3339(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn leap_year_handling() {
        assert!(Timestamp::parse_rfc3339("2020-02-29T00:00:00Z").is_ok());
        assert!(Timestamp::parse_rfc3339("2019-02-29T00:00:00Z").is_err());
        assert!(Timestamp::parse_rfc3339("2000-02-29T00:00:00Z").is_ok());
        assert!(Timestamp::parse_rfc3339("1900-02-29T00:00:00Z").is_err());
    }

    #[test]
    fn leap_second_clamped() {
        let t = Timestamp::parse_rfc3339("2016-12-31T23:59:60Z").unwrap();
        assert_eq!(t.to_rfc3339(), "2016-12-31T23:59:59Z");
    }

    #[test]
    fn civil_roundtrip_across_centuries() {
        for &(y, m, d) in &[
            (1969, 12, 31),
            (1970, 1, 1),
            (1999, 12, 31),
            (2000, 1, 1),
            (2000, 2, 29),
            (2038, 1, 19),
            (2100, 3, 1),
            (1, 1, 1),
        ] {
            let t = Timestamp::from_ymd_hms(y, m, d, 12, 34, 56);
            let (yy, mm, dd, h, mi, s, _) = t.to_civil();
            assert_eq!((yy, mm, dd, h, mi, s), (y, m, d, 12, 34, 56));
        }
    }

    #[test]
    fn negative_timestamps_format() {
        let t = Timestamp::from_ymd_hms(1969, 12, 31, 23, 59, 59);
        assert!(t.unix_millis() < 0);
        assert_eq!(t.to_rfc3339(), "1969-12-31T23:59:59Z");
    }

    #[test]
    fn ordering_follows_time() {
        let a = Timestamp::from_ymd_hms(2017, 9, 13, 0, 0, 0);
        let b = a.add_days(1);
        assert!(a < b);
        assert_eq!(b.millis_since(a), MILLIS_PER_DAY);
    }

    #[test]
    fn age_buckets() {
        let now = Timestamp::from_ymd_hms(2018, 9, 13, 0, 0, 0);
        let cases = [
            (now, Age::Last24Hours),
            (now.add_days(1), Age::Last24Hours), // future
            (now.add_days(-1), Age::Last24Hours),
            (now.add_days(-2), Age::LastWeek),
            (now.add_days(-7), Age::LastWeek),
            (now.add_days(-8), Age::LastMonth),
            (now.add_days(-30), Age::LastMonth),
            (now.add_days(-31), Age::LastYear),
            (now.add_days(-365), Age::LastYear),
            (now.add_days(-366), Age::Older),
        ];
        for (ts, expected) in cases {
            assert_eq!(ts.age_at(now), expected, "ts {ts}");
        }
    }

    #[test]
    fn age_display_matches_paper_vocabulary() {
        assert_eq!(Age::Last24Hours.to_string(), "last_24h");
        assert_eq!(Age::LastWeek.to_string(), "last_week");
        assert_eq!(Age::LastMonth.to_string(), "last_month");
        assert_eq!(Age::LastYear.to_string(), "last_year");
        assert_eq!(Age::Older.to_string(), "other");
    }

    #[test]
    fn serde_roundtrip() {
        let t = Timestamp::parse_rfc3339("2017-09-13T10:20:30.400Z").unwrap();
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "\"2017-09-13T10:20:30.400Z\"");
        let back: Timestamp = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn now_is_after_2020() {
        assert!(Timestamp::now() > Timestamp::from_ymd_hms(2020, 1, 1, 0, 0, 0));
    }
}
