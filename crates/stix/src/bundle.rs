//! STIX bundles: the top-level transport container.

use serde::{Deserialize, Serialize};

use crate::error::StixError;
use crate::id::StixId;
use crate::object::{ObjectType, StixObject};

/// A collection of arbitrary STIX objects grouped for transport.
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
///
/// let mw = Malware::builder("emotet").label("trojan").build();
/// let bundle = Bundle::new(vec![mw.into()]);
/// let json = bundle.to_json()?;
/// let back = Bundle::from_json(&json)?;
/// assert_eq!(back.objects().len(), 1);
/// # Ok::<(), cais_stix::StixError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bundle {
    /// Always the literal string `bundle`.
    #[serde(rename = "type")]
    bundle_type: BundleTypeTag,
    /// The bundle identifier.
    pub id: StixId,
    /// The STIX specification version (`2.0`).
    pub spec_version: String,
    /// The carried objects.
    #[serde(default)]
    objects: Vec<StixObject>,
}

/// Zero-sized marker that serializes as the string `"bundle"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
enum BundleTypeTag {
    #[serde(rename = "bundle")]
    #[default]
    Bundle,
}

impl Bundle {
    /// Creates a bundle around the given objects.
    pub fn new(objects: Vec<StixObject>) -> Self {
        Bundle {
            bundle_type: BundleTypeTag::Bundle,
            id: StixId::generate("bundle"),
            spec_version: "2.0".to_owned(),
            objects,
        }
    }

    /// Creates an empty bundle.
    pub fn empty() -> Self {
        Bundle::new(Vec::new())
    }

    /// The carried objects.
    pub fn objects(&self) -> &[StixObject] {
        &self.objects
    }

    /// Consumes the bundle, returning its objects.
    pub fn into_objects(self) -> Vec<StixObject> {
        self.objects
    }

    /// Appends an object.
    pub fn push(&mut self, object: StixObject) {
        self.objects.push(object);
    }

    /// Number of carried objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the bundle carries no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates over objects of one type.
    pub fn objects_of_type(&self, ty: ObjectType) -> impl Iterator<Item = &StixObject> {
        self.objects.iter().filter(move |o| o.object_type() == ty)
    }

    /// Finds an object by identifier.
    pub fn find(&self, id: &StixId) -> Option<&StixObject> {
        self.objects.iter().find(|o| o.id() == id)
    }

    /// Serializes to compact STIX JSON.
    ///
    /// # Errors
    ///
    /// Returns [`StixError::Json`] if serialization fails (it cannot for
    /// well-formed objects).
    pub fn to_json(&self) -> Result<String, StixError> {
        serde_json::to_string(self).map_err(StixError::from)
    }

    /// Serializes to pretty-printed STIX JSON.
    ///
    /// # Errors
    ///
    /// Returns [`StixError::Json`] if serialization fails.
    pub fn to_json_pretty(&self) -> Result<String, StixError> {
        serde_json::to_string_pretty(self).map_err(StixError::from)
    }

    /// Parses a bundle from STIX JSON.
    ///
    /// # Errors
    ///
    /// Returns [`StixError::Json`] when the document is not a valid STIX
    /// 2.0 bundle.
    pub fn from_json(json: &str) -> Result<Self, StixError> {
        serde_json::from_str(json).map_err(StixError::from)
    }
}

impl Default for Bundle {
    fn default() -> Self {
        Bundle::empty()
    }
}

impl FromIterator<StixObject> for Bundle {
    fn from_iter<I: IntoIterator<Item = StixObject>>(iter: I) -> Self {
        Bundle::new(iter.into_iter().collect())
    }
}

impl Extend<StixObject> for Bundle {
    fn extend<I: IntoIterator<Item = StixObject>>(&mut self, iter: I) {
        self.objects.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use cais_common::Timestamp;

    fn sample() -> Bundle {
        let vuln = Vulnerability::builder("CVE-2017-9805").build();
        let ind = Indicator::builder("[ipv4-addr:value = '203.0.113.9']", Timestamp::EPOCH).build();
        let rel = Relationship::new(
            RelationshipType::Indicates,
            ind.id().clone(),
            vuln.id().clone(),
        );
        [vuln.into(), ind.into(), rel.into()].into_iter().collect()
    }

    #[test]
    fn wire_shape() {
        let json: serde_json::Value = serde_json::to_value(sample()).unwrap();
        assert_eq!(json["type"], "bundle");
        assert_eq!(json["spec_version"], "2.0");
        assert_eq!(json["objects"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn json_roundtrip() {
        let b = sample();
        let back = Bundle::from_json(&b.to_json().unwrap()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn filter_by_type_and_find() {
        let b = sample();
        assert_eq!(b.objects_of_type(ObjectType::Vulnerability).count(), 1);
        assert_eq!(b.objects_of_type(ObjectType::Campaign).count(), 0);
        let id = b.objects()[0].id().clone();
        assert!(b.find(&id).is_some());
        assert!(b.find(&StixId::generate("malware")).is_none());
    }

    #[test]
    fn rejects_wrong_type_tag() {
        let json = r#"{"type":"not-a-bundle","id":"bundle--550e8400-e29b-41d4-a716-446655440000","spec_version":"2.0","objects":[]}"#;
        assert!(Bundle::from_json(json).is_err());
    }

    #[test]
    fn extend_and_push() {
        let mut b = Bundle::empty();
        assert!(b.is_empty());
        b.push(Tool::builder("nmap").build().into());
        b.extend(sample().into_objects());
        assert_eq!(b.len(), 4);
    }
}
