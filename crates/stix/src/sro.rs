//! STIX Relationship Objects: `relationship` and `sighting`.

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::common::CommonProperties;
use crate::id::StixId;

/// The standard relationship types defined by STIX 2.0, plus an escape
/// hatch for custom types.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum RelationshipType {
    /// Source targets the destination (e.g. malware targets identity).
    Targets,
    /// Source uses the destination (e.g. campaign uses tool).
    Uses,
    /// Source indicates the destination (e.g. indicator indicates malware).
    Indicates,
    /// Source mitigates the destination (course-of-action mitigates
    /// vulnerability).
    Mitigates,
    /// Source is attributed to the destination.
    AttributedTo,
    /// Source is a variant of the destination.
    VariantOf,
    /// Source impersonates the destination.
    Impersonates,
    /// Source is derived from the destination.
    DerivedFrom,
    /// Source duplicates the destination.
    DuplicateOf,
    /// Source is related to the destination (generic).
    RelatedTo,
    /// A non-standard relationship type.
    #[serde(untagged)]
    Custom(String),
}

impl RelationshipType {
    /// The wire name of this relationship type.
    pub fn as_str(&self) -> &str {
        match self {
            RelationshipType::Targets => "targets",
            RelationshipType::Uses => "uses",
            RelationshipType::Indicates => "indicates",
            RelationshipType::Mitigates => "mitigates",
            RelationshipType::AttributedTo => "attributed-to",
            RelationshipType::VariantOf => "variant-of",
            RelationshipType::Impersonates => "impersonates",
            RelationshipType::DerivedFrom => "derived-from",
            RelationshipType::DuplicateOf => "duplicate-of",
            RelationshipType::RelatedTo => "related-to",
            RelationshipType::Custom(s) => s,
        }
    }
}

/// A typed link between two STIX objects.
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
///
/// let ind = Indicator::builder("[ipv4-addr:value = '203.0.113.9']", cais_common::Timestamp::EPOCH).build();
/// let mw = Malware::builder("emotet").label("trojan").build();
/// let rel = Relationship::new(
///     RelationshipType::Indicates,
///     ind.id().clone(),
///     mw.id().clone(),
/// );
/// assert_eq!(rel.relationship_type.as_str(), "indicates");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relationship {
    #[serde(flatten)]
    common: CommonProperties,
    /// The kind of link.
    pub relationship_type: RelationshipType,
    /// Source object.
    pub source_ref: StixId,
    /// Target object.
    pub target_ref: StixId,
    /// Free-text description.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
}

impl Relationship {
    /// Creates a relationship between two objects.
    pub fn new(
        relationship_type: RelationshipType,
        source_ref: StixId,
        target_ref: StixId,
    ) -> Self {
        Relationship {
            common: CommonProperties::new("relationship", Timestamp::now()),
            relationship_type,
            source_ref,
            target_ref,
            description: None,
        }
    }

    /// Sets the description, builder-style.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// The shared properties.
    pub fn common(&self) -> &CommonProperties {
        &self.common
    }

    /// Mutable access to the shared properties.
    pub fn common_mut(&mut self) -> &mut CommonProperties {
        &mut self.common
    }

    /// The object identifier.
    pub fn id(&self) -> &StixId {
        &self.common.id
    }
}

/// A sighting: the assertion that an SDO was seen, optionally where and
/// how many times.
///
/// Sightings are how the monitored infrastructure reports that an
/// OSINT-described threat was actually observed locally — the signal the
/// paper's Accuracy and Timeliness criteria reward.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sighting {
    #[serde(flatten)]
    common: CommonProperties,
    /// The object that was sighted.
    pub sighting_of_ref: StixId,
    /// Where the sighting occurred (identity references).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub where_sighted_refs: Vec<StixId>,
    /// When the object was first seen.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub first_seen: Option<Timestamp>,
    /// When the object was last seen.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub last_seen: Option<Timestamp>,
    /// How many times it was seen (at least 1).
    #[serde(default = "default_count")]
    pub count: u32,
}

fn default_count() -> u32 {
    1
}

impl Sighting {
    /// Creates a sighting of the given object, seen once.
    pub fn new(sighting_of_ref: StixId) -> Self {
        Sighting {
            common: CommonProperties::new("sighting", Timestamp::now()),
            sighting_of_ref,
            where_sighted_refs: Vec::new(),
            first_seen: None,
            last_seen: None,
            count: 1,
        }
    }

    /// Sets the observation count, builder-style.
    pub fn with_count(mut self, count: u32) -> Self {
        self.count = count.max(1);
        self
    }

    /// Sets the observation window, builder-style.
    pub fn with_window(mut self, first_seen: Timestamp, last_seen: Timestamp) -> Self {
        self.first_seen = Some(first_seen);
        self.last_seen = Some(last_seen);
        self
    }

    /// Adds a location where the sighting occurred, builder-style.
    pub fn with_where_sighted(mut self, identity: StixId) -> Self {
        self.where_sighted_refs.push(identity);
        self
    }

    /// The shared properties.
    pub fn common(&self) -> &CommonProperties {
        &self.common
    }

    /// Mutable access to the shared properties.
    pub fn common_mut(&mut self) -> &mut CommonProperties {
        &mut self.common
    }

    /// The object identifier.
    pub fn id(&self) -> &StixId {
        &self.common.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relationship_roundtrip() {
        let rel = Relationship::new(
            RelationshipType::Mitigates,
            StixId::generate("course-of-action"),
            StixId::generate("vulnerability"),
        )
        .with_description("patch fixes CVE");
        let json = serde_json::to_string(&rel).unwrap();
        assert!(json.contains("\"relationship_type\":\"mitigates\""));
        let back: Relationship = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn custom_relationship_type() {
        let rel = Relationship::new(
            RelationshipType::Custom("exfiltrates-to".into()),
            StixId::generate("malware"),
            StixId::generate("identity"),
        );
        let json = serde_json::to_string(&rel).unwrap();
        assert!(json.contains("exfiltrates-to"));
        let back: Relationship = serde_json::from_str(&json).unwrap();
        assert_eq!(back.relationship_type.as_str(), "exfiltrates-to");
    }

    #[test]
    fn sighting_count_floor() {
        let s = Sighting::new(StixId::generate("indicator")).with_count(0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn sighting_roundtrip() {
        let s = Sighting::new(StixId::generate("indicator"))
            .with_count(7)
            .with_window(Timestamp::EPOCH, Timestamp::EPOCH.add_days(1))
            .with_where_sighted(StixId::generate("identity"));
        let json = serde_json::to_string(&s).unwrap();
        let back: Sighting = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
