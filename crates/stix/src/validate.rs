//! Semantic validation of STIX objects and bundles.
//!
//! Validation distinguishes **errors** (specification violations that
//! make an object unusable) from **warnings** (departures from suggested
//! vocabularies or hygiene rules). The platform rejects objects with
//! errors at ingestion and logs warnings.

use crate::bundle::Bundle;
use crate::object::StixObject;
use crate::vocab;

/// Severity of a validation finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Departure from a suggested vocabulary or hygiene rule.
    Warning,
    /// Specification violation.
    Error,
}

/// A single validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How serious the finding is.
    pub severity: Severity,
    /// Identifier of the object the finding concerns.
    pub object_id: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    fn error(object_id: &impl std::fmt::Display, message: impl Into<String>) -> Self {
        Finding {
            severity: Severity::Error,
            object_id: object_id.to_string(),
            message: message.into(),
        }
    }

    fn warning(object_id: &impl std::fmt::Display, message: impl Into<String>) -> Self {
        Finding {
            severity: Severity::Warning,
            object_id: object_id.to_string(),
            message: message.into(),
        }
    }
}

/// Validates a single object, returning all findings.
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
/// use cais_stix::validate::{validate_object, Severity};
///
/// let mw = Malware::builder("emotet").build(); // missing required label
/// let findings = validate_object(&mw.into());
/// assert!(findings.iter().any(|f| f.severity == Severity::Error));
/// ```
pub fn validate_object(object: &StixObject) -> Vec<Finding> {
    let mut findings = Vec::new();
    let id = object.id();
    let common = object.common();

    // Universal rules.
    if common.modified < common.created {
        findings.push(Finding::error(id, "`modified` precedes `created`"));
    }
    if id.object_type() != object.object_type().as_str() {
        findings.push(Finding::error(
            id,
            format!(
                "id prefix {} does not match object type {}",
                id.object_type(),
                object.object_type()
            ),
        ));
    }
    if let Some(confidence) = common.confidence {
        if confidence > 100 {
            findings.push(Finding::error(id, "confidence exceeds 100"));
        }
    }

    // Per-type rules.
    match object {
        StixObject::Indicator(ind) => {
            if ind.pattern.trim().is_empty() {
                findings.push(Finding::error(id, "indicator pattern is required"));
            } else if let Err(err) = ind.compiled_pattern() {
                findings.push(Finding::error(id, format!("invalid pattern: {err}")));
            }
            if common.labels.is_empty() {
                findings.push(Finding::error(id, "indicator requires at least one label"));
            }
            for label in &common.labels {
                if !vocab::indicator_label::contains(label) {
                    findings.push(Finding::warning(
                        id,
                        format!("label {label:?} not in indicator-label-ov"),
                    ));
                }
            }
            if let Some(until) = ind.valid_until {
                if until <= ind.valid_from {
                    findings.push(Finding::error(
                        id,
                        "`valid_until` must be later than `valid_from`",
                    ));
                }
            }
        }
        StixObject::Malware(_) => {
            if common.labels.is_empty() {
                findings.push(Finding::error(id, "malware requires at least one label"));
            }
            for label in &common.labels {
                if !vocab::malware_label::contains(label) {
                    findings.push(Finding::warning(
                        id,
                        format!("label {label:?} not in malware-label-ov"),
                    ));
                }
            }
        }
        StixObject::Tool(_) => {
            if common.labels.is_empty() {
                findings.push(Finding::error(id, "tool requires at least one label"));
            }
            for label in &common.labels {
                if !vocab::tool_label::contains(label) {
                    findings.push(Finding::warning(
                        id,
                        format!("label {label:?} not in tool-label-ov"),
                    ));
                }
            }
        }
        StixObject::ThreatActor(_) if common.labels.is_empty() => {
            findings.push(Finding::error(
                id,
                "threat-actor requires at least one label",
            ));
        }
        StixObject::Report(report) => {
            if common.labels.is_empty() {
                findings.push(Finding::error(id, "report requires at least one label"));
            }
            if report.object_refs.is_empty() {
                findings.push(Finding::warning(id, "report references no objects"));
            }
        }
        StixObject::Identity(identity) => {
            if let Some(class) = &identity.identity_class {
                if !vocab::identity_class::contains(class) {
                    findings.push(Finding::warning(
                        id,
                        format!("identity_class {class:?} not in identity-class-ov"),
                    ));
                }
            }
        }
        StixObject::ObservedData(od) => {
            if od.last_observed < od.first_observed {
                findings.push(Finding::error(
                    id,
                    "`last_observed` precedes `first_observed`",
                ));
            }
            if od.objects.is_empty() {
                findings.push(Finding::error(id, "observed-data requires objects"));
            }
        }
        StixObject::Sighting(s) => {
            if let (Some(first), Some(last)) = (s.first_seen, s.last_seen) {
                if last < first {
                    findings.push(Finding::error(id, "`last_seen` precedes `first_seen`"));
                }
            }
        }
        StixObject::Relationship(rel) if rel.source_ref == rel.target_ref => {
            findings.push(Finding::warning(id, "relationship is self-referential"));
        }
        StixObject::Vulnerability(v) if v.name.trim().is_empty() => {
            findings.push(Finding::error(id, "vulnerability name is required"));
        }
        _ => {}
    }

    findings
}

/// Validates every object in a bundle plus cross-object referential
/// integrity (relationship endpoints and report refs must resolve, unless
/// they point outside the bundle, which yields a warning).
pub fn validate_bundle(bundle: &Bundle) -> Vec<Finding> {
    let mut findings: Vec<Finding> = bundle.objects().iter().flat_map(validate_object).collect();

    // Duplicate ids are an error.
    let mut seen = std::collections::HashSet::new();
    for object in bundle.objects() {
        if !seen.insert(object.id().clone()) {
            findings.push(Finding::error(object.id(), "duplicate object id in bundle"));
        }
    }

    // Dangling references are warnings (bundles may be partial).
    for object in bundle.objects() {
        let refs: Vec<&crate::id::StixId> = match object {
            StixObject::Relationship(rel) => vec![&rel.source_ref, &rel.target_ref],
            StixObject::Sighting(s) => vec![&s.sighting_of_ref],
            StixObject::Report(r) => r.object_refs.iter().collect(),
            _ => Vec::new(),
        };
        for r in refs {
            if bundle.find(r).is_none() {
                findings.push(Finding::warning(
                    object.id(),
                    format!("reference {r} not present in bundle"),
                ));
            }
        }
    }

    findings
}

/// Whether the findings contain no errors (warnings are allowed).
pub fn is_acceptable(findings: &[Finding]) -> bool {
    findings.iter().all(|f| f.severity != Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use cais_common::Timestamp;

    #[test]
    fn valid_vulnerability_passes() {
        let v: StixObject = Vulnerability::builder("CVE-2017-9805").build().into();
        assert!(is_acceptable(&validate_object(&v)));
    }

    #[test]
    fn modified_before_created_is_error() {
        let ts = Timestamp::from_ymd_hms(2019, 1, 1, 0, 0, 0);
        let v: StixObject = Vulnerability::builder("CVE-2017-9805")
            .created(ts)
            .modified(ts.add_days(-1))
            .build()
            .into();
        assert!(!is_acceptable(&validate_object(&v)));
    }

    #[test]
    fn indicator_requires_label_and_valid_pattern() {
        let bad_pattern: StixObject = Indicator::builder("[[", Timestamp::EPOCH)
            .label("malicious-activity")
            .build()
            .into();
        assert!(!is_acceptable(&validate_object(&bad_pattern)));

        let no_label: StixObject =
            Indicator::builder("[ipv4-addr:value = '1.1.1.1']", Timestamp::EPOCH)
                .build()
                .into();
        assert!(!is_acceptable(&validate_object(&no_label)));

        let ok: StixObject = Indicator::builder("[ipv4-addr:value = '1.1.1.1']", Timestamp::EPOCH)
            .label("malicious-activity")
            .build()
            .into();
        assert!(is_acceptable(&validate_object(&ok)));
    }

    #[test]
    fn nonstandard_label_is_warning_only() {
        let mw: StixObject = Malware::builder("x")
            .label("bespoke-category")
            .build()
            .into();
        let findings = validate_object(&mw);
        assert!(is_acceptable(&findings));
        assert!(findings.iter().any(|f| f.severity == Severity::Warning));
    }

    #[test]
    fn bundle_duplicate_ids_error() {
        let v = Vulnerability::builder("CVE-2017-9805").build();
        let bundle = Bundle::new(vec![v.clone().into(), v.into()]);
        let findings = validate_bundle(&bundle);
        assert!(findings
            .iter()
            .any(|f| f.severity == Severity::Error && f.message.contains("duplicate")));
    }

    #[test]
    fn dangling_reference_is_warning() {
        let rel = Relationship::new(
            RelationshipType::Indicates,
            StixId::generate("indicator"),
            StixId::generate("malware"),
        );
        let bundle = Bundle::new(vec![rel.into()]);
        let findings = validate_bundle(&bundle);
        assert!(is_acceptable(&findings));
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.message.contains("not present"))
                .count(),
            2
        );
    }

    #[test]
    fn observed_data_needs_objects() {
        let od: StixObject = ObservedData::builder(Timestamp::EPOCH, Timestamp::EPOCH, 1)
            .build()
            .into();
        assert!(!is_acceptable(&validate_object(&od)));
    }
}
