//! STIX 2.0 open vocabularies.
//!
//! Open vocabularies are *suggested* value sets: producers should use
//! these values when applicable but may extend them. Each vocabulary here
//! exposes the suggested values as constants plus a containment check, so
//! validation can warn (not fail) on non-standard values.

/// The `identity-class-ov` vocabulary.
pub mod identity_class {
    /// Suggested values for an identity's class.
    pub const ALL: [&str; 5] = ["individual", "group", "organization", "class", "unknown"];

    /// Returns `true` when `value` is a suggested vocabulary value.
    pub fn contains(value: &str) -> bool {
        ALL.contains(&value)
    }
}

/// The `indicator-label-ov` vocabulary.
pub mod indicator_label {
    /// Suggested indicator labels.
    pub const ALL: [&str; 6] = [
        "anomalous-activity",
        "anonymization",
        "benign",
        "compromised",
        "malicious-activity",
        "attribution",
    ];

    /// Returns `true` when `value` is a suggested vocabulary value.
    pub fn contains(value: &str) -> bool {
        ALL.contains(&value)
    }
}

/// The `malware-label-ov` vocabulary.
pub mod malware_label {
    /// Suggested malware labels.
    pub const ALL: [&str; 16] = [
        "adware",
        "backdoor",
        "bot",
        "ddos",
        "dropper",
        "exploit-kit",
        "keylogger",
        "ransomware",
        "remote-access-trojan",
        "resource-exploitation",
        "rogue-security-software",
        "rootkit",
        "screen-capture",
        "spyware",
        "trojan",
        "virus",
    ];

    /// Returns `true` when `value` is a suggested vocabulary value.
    pub fn contains(value: &str) -> bool {
        ALL.contains(&value)
    }
}

/// The `tool-label-ov` vocabulary.
pub mod tool_label {
    /// Suggested tool labels.
    pub const ALL: [&str; 7] = [
        "denial-of-service",
        "exploitation",
        "information-gathering",
        "network-capture",
        "credential-exploitation",
        "remote-access",
        "vulnerability-scanning",
    ];

    /// Returns `true` when `value` is a suggested vocabulary value.
    pub fn contains(value: &str) -> bool {
        ALL.contains(&value)
    }
}

/// The `report-label-ov` vocabulary.
pub mod report_label {
    /// Suggested report labels.
    pub const ALL: [&str; 9] = [
        "threat-report",
        "attack-pattern",
        "campaign",
        "identity",
        "indicator",
        "malware",
        "observed-data",
        "threat-actor",
        "vulnerability",
    ];

    /// Returns `true` when `value` is a suggested vocabulary value.
    pub fn contains(value: &str) -> bool {
        ALL.contains(&value)
    }
}

/// The `threat-actor-label-ov` vocabulary.
pub mod threat_actor_label {
    /// Suggested threat-actor labels.
    pub const ALL: [&str; 10] = [
        "activist",
        "competitor",
        "crime-syndicate",
        "criminal",
        "hacker",
        "insider-accidental",
        "insider-disgruntled",
        "nation-state",
        "sensationalist",
        "terrorist",
    ];

    /// Returns `true` when `value` is a suggested vocabulary value.
    pub fn contains(value: &str) -> bool {
        ALL.contains(&value)
    }
}

/// The `industry-sector-ov` vocabulary (subset used by identities).
pub mod industry_sector {
    /// Suggested industry sectors.
    pub const ALL: [&str; 14] = [
        "aerospace",
        "automotive",
        "communications",
        "construction",
        "defence",
        "education",
        "energy",
        "financial-services",
        "government-national",
        "healthcare",
        "infrastructure",
        "insurance",
        "technology",
        "telecommunications",
    ];

    /// Returns `true` when `value` is a suggested vocabulary value.
    pub fn contains(value: &str) -> bool {
        ALL.contains(&value)
    }
}

/// The `attack-motivation-ov` vocabulary.
pub mod attack_motivation {
    /// Suggested attack motivations.
    pub const ALL: [&str; 9] = [
        "accidental",
        "coercion",
        "dominance",
        "ideology",
        "notoriety",
        "organizational-gain",
        "personal-gain",
        "personal-satisfaction",
        "revenge",
    ];

    /// Returns `true` when `value` is a suggested vocabulary value.
    pub fn contains(value: &str) -> bool {
        ALL.contains(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_checks() {
        assert!(identity_class::contains("organization"));
        assert!(!identity_class::contains("corp"));
        assert!(indicator_label::contains("malicious-activity"));
        assert!(malware_label::contains("ransomware"));
        assert!(tool_label::contains("exploitation"));
        assert!(report_label::contains("threat-report"));
        assert!(threat_actor_label::contains("nation-state"));
        assert!(industry_sector::contains("financial-services"));
        assert!(attack_motivation::contains("organizational-gain"));
    }

    #[test]
    fn vocabularies_have_no_duplicates() {
        fn unique(values: &[&str]) -> bool {
            let mut sorted: Vec<&str> = values.to_vec();
            sorted.sort_unstable();
            sorted.windows(2).all(|w| w[0] != w[1])
        }
        assert!(unique(&identity_class::ALL));
        assert!(unique(&indicator_label::ALL));
        assert!(unique(&malware_label::ALL));
        assert!(unique(&tool_label::ALL));
        assert!(unique(&report_label::ALL));
        assert!(unique(&threat_actor_label::ALL));
        assert!(unique(&industry_sector::ALL));
        assert!(unique(&attack_motivation::ALL));
    }

    #[test]
    fn vocabulary_values_are_kebab_case() {
        for v in malware_label::ALL.iter().chain(tool_label::ALL.iter()) {
            assert!(
                v.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'),
                "{v}"
            );
        }
    }
}
