//! String matching for the `LIKE` and `MATCHES` operators.
//!
//! `LIKE` uses SQL wildcards: `%` matches any run of characters
//! (including none) and `_` matches exactly one character. `MATCHES` uses
//! a small regular-expression dialect implemented here with
//! backtracking: literals, `.`, character classes `[a-z]` / `[^…]`,
//! anchors `^` `$`, grouping-free postfix `*`, `+`, `?`, and `\`
//! escapes. This covers the patterns that appear in indicator feeds
//! without pulling in a regex dependency.

/// Returns `true` when `text` matches the SQL-style `LIKE` pattern.
///
/// # Examples
///
/// ```
/// use cais_stix::pattern::like_match;
///
/// assert!(like_match("%.evil.example", "c2.evil.example"));
/// assert!(like_match("mal_are", "malware"));
/// assert!(!like_match("%.evil.example", "evil.example"));
/// ```
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    like_rec(&p, &t)
}

fn like_rec(p: &[char], t: &[char]) -> bool {
    match p.first() {
        None => t.is_empty(),
        Some('%') => {
            // `%` matches zero or more characters.
            (0..=t.len()).any(|skip| like_rec(&p[1..], &t[skip..]))
        }
        Some('_') => !t.is_empty() && like_rec(&p[1..], &t[1..]),
        Some('\\') if p.len() >= 2 => !t.is_empty() && t[0] == p[1] && like_rec(&p[2..], &t[1..]),
        Some(&c) => !t.is_empty() && t[0] == c && like_rec(&p[1..], &t[1..]),
    }
}

/// A compiled element of the mini-regex.
#[derive(Debug, Clone, PartialEq)]
enum RegexAtom {
    Literal(char),
    AnyChar,
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Repeat {
    One,
    ZeroOrMore,
    OneOrMore,
    ZeroOrOne,
}

#[derive(Debug, Clone, PartialEq)]
struct RegexElem {
    atom: RegexAtom,
    repeat: Repeat,
}

fn atom_matches(atom: &RegexAtom, c: char) -> bool {
    match atom {
        RegexAtom::Literal(l) => c == *l,
        RegexAtom::AnyChar => true,
        RegexAtom::Class { negated, ranges } => {
            let inside = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
            inside != *negated
        }
    }
}

fn compile(pattern: &str) -> Option<(bool, bool, Vec<RegexElem>)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let anchored_start = chars.first() == Some(&'^');
    if anchored_start {
        i += 1;
    }
    let anchored_end = chars.last() == Some(&'$') && chars.len() > i;
    let end = if anchored_end {
        chars.len() - 1
    } else {
        chars.len()
    };
    let mut elems = Vec::new();
    while i < end {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                RegexAtom::AnyChar
            }
            '\\' => {
                if i + 1 >= end {
                    return None;
                }
                let c = chars[i + 1];
                i += 2;
                match c {
                    'd' => RegexAtom::Class {
                        negated: false,
                        ranges: vec![('0', '9')],
                    },
                    'w' => RegexAtom::Class {
                        negated: false,
                        ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                    },
                    's' => RegexAtom::Class {
                        negated: false,
                        ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                    },
                    other => RegexAtom::Literal(other),
                }
            }
            '[' => {
                let mut j = i + 1;
                let negated = chars.get(j) == Some(&'^');
                if negated {
                    j += 1;
                }
                let mut ranges = Vec::new();
                while j < end && chars[j] != ']' {
                    let lo = chars[j];
                    if chars.get(j + 1) == Some(&'-') && j + 2 < end && chars[j + 2] != ']' {
                        ranges.push((lo, chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((lo, lo));
                        j += 1;
                    }
                }
                if j >= end || ranges.is_empty() {
                    return None; // unterminated or empty class
                }
                i = j + 1;
                RegexAtom::Class { negated, ranges }
            }
            '*' | '+' | '?' => return None, // repeat without atom
            c => {
                i += 1;
                RegexAtom::Literal(c)
            }
        };
        let repeat = match chars.get(i) {
            Some('*') => {
                i += 1;
                Repeat::ZeroOrMore
            }
            Some('+') => {
                i += 1;
                Repeat::OneOrMore
            }
            Some('?') => {
                i += 1;
                Repeat::ZeroOrOne
            }
            _ => Repeat::One,
        };
        elems.push(RegexElem { atom, repeat });
    }
    Some((anchored_start, anchored_end, elems))
}

fn regex_rec(elems: &[RegexElem], t: &[char], anchored_end: bool) -> bool {
    match elems.first() {
        None => !anchored_end || t.is_empty(),
        Some(elem) => match elem.repeat {
            Repeat::One => {
                !t.is_empty()
                    && atom_matches(&elem.atom, t[0])
                    && regex_rec(&elems[1..], &t[1..], anchored_end)
            }
            Repeat::ZeroOrOne => {
                regex_rec(&elems[1..], t, anchored_end)
                    || (!t.is_empty()
                        && atom_matches(&elem.atom, t[0])
                        && regex_rec(&elems[1..], &t[1..], anchored_end))
            }
            Repeat::ZeroOrMore => {
                let mut k = 0;
                loop {
                    if regex_rec(&elems[1..], &t[k..], anchored_end) {
                        return true;
                    }
                    if k < t.len() && atom_matches(&elem.atom, t[k]) {
                        k += 1;
                    } else {
                        return false;
                    }
                }
            }
            Repeat::OneOrMore => {
                let mut k = 0;
                while k < t.len() && atom_matches(&elem.atom, t[k]) {
                    k += 1;
                    if regex_rec(&elems[1..], &t[k..], anchored_end) {
                        return true;
                    }
                }
                false
            }
        },
    }
}

/// Returns `true` when `text` matches the mini-regex `pattern`
/// (unanchored unless `^`/`$` are present). Returns `false` for patterns
/// outside the supported dialect.
///
/// # Examples
///
/// ```
/// use cais_stix::pattern::regex_match;
///
/// assert!(regex_match("^c[0-9]+\\.evil", "c2.evil.example"));
/// assert!(regex_match("evil", "c2.evil.example")); // unanchored
/// assert!(!regex_match("^evil", "c2.evil.example"));
/// ```
pub fn regex_match(pattern: &str, text: &str) -> bool {
    let Some((anchored_start, anchored_end, elems)) = compile(pattern) else {
        return false;
    };
    let t: Vec<char> = text.chars().collect();
    if anchored_start {
        regex_rec(&elems, &t, anchored_end)
    } else {
        (0..=t.len()).any(|start| regex_rec(&elems, &t[start..], anchored_end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_wildcards() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(like_match("a%c", "abbbbc"));
        assert!(like_match("a%c", "ac"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "ac"));
        assert!(like_match("%", ""));
        assert!(like_match("%%", "anything"));
        assert!(!like_match("", "x"));
    }

    #[test]
    fn like_escapes() {
        assert!(like_match(r"100\%", "100%"));
        assert!(!like_match(r"100\%", "100x"));
    }

    #[test]
    fn regex_literals_and_dot() {
        assert!(regex_match("^a.c$", "abc"));
        assert!(!regex_match("^a.c$", "abcd"));
        assert!(regex_match("b", "abc"));
    }

    #[test]
    fn regex_classes() {
        assert!(regex_match("^[0-9]+$", "12345"));
        assert!(!regex_match("^[0-9]+$", "12a45"));
        assert!(regex_match("^[^0-9]+$", "abc"));
        assert!(regex_match("^[a-f0-9]+$", "deadbeef"));
    }

    #[test]
    fn regex_repeats() {
        assert!(regex_match("^ab*c$", "ac"));
        assert!(regex_match("^ab*c$", "abbbc"));
        assert!(regex_match("^ab+c$", "abc"));
        assert!(!regex_match("^ab+c$", "ac"));
        assert!(regex_match("^ab?c$", "ac"));
        assert!(regex_match("^ab?c$", "abc"));
        assert!(!regex_match("^ab?c$", "abbc"));
    }

    #[test]
    fn regex_escape_sequences() {
        assert!(regex_match(r"^\d+\.\d+$", "192.168"));
        assert!(regex_match(r"^\w+$", "file_name1"));
        assert!(!regex_match(r"^\w+$", "two words"));
        assert!(regex_match(r"^\s$", " "));
    }

    #[test]
    fn regex_invalid_patterns_do_not_match() {
        assert!(!regex_match("*abc", "abc"));
        assert!(!regex_match("[abc", "abc"));
        assert!(!regex_match("a\\", "a"));
    }

    #[test]
    fn regex_c2_domain_pattern() {
        let p = r"^c\d+\.evil\.example$";
        assert!(regex_match(p, "c2.evil.example"));
        assert!(regex_match(p, "c17.evil.example"));
        assert!(!regex_match(p, "cx.evil.example"));
        assert!(!regex_match(p, "c2.evil.exampleX"));
    }
}
