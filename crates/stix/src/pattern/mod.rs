//! The STIX patterning language.
//!
//! Indicators carry detection logic as *patterns*, e.g.:
//!
//! ```text
//! [ipv4-addr:value = '203.0.113.9'] AND [domain-name:value LIKE '%.evil.example']
//! ```
//!
//! This module implements a lexer, recursive-descent parser and evaluator
//! for the STIX 2.0 patterning grammar: comparison expressions (`=`,
//! `!=`, `<`, `<=`, `>`, `>=`, `IN`, `LIKE`, `MATCHES`, with `AND`/`OR`
//! and `NOT`), observation expressions combined with `AND`, `OR` and
//! `FOLLOWEDBY`, and the `WITHIN … SECONDS` and `REPEATS … TIMES`
//! qualifiers.
//!
//! Evaluation runs over a sequence of timestamped [`Observation`]s (for
//! example, one per sensor event) and reports whether — and where — the
//! pattern matched.
//!
//! # Examples
//!
//! ```
//! use cais_stix::pattern::{Observation, Pattern};
//! use cais_stix::sdo::CyberObservable;
//! use cais_common::Timestamp;
//!
//! let pattern = Pattern::parse("[ipv4-addr:value = '203.0.113.9']")?;
//! let obs = Observation::at(Timestamp::EPOCH)
//!     .with_object(CyberObservable::new("ipv4-addr", "203.0.113.9"));
//! assert!(pattern.matches(&[obs]));
//! # Ok::<(), cais_stix::StixError>(())
//! ```

mod ast;
mod eval;
mod lexer;
mod like;
mod parser;

pub use ast::{ComparisonExpr, ComparisonOp, ObservationExpr, PatternLiteral, Qualifier};
pub use eval::{MatchOutcome, Observation};
pub use like::{like_match, regex_match};

use crate::error::StixError;

/// A parsed, executable STIX pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    source: String,
    root: ObservationExpr,
}

impl Pattern {
    /// Parses STIX patterning source text.
    ///
    /// # Errors
    ///
    /// Returns [`StixError::Pattern`] with the byte offset of the first
    /// syntax error.
    pub fn parse(source: &str) -> Result<Self, StixError> {
        let tokens = lexer::lex(source)?;
        let root = parser::parse(&tokens, source)?;
        Ok(Pattern {
            source: source.to_owned(),
            root,
        })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed observation-expression tree.
    pub fn root(&self) -> &ObservationExpr {
        &self.root
    }

    /// Evaluates the pattern against a sequence of observations,
    /// returning the full outcome (matched observation indices and span).
    pub fn evaluate(&self, observations: &[Observation]) -> MatchOutcome {
        eval::evaluate(&self.root, observations)
    }

    /// Convenience: whether the pattern matches the observations.
    pub fn matches(&self, observations: &[Observation]) -> bool {
        self.evaluate(observations).is_match()
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdo::CyberObservable;
    use cais_common::Timestamp;

    fn obs(ty: &str, value: &str, secs: i64) -> Observation {
        Observation::at(Timestamp::from_unix_secs(secs))
            .with_object(CyberObservable::new(ty, value))
    }

    #[test]
    fn single_comparison() {
        let p = Pattern::parse("[domain-name:value = 'evil.example']").unwrap();
        assert!(p.matches(&[obs("domain-name", "evil.example", 0)]));
        assert!(!p.matches(&[obs("domain-name", "good.example", 0)]));
        assert!(!p.matches(&[obs("ipv4-addr", "evil.example", 0)]));
    }

    #[test]
    fn comparison_and_or() {
        let p =
            Pattern::parse("[ipv4-addr:value = '1.1.1.1' OR ipv4-addr:value = '2.2.2.2']").unwrap();
        assert!(p.matches(&[obs("ipv4-addr", "2.2.2.2", 0)]));
        assert!(!p.matches(&[obs("ipv4-addr", "3.3.3.3", 0)]));
    }

    #[test]
    fn same_object_semantics_for_and() {
        // Both propositions must hold on the same observable object.
        let p = Pattern::parse(
            "[network-traffic:src_port = '80' AND network-traffic:dst_port = '443']",
        )
        .unwrap();
        let both = Observation::at(Timestamp::EPOCH).with_object(
            CyberObservable::new("network-traffic", "flow")
                .with_property("src_port", "80")
                .with_property("dst_port", "443"),
        );
        let split = Observation::at(Timestamp::EPOCH)
            .with_object(
                CyberObservable::new("network-traffic", "a").with_property("src_port", "80"),
            )
            .with_object(
                CyberObservable::new("network-traffic", "b").with_property("dst_port", "443"),
            );
        assert!(p.matches(&[both]));
        assert!(!p.matches(&[split]));
    }

    #[test]
    fn observation_and_needs_both() {
        let p = Pattern::parse(
            "[ipv4-addr:value = '1.1.1.1'] AND [domain-name:value = 'evil.example']",
        )
        .unwrap();
        assert!(p.matches(&[
            obs("ipv4-addr", "1.1.1.1", 0),
            obs("domain-name", "evil.example", 5),
        ]));
        assert!(!p.matches(&[obs("ipv4-addr", "1.1.1.1", 0)]));
    }

    #[test]
    fn followedby_enforces_order() {
        let p = Pattern::parse(
            "[ipv4-addr:value = '1.1.1.1'] FOLLOWEDBY [domain-name:value = 'evil.example']",
        )
        .unwrap();
        assert!(p.matches(&[
            obs("ipv4-addr", "1.1.1.1", 0),
            obs("domain-name", "evil.example", 10),
        ]));
        assert!(!p.matches(&[
            obs("ipv4-addr", "1.1.1.1", 10),
            obs("domain-name", "evil.example", 0),
        ]));
    }

    #[test]
    fn within_qualifier() {
        let p = Pattern::parse(
            "([ipv4-addr:value = '1.1.1.1'] AND [domain-name:value = 'evil.example']) WITHIN 60 SECONDS",
        )
        .unwrap();
        assert!(p.matches(&[
            obs("ipv4-addr", "1.1.1.1", 0),
            obs("domain-name", "evil.example", 30),
        ]));
        assert!(!p.matches(&[
            obs("ipv4-addr", "1.1.1.1", 0),
            obs("domain-name", "evil.example", 300),
        ]));
    }

    #[test]
    fn repeats_qualifier() {
        let p = Pattern::parse("[ipv4-addr:value = '1.1.1.1'] REPEATS 3 TIMES").unwrap();
        let hits: Vec<Observation> = (0..3).map(|i| obs("ipv4-addr", "1.1.1.1", i)).collect();
        assert!(p.matches(&hits));
        assert!(!p.matches(&hits[..2]));
    }

    #[test]
    fn in_and_like_and_not() {
        let p = Pattern::parse("[ipv4-addr:value IN ('1.1.1.1', '2.2.2.2')]").unwrap();
        assert!(p.matches(&[obs("ipv4-addr", "2.2.2.2", 0)]));

        let p = Pattern::parse("[domain-name:value LIKE '%.evil.example']").unwrap();
        assert!(p.matches(&[obs("domain-name", "c2.evil.example", 0)]));
        assert!(!p.matches(&[obs("domain-name", "evil.example", 0)]));

        let p = Pattern::parse("[NOT domain-name:value = 'good.example']").unwrap();
        assert!(p.matches(&[obs("domain-name", "evil.example", 0)]));
        assert!(!p.matches(&[obs("domain-name", "good.example", 0)]));
    }

    #[test]
    fn matches_operator_uses_regex() {
        let p =
            Pattern::parse("[domain-name:value MATCHES '^c[0-9]+\\\\.evil\\\\.example$']").unwrap();
        assert!(p.matches(&[obs("domain-name", "c2.evil.example", 0)]));
        assert!(!p.matches(&[obs("domain-name", "cx.evil.example", 0)]));
    }

    #[test]
    fn numeric_comparisons() {
        let p = Pattern::parse("[network-traffic:dst_port > 1024]").unwrap();
        let hit = Observation::at(Timestamp::EPOCH).with_object(
            CyberObservable::new("network-traffic", "t").with_property("dst_port", "4444"),
        );
        let miss = Observation::at(Timestamp::EPOCH).with_object(
            CyberObservable::new("network-traffic", "t").with_property("dst_port", "80"),
        );
        assert!(p.matches(&[hit]));
        assert!(!p.matches(&[miss]));
    }

    #[test]
    fn file_hash_paths() {
        let p = Pattern::parse("[file:hashes.MD5 = 'd41d8cd98f00b204e9800998ecf8427e']").unwrap();
        let hit = Observation::at(Timestamp::EPOCH).with_object(
            CyberObservable::new("file", "x")
                .with_property("hashes.MD5", "d41d8cd98f00b204e9800998ecf8427e"),
        );
        assert!(p.matches(&[hit]));
    }

    #[test]
    fn syntax_errors_report_offset() {
        for bad in [
            "",
            "[",
            "[]",
            "[ipv4-addr:value]",
            "[ipv4-addr:value = ]",
            "[ipv4-addr:value = '1.1.1.1'",
            "[ipv4-addr:value = '1.1.1.1'] AND",
            "[x:y = 'v'] WITHIN SECONDS",
            "[x:y = 'v'] REPEATS 0 TIMES",
            "[x:y ~ 'v']",
        ] {
            let err = Pattern::parse(bad).unwrap_err();
            assert!(
                matches!(err, StixError::Pattern { .. }),
                "expected pattern error for {bad:?}, got {err:?}"
            );
        }
    }

    #[test]
    fn display_preserves_source() {
        let src = "[ipv4-addr:value = '203.0.113.9']";
        assert_eq!(Pattern::parse(src).unwrap().to_string(), src);
    }
}

#[cfg(test)]
mod start_stop_tests {
    use super::*;
    use crate::sdo::CyberObservable;
    use cais_common::Timestamp;

    fn obs(value: &str, iso: &str) -> Observation {
        Observation::at(Timestamp::parse_rfc3339(iso).unwrap())
            .with_object(CyberObservable::new("ipv4-addr", value))
    }

    #[test]
    fn start_stop_limits_the_window() {
        let p = Pattern::parse(
            "[ipv4-addr:value = '203.0.113.9'] \
             START t'2018-01-01T00:00:00Z' STOP t'2018-02-01T00:00:00Z'",
        )
        .unwrap();
        assert!(p.matches(&[obs("203.0.113.9", "2018-01-15T00:00:00Z")]));
        assert!(!p.matches(&[obs("203.0.113.9", "2018-03-01T00:00:00Z")]));
        assert!(!p.matches(&[obs("203.0.113.9", "2017-12-31T23:59:59Z")]));
        // Stop is exclusive.
        assert!(!p.matches(&[obs("203.0.113.9", "2018-02-01T00:00:00Z")]));
    }

    #[test]
    fn start_stop_accepts_bare_strings() {
        let p =
            Pattern::parse("[ipv4-addr:value = '1.1.1.1'] START '2018-01-01' STOP '2018-01-02'")
                .unwrap();
        assert!(p.matches(&[obs("1.1.1.1", "2018-01-01T12:00:00Z")]));
    }

    #[test]
    fn start_stop_rejects_inverted_window() {
        assert!(Pattern::parse(
            "[a:b = 1] START t'2018-02-01T00:00:00Z' STOP t'2018-01-01T00:00:00Z'",
        )
        .is_err());
        assert!(Pattern::parse("[a:b = 1] START 'not a date' STOP 'also not'").is_err());
        assert!(Pattern::parse("[a:b = 1] START t'2018-01-01T00:00:00Z'").is_err());
    }

    #[test]
    fn start_stop_composes_with_repeats() {
        let p = Pattern::parse(
            "[ipv4-addr:value = '1.1.1.1'] REPEATS 2 TIMES \
             START t'2018-01-01T00:00:00Z' STOP t'2018-01-02T00:00:00Z'",
        )
        .unwrap();
        // Two hits inside the window: match.
        assert!(p.matches(&[
            obs("1.1.1.1", "2018-01-01T01:00:00Z"),
            obs("1.1.1.1", "2018-01-01T02:00:00Z"),
        ]));
        // One inside, one outside: no match.
        assert!(!p.matches(&[
            obs("1.1.1.1", "2018-01-01T01:00:00Z"),
            obs("1.1.1.1", "2018-01-03T02:00:00Z"),
        ]));
    }
}
