//! Evaluation of parsed patterns over timestamped observations.

use cais_common::Timestamp;

use super::ast::{ComparisonExpr, ComparisonOp, ObservationExpr, Qualifier};
use super::like::{like_match, regex_match};
use crate::sdo::{CyberObservable, ObservedData};

/// One observation: a set of cyber objects seen at an instant.
///
/// Sensors produce one observation per event; [`ObservedData`] converts
/// directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    at: Timestamp,
    objects: Vec<CyberObservable>,
}

impl Observation {
    /// Creates an empty observation at the given instant.
    pub fn at(at: Timestamp) -> Self {
        Observation {
            at,
            objects: Vec::new(),
        }
    }

    /// Adds an observed object, builder-style.
    pub fn with_object(mut self, object: CyberObservable) -> Self {
        self.objects.push(object);
        self
    }

    /// When the observation occurred.
    pub fn timestamp(&self) -> Timestamp {
        self.at
    }

    /// The observed objects.
    pub fn objects(&self) -> &[CyberObservable] {
        &self.objects
    }
}

impl From<&ObservedData> for Observation {
    fn from(od: &ObservedData) -> Self {
        Observation {
            at: od.first_observed,
            objects: od.objects.values().cloned().collect(),
        }
    }
}

/// The result of evaluating a pattern: which observations participated in
/// the match, if any.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MatchOutcome {
    matched_indices: Vec<usize>,
}

impl MatchOutcome {
    fn no_match() -> Self {
        MatchOutcome::default()
    }

    fn of(mut indices: Vec<usize>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        MatchOutcome {
            matched_indices: indices,
        }
    }

    /// Whether the pattern matched.
    pub fn is_match(&self) -> bool {
        !self.matched_indices.is_empty()
    }

    /// Indices (into the evaluated slice) of observations that satisfied
    /// some leaf of the pattern.
    pub fn matched_indices(&self) -> &[usize] {
        &self.matched_indices
    }
}

/// Evaluates an observation-expression tree.
pub(crate) fn evaluate(expr: &ObservationExpr, observations: &[Observation]) -> MatchOutcome {
    match expr {
        ObservationExpr::Observation(comp) => {
            let hits: Vec<usize> = observations
                .iter()
                .enumerate()
                .filter(|(_, obs)| obs.objects.iter().any(|o| comp_matches(comp, o)))
                .map(|(i, _)| i)
                .collect();
            if hits.is_empty() {
                MatchOutcome::no_match()
            } else {
                MatchOutcome::of(hits)
            }
        }
        ObservationExpr::And(left, right) => {
            let l = evaluate(left, observations);
            let r = evaluate(right, observations);
            if l.is_match() && r.is_match() {
                MatchOutcome::of(
                    l.matched_indices
                        .into_iter()
                        .chain(r.matched_indices)
                        .collect(),
                )
            } else {
                MatchOutcome::no_match()
            }
        }
        ObservationExpr::Or(left, right) => {
            let l = evaluate(left, observations);
            if l.is_match() {
                return l;
            }
            evaluate(right, observations)
        }
        ObservationExpr::FollowedBy(left, right) => {
            let l = evaluate(left, observations);
            let r = evaluate(right, observations);
            if !l.is_match() || !r.is_match() {
                return MatchOutcome::no_match();
            }
            // The earliest left match must not be later than the latest
            // right match.
            let earliest_left = l
                .matched_indices
                .iter()
                .map(|&i| observations[i].at)
                .min()
                .expect("non-empty");
            let pairable: Vec<usize> = r
                .matched_indices
                .iter()
                .copied()
                .filter(|&j| observations[j].at >= earliest_left)
                .collect();
            if pairable.is_empty() {
                MatchOutcome::no_match()
            } else {
                let left_kept: Vec<usize> = l
                    .matched_indices
                    .iter()
                    .copied()
                    .filter(|&i| {
                        pairable
                            .iter()
                            .any(|&j| observations[j].at >= observations[i].at)
                    })
                    .collect();
                MatchOutcome::of(left_kept.into_iter().chain(pairable).collect())
            }
        }
        ObservationExpr::Qualified(inner, qualifier) => {
            let base = evaluate(inner, observations);
            if !base.is_match() {
                return MatchOutcome::no_match();
            }
            match qualifier {
                Qualifier::RepeatsTimes(n) => {
                    if base.matched_indices.len() as u64 >= *n {
                        base
                    } else {
                        MatchOutcome::no_match()
                    }
                }
                Qualifier::StartStop {
                    start_millis,
                    stop_millis,
                } => {
                    // Re-evaluate the inner expression restricted to the
                    // absolute window.
                    let in_window: Vec<usize> = (0..observations.len())
                        .filter(|&i| {
                            let t = observations[i].at.unix_millis();
                            t >= *start_millis && t < *stop_millis
                        })
                        .collect();
                    let subset: Vec<Observation> =
                        in_window.iter().map(|&i| observations[i].clone()).collect();
                    let sub = evaluate(inner, &subset);
                    if sub.is_match() {
                        MatchOutcome::of(
                            sub.matched_indices.iter().map(|&j| in_window[j]).collect(),
                        )
                    } else {
                        MatchOutcome::no_match()
                    }
                }
                Qualifier::WithinSeconds(secs) => {
                    // `(expr) WITHIN d SECONDS` holds when there exists a
                    // time window of length d such that `expr` matches
                    // using only the observations inside the window. Each
                    // matched timestamp is tried as a window start.
                    let span_millis = (*secs as i64) * 1_000;
                    let mut starts: Vec<Timestamp> = base
                        .matched_indices
                        .iter()
                        .map(|&i| observations[i].at)
                        .collect();
                    starts.sort_unstable();
                    starts.dedup();
                    for t0 in starts {
                        let in_window: Vec<usize> = (0..observations.len())
                            .filter(|&i| {
                                let t = observations[i].at;
                                t >= t0 && t.millis_since(t0) <= span_millis
                            })
                            .collect();
                        let subset: Vec<Observation> =
                            in_window.iter().map(|&i| observations[i].clone()).collect();
                        let sub = evaluate(inner, &subset);
                        if sub.is_match() {
                            return MatchOutcome::of(
                                sub.matched_indices.iter().map(|&j| in_window[j]).collect(),
                            );
                        }
                    }
                    MatchOutcome::no_match()
                }
            }
        }
    }
}

fn comp_matches(expr: &ComparisonExpr, object: &CyberObservable) -> bool {
    match expr {
        ComparisonExpr::And(parts) => parts.iter().all(|p| comp_matches(p, object)),
        ComparisonExpr::Or(parts) => parts.iter().any(|p| comp_matches(p, object)),
        ComparisonExpr::Proposition {
            object_type,
            path,
            op,
            values,
            negated,
        } => {
            if object.object_type != *object_type {
                return false;
            }
            let actual = object.property(path);
            let result = match actual {
                // An absent property satisfies `!=` (the value is
                // certainly not the literal) and fails everything else.
                None => *op == ComparisonOp::Ne,
                Some(actual) => prop_holds(actual, *op, values),
            };
            if *negated {
                // NOT still requires the object type to match; an absent
                // property satisfies the negation.
                !result
            } else {
                result
            }
        }
    }
}

fn prop_holds(actual: &str, op: ComparisonOp, values: &[super::ast::PatternLiteral]) -> bool {
    use super::ast::PatternLiteral;
    match op {
        ComparisonOp::Eq | ComparisonOp::Ne => {
            let eq = values.first().is_some_and(|v| literal_eq(actual, v));
            if op == ComparisonOp::Eq {
                eq
            } else {
                !eq
            }
        }
        ComparisonOp::Lt | ComparisonOp::Le | ComparisonOp::Gt | ComparisonOp::Ge => {
            let Some(expected) = values.first().and_then(PatternLiteral::as_number) else {
                // Ordered comparison against a string literal falls back
                // to lexicographic ordering.
                let Some(PatternLiteral::Str(s)) = values.first() else {
                    return false;
                };
                return match op {
                    ComparisonOp::Lt => actual < s.as_str(),
                    ComparisonOp::Le => actual <= s.as_str(),
                    ComparisonOp::Gt => actual > s.as_str(),
                    ComparisonOp::Ge => actual >= s.as_str(),
                    _ => unreachable!(),
                };
            };
            let Ok(actual_num) = actual.parse::<f64>() else {
                return false;
            };
            match op {
                ComparisonOp::Lt => actual_num < expected,
                ComparisonOp::Le => actual_num <= expected,
                ComparisonOp::Gt => actual_num > expected,
                ComparisonOp::Ge => actual_num >= expected,
                _ => unreachable!(),
            }
        }
        ComparisonOp::In => values.iter().any(|v| literal_eq(actual, v)),
        ComparisonOp::Like => values
            .first()
            .and_then(PatternLiteral::as_str)
            .is_some_and(|p| like_match(p, actual)),
        ComparisonOp::Matches => values
            .first()
            .and_then(PatternLiteral::as_str)
            .is_some_and(|p| regex_match(p, actual)),
    }
}

fn literal_eq(actual: &str, literal: &super::ast::PatternLiteral) -> bool {
    use super::ast::PatternLiteral;
    match literal {
        PatternLiteral::Str(s) => actual == s,
        PatternLiteral::Int(i) => actual.parse::<i64>() == Ok(*i),
        PatternLiteral::Float(f) => actual.parse::<f64>().map(|a| a == *f).unwrap_or(false),
        PatternLiteral::Bool(b) => actual.parse::<bool>() == Ok(*b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    fn obs(ty: &str, value: &str, secs: i64) -> Observation {
        Observation::at(Timestamp::from_unix_secs(secs))
            .with_object(CyberObservable::new(ty, value))
    }

    #[test]
    fn outcome_reports_indices() {
        let p = Pattern::parse("[ipv4-addr:value = '1.1.1.1']").unwrap();
        let outcome = p.evaluate(&[
            obs("ipv4-addr", "9.9.9.9", 0),
            obs("ipv4-addr", "1.1.1.1", 1),
            obs("ipv4-addr", "1.1.1.1", 2),
        ]);
        assert!(outcome.is_match());
        assert_eq!(outcome.matched_indices(), &[1, 2]);
    }

    #[test]
    fn empty_observations_never_match() {
        let p = Pattern::parse("[ipv4-addr:value = '1.1.1.1']").unwrap();
        assert!(!p.matches(&[]));
        let empty = Observation::at(Timestamp::EPOCH);
        assert!(!p.matches(&[empty]));
    }

    #[test]
    fn negated_missing_property_matches() {
        // NOT on a property the object lacks: negation holds.
        let p = Pattern::parse("[ipv4-addr:x_extra != 'v']").unwrap();
        assert!(p.matches(&[obs("ipv4-addr", "1.1.1.1", 0)]));
    }

    #[test]
    fn type_mismatch_defeats_negation() {
        // NOT propositions still require the object type to match.
        let p = Pattern::parse("[NOT domain-name:value = 'x']").unwrap();
        assert!(!p.matches(&[obs("ipv4-addr", "1.1.1.1", 0)]));
    }

    #[test]
    fn within_uses_densest_window() {
        let p = Pattern::parse("[ipv4-addr:value = '1.1.1.1'] REPEATS 3 TIMES WITHIN 10 SECONDS")
            .unwrap();
        // Three matches, but only two fall inside any 10-second window.
        let sparse = [
            obs("ipv4-addr", "1.1.1.1", 0),
            obs("ipv4-addr", "1.1.1.1", 8),
            obs("ipv4-addr", "1.1.1.1", 60),
        ];
        assert!(!p.matches(&sparse));
        let dense = [
            obs("ipv4-addr", "1.1.1.1", 0),
            obs("ipv4-addr", "1.1.1.1", 4),
            obs("ipv4-addr", "1.1.1.1", 8),
        ];
        assert!(p.matches(&dense));
    }

    #[test]
    fn observed_data_conversion() {
        let od = ObservedData::builder(Timestamp::EPOCH, Timestamp::EPOCH, 1)
            .object("0", CyberObservable::new("domain-name", "evil.example"))
            .build();
        let observation = Observation::from(&od);
        assert_eq!(observation.objects().len(), 1);
        let p = Pattern::parse("[domain-name:value = 'evil.example']").unwrap();
        assert!(p.matches(&[observation]));
    }

    #[test]
    fn lexicographic_string_ordering() {
        let p = Pattern::parse("[file:name > 'm']").unwrap();
        let hit = Observation::at(Timestamp::EPOCH)
            .with_object(CyberObservable::new("file", "x").with_property("name", "zeta.bin"));
        let miss = Observation::at(Timestamp::EPOCH)
            .with_object(CyberObservable::new("file", "x").with_property("name", "alpha.bin"));
        assert!(p.matches(&[hit]));
        assert!(!p.matches(&[miss]));
    }
}
