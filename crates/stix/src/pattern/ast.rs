//! Abstract syntax tree of parsed STIX patterns.

/// A literal value appearing on the right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternLiteral {
    /// A single-quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A boolean (`true`/`false` keywords).
    Bool(bool),
}

impl PatternLiteral {
    /// The literal as a string slice when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PatternLiteral::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The literal coerced to a float when numeric.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            PatternLiteral::Int(i) => Some(*i as f64),
            PatternLiteral::Float(f) => Some(*f),
            _ => None,
        }
    }
}

/// Comparison operators of the patterning grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComparisonOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `IN (…)`
    In,
    /// `LIKE '…'` (SQL-style `%` and `_` wildcards)
    Like,
    /// `MATCHES '…'` (regular expression)
    Matches,
}

/// A comparison expression inside `[…]`.
#[derive(Debug, Clone, PartialEq)]
pub enum ComparisonExpr {
    /// A single proposition `path op literal` (or `path IN (set)`).
    Proposition {
        /// The observable object type (`ipv4-addr`).
        object_type: String,
        /// The property path within the object (`value`, `hashes.MD5`).
        path: String,
        /// The comparison operator.
        op: ComparisonOp,
        /// Right-hand-side values (one element except for `IN`).
        values: Vec<PatternLiteral>,
        /// Whether the proposition is negated (`NOT` prefix).
        negated: bool,
    },
    /// Conjunction: all must hold (on the same observable object).
    And(Vec<ComparisonExpr>),
    /// Disjunction: any must hold.
    Or(Vec<ComparisonExpr>),
}

/// Temporal and repetition qualifiers attached to observation expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Qualifier {
    /// All matched observations fall within the duration (seconds).
    WithinSeconds(u64),
    /// The expression matches at least this many distinct observations.
    RepeatsTimes(u64),
    /// The expression matches using only observations inside the
    /// absolute window `[start, stop)` (millis since the Unix epoch).
    StartStop {
        /// Window start (inclusive).
        start_millis: i64,
        /// Window end (exclusive).
        stop_millis: i64,
    },
}

/// An observation expression: bracketed comparisons combined with
/// `AND`, `OR` and `FOLLOWEDBY`, optionally qualified.
#[derive(Debug, Clone, PartialEq)]
pub enum ObservationExpr {
    /// `[ comparison ]`
    Observation(ComparisonExpr),
    /// Both sides must match (on any observations).
    And(Box<ObservationExpr>, Box<ObservationExpr>),
    /// Either side must match.
    Or(Box<ObservationExpr>, Box<ObservationExpr>),
    /// Left side must match no later than the right side.
    FollowedBy(Box<ObservationExpr>, Box<ObservationExpr>),
    /// A qualified sub-expression.
    Qualified(Box<ObservationExpr>, Qualifier),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_coercions() {
        assert_eq!(PatternLiteral::Str("x".into()).as_str(), Some("x"));
        assert_eq!(PatternLiteral::Int(3).as_number(), Some(3.0));
        assert_eq!(PatternLiteral::Float(2.5).as_number(), Some(2.5));
        assert_eq!(PatternLiteral::Bool(true).as_number(), None);
        assert_eq!(PatternLiteral::Int(3).as_str(), None);
    }
}
