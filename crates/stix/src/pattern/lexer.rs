//! Tokenizer for the STIX patterning language.

use crate::error::StixError;

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds of the patterning grammar.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    /// An object path such as `ipv4-addr:value` or `file:hashes.MD5`.
    ObjectPath {
        object_type: String,
        path: String,
    },
    /// A bare keyword or identifier (AND, OR, NOT, IN, LIKE, …).
    Word(String),
    /// A single-quoted string literal, unescaped.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// Comparison operators.
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

fn err(offset: usize, message: impl Into<String>) -> StixError {
    StixError::Pattern {
        offset,
        message: message.into(),
    }
}

/// Tokenizes pattern source text.
pub(crate) fn lex(source: &str) -> Result<Vec<Token>, StixError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    offset: start,
                });
                i += 1;
            }
            b']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    offset: start,
                });
                i += 1;
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(err(start, "expected `!=`"));
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'\'' => {
                // Single-quoted string; backslash escapes the next byte,
                // and `''` is an escaped quote.
                let mut value = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(err(start, "unterminated string literal")),
                        Some(b'\\') => {
                            match bytes.get(i + 1) {
                                None => return Err(err(start, "unterminated string literal")),
                                Some(&c) => value.push(char::from(c)),
                            }
                            i += 2;
                        }
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                value.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&c) => {
                            value.push(char::from(c));
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(value),
                    offset: start,
                });
            }
            b'0'..=b'9' | b'-' | b'+' => {
                let mut j = i + 1;
                let mut is_float = false;
                while j < bytes.len() {
                    match bytes[j] {
                        b'0'..=b'9' => j += 1,
                        b'.' if !is_float => {
                            is_float = true;
                            j += 1;
                        }
                        _ => break,
                    }
                }
                let text = &source[i..j];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| err(start, format!("invalid number {text:?}")))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| err(start, format!("invalid number {text:?}")))?,
                    )
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = j;
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                // Identifier, keyword, or object path (contains `:`).
                let mut j = i;
                // Quotes are NOT identifier characters: `t'2018…'` must
                // lex as the word `t` followed by a string literal.
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || matches!(bytes[j], b'_' | b'-' | b'.'))
                {
                    j += 1;
                }
                // An object path is  <type> ':' <path>.
                if j < bytes.len() && bytes[j] == b':' {
                    let object_type = source[i..j].to_owned();
                    let mut k = j + 1;
                    while k < bytes.len()
                        && (bytes[k].is_ascii_alphanumeric()
                            || matches!(bytes[k], b'_' | b'-' | b'.' | b'[' | b']' | b'\'' | b'"'))
                    {
                        // A `]` only belongs to the path when it closes a
                        // `[`-index opened inside the path.
                        if bytes[k] == b']' && !source[j + 1..k].contains('[') {
                            break;
                        }
                        k += 1;
                    }
                    let path = source[j + 1..k].to_owned();
                    if path.is_empty() {
                        return Err(err(start, "object path missing property after `:`"));
                    }
                    tokens.push(Token {
                        kind: TokenKind::ObjectPath { object_type, path },
                        offset: start,
                    });
                    i = k;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Word(source[i..j].to_owned()),
                        offset: start,
                    });
                    i = j;
                }
            }
            _ => {
                return Err(err(
                    start,
                    format!("unexpected character {:?}", char::from(b)),
                ))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_simple_comparison() {
        let toks = lex("[ipv4-addr:value = '1.1.1.1']").unwrap();
        assert_eq!(toks.len(), 5);
        assert_eq!(toks[0].kind, TokenKind::LBracket);
        assert!(matches!(
            &toks[1].kind,
            TokenKind::ObjectPath { object_type, path }
                if object_type == "ipv4-addr" && path == "value"
        ));
        assert_eq!(toks[2].kind, TokenKind::Eq);
        assert_eq!(toks[3].kind, TokenKind::Str("1.1.1.1".into()));
        assert_eq!(toks[4].kind, TokenKind::RBracket);
    }

    #[test]
    fn lex_operators() {
        let toks = lex("= != < <= > >=").unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &TokenKind::Eq,
                &TokenKind::Ne,
                &TokenKind::Lt,
                &TokenKind::Le,
                &TokenKind::Gt,
                &TokenKind::Ge
            ]
        );
    }

    #[test]
    fn lex_string_escapes() {
        let toks = lex(r"['it\'s'] ['a''b']").unwrap();
        assert_eq!(toks[1].kind, TokenKind::Str("it's".into()));
        assert_eq!(toks[4].kind, TokenKind::Str("a'b".into()));
    }

    #[test]
    fn lex_numbers() {
        let toks = lex("42 -7 3.25").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Int(42));
        assert_eq!(toks[1].kind, TokenKind::Int(-7));
        assert_eq!(toks[2].kind, TokenKind::Float(3.25));
    }

    #[test]
    fn lex_hash_path() {
        let toks = lex("file:hashes.MD5").unwrap();
        assert!(matches!(
            &toks[0].kind,
            TokenKind::ObjectPath { object_type, path }
                if object_type == "file" && path == "hashes.MD5"
        ));
    }

    #[test]
    fn path_does_not_swallow_closing_bracket() {
        let toks = lex("[a:b = 1]").unwrap();
        assert_eq!(toks.last().unwrap().kind, TokenKind::RBracket);
    }

    #[test]
    fn lex_errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("a:").is_err());
        assert!(lex("#").is_err());
        assert!(lex("!x").is_err());
    }

    #[test]
    fn error_reports_offset() {
        let e = lex("[a:b = #]").unwrap_err();
        match e {
            StixError::Pattern { offset, .. } => assert_eq!(offset, 7),
            other => panic!("unexpected {other:?}"),
        }
    }
}
