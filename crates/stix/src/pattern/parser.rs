//! Recursive-descent parser for the STIX patterning grammar.
//!
//! ```text
//! pattern         := obs_or EOF
//! obs_or          := obs_and ( 'OR' obs_and )*
//! obs_and         := obs_followed ( 'AND' obs_followed )*
//! obs_followed    := obs_unit ( 'FOLLOWEDBY' obs_unit )*
//! obs_unit        := ( '[' comp_or ']' | '(' obs_or ')' ) qualifier*
//! qualifier       := 'WITHIN' int 'SECONDS' | 'REPEATS' int 'TIMES'
//!                  | 'START' t_string 'STOP' t_string
//! comp_or         := comp_and ( 'OR' comp_and )*
//! comp_and        := proposition ( 'AND' proposition )*
//! proposition     := 'NOT'? ( '(' comp_or ')' | object_path comp_rhs )
//! comp_rhs        := op literal | 'NOT'? 'IN' '(' literal (',' literal)* ')'
//!                  | 'NOT'? 'LIKE' string | 'NOT'? 'MATCHES' string
//! ```

use super::ast::{ComparisonExpr, ComparisonOp, ObservationExpr, PatternLiteral, Qualifier};
use super::lexer::{Token, TokenKind};
use crate::error::StixError;

pub(crate) fn parse(tokens: &[Token], source: &str) -> Result<ObservationExpr, StixError> {
    let mut p = Parser {
        tokens,
        pos: 0,
        source_len: source.len(),
    };
    let expr = p.obs_or()?;
    if p.pos != tokens.len() {
        return Err(p.error_here("unexpected trailing tokens"));
    }
    Ok(expr)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    source_len: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.source_len, |t| t.offset)
    }

    fn error_here(&self, message: impl Into<String>) -> StixError {
        StixError::Pattern {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<&TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| &t.kind);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if let Some(TokenKind::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case(word) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_word(&mut self, word: &str) -> Result<(), StixError> {
        if self.eat_word(word) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected `{word}`")))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), StixError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {what}")))
        }
    }

    // ---- observation level ----

    fn obs_or(&mut self) -> Result<ObservationExpr, StixError> {
        let mut left = self.obs_and()?;
        while self.eat_word("OR") {
            let right = self.obs_and()?;
            left = ObservationExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn obs_and(&mut self) -> Result<ObservationExpr, StixError> {
        let mut left = self.obs_followed()?;
        while self.eat_word("AND") {
            let right = self.obs_followed()?;
            left = ObservationExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn obs_followed(&mut self) -> Result<ObservationExpr, StixError> {
        let mut left = self.obs_unit()?;
        while self.eat_word("FOLLOWEDBY") {
            let right = self.obs_unit()?;
            left = ObservationExpr::FollowedBy(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn obs_unit(&mut self) -> Result<ObservationExpr, StixError> {
        let mut expr = if self.eat(&TokenKind::LBracket) {
            let comp = self.comp_or()?;
            self.expect(TokenKind::RBracket, "`]`")?;
            ObservationExpr::Observation(comp)
        } else if self.eat(&TokenKind::LParen) {
            let inner = self.obs_or()?;
            self.expect(TokenKind::RParen, "`)`")?;
            inner
        } else {
            return Err(self.error_here("expected `[` or `(`"));
        };
        loop {
            if self.eat_word("WITHIN") {
                let n = self.expect_positive_int("WITHIN duration")?;
                self.expect_word("SECONDS")?;
                expr = ObservationExpr::Qualified(Box::new(expr), Qualifier::WithinSeconds(n));
            } else if self.eat_word("REPEATS") {
                let n = self.expect_positive_int("REPEATS count")?;
                self.expect_word("TIMES")?;
                expr = ObservationExpr::Qualified(Box::new(expr), Qualifier::RepeatsTimes(n));
            } else if self.eat_word("START") {
                let start_millis = self.expect_timestamp("START instant")?;
                self.expect_word("STOP")?;
                let stop_millis = self.expect_timestamp("STOP instant")?;
                if stop_millis <= start_millis {
                    return Err(self.error_here("STOP must be later than START"));
                }
                expr = ObservationExpr::Qualified(
                    Box::new(expr),
                    Qualifier::StartStop {
                        start_millis,
                        stop_millis,
                    },
                );
            } else {
                break;
            }
        }
        Ok(expr)
    }

    /// Parses a `t'…'` timestamp literal (the `t` prefix is optional
    /// here; STIX writes `START t'2018-01-01T00:00:00Z'`).
    fn expect_timestamp(&mut self, what: &str) -> Result<i64, StixError> {
        // Accept either  Word("t") + Str  — the lexer splits `t'…'`
        // into an identifier and a string — or a bare string literal.
        if let Some(TokenKind::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case("t") {
                self.pos += 1;
            }
        }
        match self.peek() {
            Some(TokenKind::Str(s)) => {
                let parsed = cais_common::Timestamp::parse_rfc3339(s)
                    .map_err(|e| self.error_here(format!("invalid {what}: {e}")))?;
                self.pos += 1;
                Ok(parsed.unix_millis())
            }
            _ => Err(self.error_here(format!("expected timestamp string for {what}"))),
        }
    }

    fn expect_positive_int(&mut self, what: &str) -> Result<u64, StixError> {
        match self.peek() {
            Some(&TokenKind::Int(n)) if n > 0 => {
                self.pos += 1;
                Ok(n as u64)
            }
            _ => Err(self.error_here(format!("expected positive integer for {what}"))),
        }
    }

    // ---- comparison level ----

    fn comp_or(&mut self) -> Result<ComparisonExpr, StixError> {
        let mut parts = vec![self.comp_and()?];
        while self.eat_word("OR") {
            parts.push(self.comp_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            ComparisonExpr::Or(parts)
        })
    }

    fn comp_and(&mut self) -> Result<ComparisonExpr, StixError> {
        let mut parts = vec![self.proposition()?];
        while self.eat_word("AND") {
            parts.push(self.proposition()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            ComparisonExpr::And(parts)
        })
    }

    fn proposition(&mut self) -> Result<ComparisonExpr, StixError> {
        let negated = self.eat_word("NOT");
        if self.eat(&TokenKind::LParen) {
            let inner = self.comp_or()?;
            self.expect(TokenKind::RParen, "`)`")?;
            return Ok(if negated { negate(inner) } else { inner });
        }
        let (object_type, path) = match self.bump() {
            Some(TokenKind::ObjectPath { object_type, path }) => {
                (object_type.clone(), path.clone())
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.error_here("expected object path like `ipv4-addr:value`"));
            }
        };
        let rhs_negated = self.eat_word("NOT");
        let op = if self.eat(&TokenKind::Eq) {
            ComparisonOp::Eq
        } else if self.eat(&TokenKind::Ne) {
            ComparisonOp::Ne
        } else if self.eat(&TokenKind::Lt) {
            ComparisonOp::Lt
        } else if self.eat(&TokenKind::Le) {
            ComparisonOp::Le
        } else if self.eat(&TokenKind::Gt) {
            ComparisonOp::Gt
        } else if self.eat(&TokenKind::Ge) {
            ComparisonOp::Ge
        } else if self.eat_word("IN") {
            ComparisonOp::In
        } else if self.eat_word("LIKE") {
            ComparisonOp::Like
        } else if self.eat_word("MATCHES") {
            ComparisonOp::Matches
        } else {
            return Err(self.error_here("expected comparison operator"));
        };
        if rhs_negated
            && !matches!(
                op,
                ComparisonOp::In | ComparisonOp::Like | ComparisonOp::Matches
            )
        {
            return Err(self.error_here("`NOT` is only allowed before IN/LIKE/MATCHES here"));
        }
        let values = match op {
            ComparisonOp::In => {
                self.expect(TokenKind::LParen, "`(` after IN")?;
                let mut values = vec![self.literal()?];
                while self.eat(&TokenKind::Comma) {
                    values.push(self.literal()?);
                }
                self.expect(TokenKind::RParen, "`)` closing IN set")?;
                values
            }
            ComparisonOp::Like | ComparisonOp::Matches => {
                let lit = self.literal()?;
                if lit.as_str().is_none() {
                    return Err(self.error_here("LIKE/MATCHES require a string literal"));
                }
                vec![lit]
            }
            _ => vec![self.literal()?],
        };
        Ok(ComparisonExpr::Proposition {
            object_type,
            path,
            op,
            values,
            negated: negated || rhs_negated,
        })
    }

    fn literal(&mut self) -> Result<PatternLiteral, StixError> {
        let lit = match self.peek() {
            Some(TokenKind::Str(s)) => PatternLiteral::Str(s.clone()),
            Some(&TokenKind::Int(n)) => PatternLiteral::Int(n),
            Some(&TokenKind::Float(f)) => PatternLiteral::Float(f),
            Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case("true") => {
                PatternLiteral::Bool(true)
            }
            Some(TokenKind::Word(w)) if w.eq_ignore_ascii_case("false") => {
                PatternLiteral::Bool(false)
            }
            _ => return Err(self.error_here("expected literal value")),
        };
        self.pos += 1;
        Ok(lit)
    }
}

/// Applies De Morgan-free negation by flipping the `negated` flag on
/// every proposition and swapping And/Or.
fn negate(expr: ComparisonExpr) -> ComparisonExpr {
    match expr {
        ComparisonExpr::Proposition {
            object_type,
            path,
            op,
            values,
            negated,
        } => ComparisonExpr::Proposition {
            object_type,
            path,
            op,
            values,
            negated: !negated,
        },
        ComparisonExpr::And(parts) => ComparisonExpr::Or(parts.into_iter().map(negate).collect()),
        ComparisonExpr::Or(parts) => ComparisonExpr::And(parts.into_iter().map(negate).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn parse_src(src: &str) -> Result<ObservationExpr, StixError> {
        parse(&lex(src).unwrap(), src)
    }

    #[test]
    fn parses_nested_observation_logic() {
        let expr =
            parse_src("([a:x = 1] OR [b:y = 2]) AND [c:z = 3] FOLLOWEDBY [d:w = 4]").unwrap();
        // AND binds looser than FOLLOWEDBY, tighter than OR.
        match expr {
            ObservationExpr::And(left, right) => {
                assert!(matches!(*left, ObservationExpr::Or(..)));
                assert!(matches!(*right, ObservationExpr::FollowedBy(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_stacked_qualifiers() {
        let expr = parse_src("[a:x = 1] REPEATS 2 TIMES WITHIN 60 SECONDS").unwrap();
        match expr {
            ObservationExpr::Qualified(inner, Qualifier::WithinSeconds(60)) => {
                assert!(matches!(
                    *inner,
                    ObservationExpr::Qualified(_, Qualifier::RepeatsTimes(2))
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negated_group_applies_de_morgan() {
        let expr = parse_src("[NOT (a:x = 1 AND a:y = 2)]").unwrap();
        let ObservationExpr::Observation(comp) = expr else {
            panic!("expected observation");
        };
        match comp {
            ComparisonExpr::Or(parts) => {
                assert_eq!(parts.len(), 2);
                for p in parts {
                    assert!(matches!(
                        p,
                        ComparisonExpr::Proposition { negated: true, .. }
                    ));
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn not_in_parses() {
        let expr = parse_src("[a:x NOT IN ('1', '2')]").unwrap();
        let ObservationExpr::Observation(ComparisonExpr::Proposition {
            op,
            negated,
            values,
            ..
        }) = expr
        else {
            panic!("expected proposition");
        };
        assert_eq!(op, ComparisonOp::In);
        assert!(negated);
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn rejects_not_before_equality() {
        assert!(parse_src("[a:x NOT = 1]").is_err());
    }

    #[test]
    fn rejects_non_string_like() {
        assert!(parse_src("[a:x LIKE 5]").is_err());
    }

    #[test]
    fn rejects_zero_repeats() {
        assert!(parse_src("[a:x = 1] REPEATS 0 TIMES").is_err());
    }
}
