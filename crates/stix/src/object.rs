//! The [`StixObject`] sum type over every SDO and SRO, tagged on the wire
//! by the standard `type` property.

use std::fmt;

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::common::CommonProperties;
use crate::id::StixId;
use crate::sdo::{
    AttackPattern, Campaign, CourseOfAction, Identity, Indicator, IntrusionSet, Malware,
    ObservedData, Report, ThreatActor, Tool, Vulnerability,
};
use crate::sro::{Relationship, Sighting};

/// Any STIX 2.0 object: one of the twelve SDOs or the two SROs.
///
/// Serialization follows the STIX wire format: the variant is selected by
/// the `type` property of the JSON object.
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
///
/// let obj: StixObject = Vulnerability::builder("CVE-2017-9805").build().into();
/// assert_eq!(obj.object_type(), ObjectType::Vulnerability);
/// let json = serde_json::to_string(&obj).unwrap();
/// assert!(json.contains("\"type\":\"vulnerability\""));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "kebab-case")]
#[allow(missing_docs)]
pub enum StixObject {
    AttackPattern(AttackPattern),
    Campaign(Campaign),
    CourseOfAction(CourseOfAction),
    Identity(Identity),
    Indicator(Indicator),
    IntrusionSet(IntrusionSet),
    Malware(Malware),
    ObservedData(ObservedData),
    Report(Report),
    ThreatActor(ThreatActor),
    Tool(Tool),
    Vulnerability(Vulnerability),
    Relationship(Relationship),
    Sighting(Sighting),
}

/// Discriminant of a [`StixObject`], without the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
#[allow(missing_docs)]
pub enum ObjectType {
    AttackPattern,
    Campaign,
    CourseOfAction,
    Identity,
    Indicator,
    IntrusionSet,
    Malware,
    ObservedData,
    Report,
    ThreatActor,
    Tool,
    Vulnerability,
    Relationship,
    Sighting,
}

impl ObjectType {
    /// All object types.
    pub const ALL: [ObjectType; 14] = [
        ObjectType::AttackPattern,
        ObjectType::Campaign,
        ObjectType::CourseOfAction,
        ObjectType::Identity,
        ObjectType::Indicator,
        ObjectType::IntrusionSet,
        ObjectType::Malware,
        ObjectType::ObservedData,
        ObjectType::Report,
        ObjectType::ThreatActor,
        ObjectType::Tool,
        ObjectType::Vulnerability,
        ObjectType::Relationship,
        ObjectType::Sighting,
    ];

    /// The lowercase hyphenated name used in identifiers and the `type`
    /// property.
    pub fn as_str(self) -> &'static str {
        match self {
            ObjectType::AttackPattern => "attack-pattern",
            ObjectType::Campaign => "campaign",
            ObjectType::CourseOfAction => "course-of-action",
            ObjectType::Identity => "identity",
            ObjectType::Indicator => "indicator",
            ObjectType::IntrusionSet => "intrusion-set",
            ObjectType::Malware => "malware",
            ObjectType::ObservedData => "observed-data",
            ObjectType::Report => "report",
            ObjectType::ThreatActor => "threat-actor",
            ObjectType::Tool => "tool",
            ObjectType::Vulnerability => "vulnerability",
            ObjectType::Relationship => "relationship",
            ObjectType::Sighting => "sighting",
        }
    }

    /// Parses a type name.
    pub fn from_name(name: &str) -> Option<ObjectType> {
        ObjectType::ALL.into_iter().find(|t| t.as_str() == name)
    }

    /// Whether this is one of the six SDO heuristics the paper selects
    /// (Section III-B2a).
    pub fn is_paper_heuristic(self) -> bool {
        matches!(
            self,
            ObjectType::AttackPattern
                | ObjectType::Identity
                | ObjectType::Indicator
                | ObjectType::Malware
                | ObjectType::Tool
                | ObjectType::Vulnerability
        )
    }
}

impl fmt::Display for ObjectType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl StixObject {
    /// The object's type discriminant.
    pub fn object_type(&self) -> ObjectType {
        match self {
            StixObject::AttackPattern(_) => ObjectType::AttackPattern,
            StixObject::Campaign(_) => ObjectType::Campaign,
            StixObject::CourseOfAction(_) => ObjectType::CourseOfAction,
            StixObject::Identity(_) => ObjectType::Identity,
            StixObject::Indicator(_) => ObjectType::Indicator,
            StixObject::IntrusionSet(_) => ObjectType::IntrusionSet,
            StixObject::Malware(_) => ObjectType::Malware,
            StixObject::ObservedData(_) => ObjectType::ObservedData,
            StixObject::Report(_) => ObjectType::Report,
            StixObject::ThreatActor(_) => ObjectType::ThreatActor,
            StixObject::Tool(_) => ObjectType::Tool,
            StixObject::Vulnerability(_) => ObjectType::Vulnerability,
            StixObject::Relationship(_) => ObjectType::Relationship,
            StixObject::Sighting(_) => ObjectType::Sighting,
        }
    }

    /// The shared common properties, for any variant.
    pub fn common(&self) -> &CommonProperties {
        match self {
            StixObject::AttackPattern(o) => o.common(),
            StixObject::Campaign(o) => o.common(),
            StixObject::CourseOfAction(o) => o.common(),
            StixObject::Identity(o) => o.common(),
            StixObject::Indicator(o) => o.common(),
            StixObject::IntrusionSet(o) => o.common(),
            StixObject::Malware(o) => o.common(),
            StixObject::ObservedData(o) => o.common(),
            StixObject::Report(o) => o.common(),
            StixObject::ThreatActor(o) => o.common(),
            StixObject::Tool(o) => o.common(),
            StixObject::Vulnerability(o) => o.common(),
            StixObject::Relationship(o) => o.common(),
            StixObject::Sighting(o) => o.common(),
        }
    }

    /// Mutable access to the shared common properties, for any variant.
    pub fn common_mut(&mut self) -> &mut CommonProperties {
        match self {
            StixObject::AttackPattern(o) => o.common_mut(),
            StixObject::Campaign(o) => o.common_mut(),
            StixObject::CourseOfAction(o) => o.common_mut(),
            StixObject::Identity(o) => o.common_mut(),
            StixObject::Indicator(o) => o.common_mut(),
            StixObject::IntrusionSet(o) => o.common_mut(),
            StixObject::Malware(o) => o.common_mut(),
            StixObject::ObservedData(o) => o.common_mut(),
            StixObject::Report(o) => o.common_mut(),
            StixObject::ThreatActor(o) => o.common_mut(),
            StixObject::Tool(o) => o.common_mut(),
            StixObject::Vulnerability(o) => o.common_mut(),
            StixObject::Relationship(o) => o.common_mut(),
            StixObject::Sighting(o) => o.common_mut(),
        }
    }

    /// The object identifier.
    pub fn id(&self) -> &StixId {
        &self.common().id
    }

    /// The `created` timestamp.
    pub fn created(&self) -> Timestamp {
        self.common().created
    }

    /// The `modified` timestamp.
    pub fn modified(&self) -> Timestamp {
        self.common().modified
    }

    /// The object's display name, when its type has one.
    pub fn name(&self) -> Option<&str> {
        match self {
            StixObject::AttackPattern(o) => Some(&o.name),
            StixObject::Campaign(o) => Some(&o.name),
            StixObject::CourseOfAction(o) => Some(&o.name),
            StixObject::Identity(o) => Some(&o.name),
            StixObject::Indicator(o) => o.name.as_deref(),
            StixObject::IntrusionSet(o) => Some(&o.name),
            StixObject::Malware(o) => Some(&o.name),
            StixObject::ObservedData(_) => None,
            StixObject::Report(o) => Some(&o.name),
            StixObject::ThreatActor(o) => Some(&o.name),
            StixObject::Tool(o) => Some(&o.name),
            StixObject::Vulnerability(o) => Some(&o.name),
            StixObject::Relationship(_) => None,
            StixObject::Sighting(_) => None,
        }
    }
}

macro_rules! impl_from_sdo {
    ($($ty:ident),* $(,)?) => {
        $(
            impl From<$ty> for StixObject {
                fn from(value: $ty) -> StixObject {
                    StixObject::$ty(value)
                }
            }
        )*
    };
}

impl_from_sdo!(
    AttackPattern,
    Campaign,
    CourseOfAction,
    Identity,
    Indicator,
    IntrusionSet,
    Malware,
    ObservedData,
    Report,
    ThreatActor,
    Tool,
    Vulnerability,
    Relationship,
    Sighting,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tag_on_wire() {
        let obj: StixObject = Malware::builder("emotet").label("trojan").build().into();
        let json = serde_json::to_value(&obj).unwrap();
        assert_eq!(json["type"], "malware");
        let back: StixObject = serde_json::from_value(json).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn object_type_names_match_id_prefixes() {
        let obj: StixObject = Tool::builder("nmap").build().into();
        assert_eq!(obj.object_type().as_str(), obj.id().object_type());
    }

    #[test]
    fn from_name_roundtrip() {
        for ty in ObjectType::ALL {
            assert_eq!(ObjectType::from_name(ty.as_str()), Some(ty));
        }
        assert_eq!(ObjectType::from_name("nonsense"), None);
    }

    #[test]
    fn paper_heuristics_are_the_six_selected_sdos() {
        let selected: Vec<ObjectType> = ObjectType::ALL
            .into_iter()
            .filter(|t| t.is_paper_heuristic())
            .collect();
        assert_eq!(
            selected,
            vec![
                ObjectType::AttackPattern,
                ObjectType::Identity,
                ObjectType::Indicator,
                ObjectType::Malware,
                ObjectType::Tool,
                ObjectType::Vulnerability,
            ]
        );
    }

    #[test]
    fn name_accessor() {
        let obj: StixObject = Identity::builder("ACME").build().into();
        assert_eq!(obj.name(), Some("ACME"));
    }
}
