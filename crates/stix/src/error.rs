//! Error types for STIX parsing, validation and pattern evaluation.

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug)]
pub enum StixError {
    /// A STIX identifier was syntactically invalid.
    InvalidId {
        /// The offending identifier string.
        input: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A JSON document could not be parsed into STIX objects.
    Json(serde_json::Error),
    /// An object failed semantic validation.
    Validation {
        /// Identifier of the failing object, when known.
        id: Option<String>,
        /// The failed constraint.
        message: String,
    },
    /// A STIX pattern was syntactically invalid.
    Pattern {
        /// Byte offset of the error within the pattern source.
        offset: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for StixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StixError::InvalidId { input, reason } => {
                write!(f, "invalid STIX id {input:?}: {reason}")
            }
            StixError::Json(err) => write!(f, "invalid STIX JSON: {err}"),
            StixError::Validation { id, message } => match id {
                Some(id) => write!(f, "validation failed for {id}: {message}"),
                None => write!(f, "validation failed: {message}"),
            },
            StixError::Pattern { offset, message } => {
                write!(f, "invalid STIX pattern at offset {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for StixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StixError::Json(err) => Some(err),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for StixError {
    fn from(err: serde_json::Error) -> Self {
        StixError::Json(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StixError::InvalidId {
            input: "x".into(),
            reason: "missing `--` separator",
        };
        assert!(e.to_string().contains("missing `--` separator"));

        let e = StixError::Validation {
            id: Some("indicator--abc".into()),
            message: "pattern is required".into(),
        };
        assert!(e.to_string().contains("indicator--abc"));

        let e = StixError::Pattern {
            offset: 7,
            message: "unexpected token".into(),
        };
        assert!(e.to_string().contains("offset 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StixError>();
    }
}
