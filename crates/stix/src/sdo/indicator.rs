//! The `indicator` SDO: a detection pattern for suspicious or malicious
//! activity.

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::common::{CommonProperties, KillChainPhase};
use crate::id::StixId;
use crate::pattern::Pattern;

/// A pattern used to detect suspicious or malicious cyber activity.
///
/// `pattern` and `valid_from` are required by STIX 2.0; the pattern is
/// stored as source text and can be compiled on demand with
/// [`Indicator::compiled_pattern`].
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
/// use cais_common::Timestamp;
///
/// let ind = Indicator::builder(
///     "[ipv4-addr:value = '203.0.113.9']",
///     Timestamp::EPOCH,
/// )
/// .name("struts-c2")
/// .label("malicious-activity")
/// .build();
/// assert!(ind.compiled_pattern().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Indicator {
    #[serde(flatten)]
    common: CommonProperties,
    /// Optional display name.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub name: Option<String>,
    /// Free-text description.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// The STIX patterning expression, as source text.
    pub pattern: String,
    /// When the indicator becomes valid.
    pub valid_from: Timestamp,
    /// When the indicator stops being valid, if bounded.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub valid_until: Option<Timestamp>,
    /// Kill-chain phases this indicator detects.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub kill_chain_phases: Vec<KillChainPhase>,
}

impl Indicator {
    /// Starts building an indicator from its two required properties.
    pub fn builder(pattern: impl Into<String>, valid_from: Timestamp) -> IndicatorBuilder {
        IndicatorBuilder {
            common: CommonProperties::new("indicator", Timestamp::now()),
            name: None,
            description: None,
            pattern: pattern.into(),
            valid_from,
            valid_until: None,
            kill_chain_phases: Vec::new(),
        }
    }

    /// The shared SDO properties.
    pub fn common(&self) -> &CommonProperties {
        &self.common
    }

    /// Mutable access to the shared SDO properties.
    pub fn common_mut(&mut self) -> &mut CommonProperties {
        &mut self.common
    }

    /// The object identifier.
    pub fn id(&self) -> &StixId {
        &self.common.id
    }

    /// Parses the pattern text into an executable [`Pattern`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::StixError::Pattern`] when the pattern text is not
    /// valid STIX patterning syntax.
    pub fn compiled_pattern(&self) -> Result<Pattern, crate::StixError> {
        Pattern::parse(&self.pattern)
    }

    /// Whether the indicator is valid at the given instant.
    pub fn is_valid_at(&self, at: Timestamp) -> bool {
        at >= self.valid_from && self.valid_until.is_none_or(|until| at < until)
    }
}

/// Builder for [`Indicator`].
#[derive(Debug, Clone)]
pub struct IndicatorBuilder {
    common: CommonProperties,
    name: Option<String>,
    description: Option<String>,
    pattern: String,
    valid_from: Timestamp,
    valid_until: Option<Timestamp>,
    kill_chain_phases: Vec<KillChainPhase>,
}

super::impl_common_builder!(IndicatorBuilder);

impl IndicatorBuilder {
    /// Sets the display name.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the description.
    pub fn description(&mut self, description: impl Into<String>) -> &mut Self {
        self.description = Some(description.into());
        self
    }

    /// Sets the end of the validity window.
    pub fn valid_until(&mut self, until: Timestamp) -> &mut Self {
        self.valid_until = Some(until);
        self
    }

    /// Adds a kill-chain phase.
    pub fn kill_chain_phase(&mut self, phase: KillChainPhase) -> &mut Self {
        self.kill_chain_phases.push(phase);
        self
    }

    /// Builds the indicator.
    pub fn build(&self) -> Indicator {
        Indicator {
            common: self.common.clone(),
            name: self.name.clone(),
            description: self.description.clone(),
            pattern: self.pattern.clone(),
            valid_from: self.valid_from,
            valid_until: self.valid_until,
            kill_chain_phases: self.kill_chain_phases.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_window() {
        let from = Timestamp::from_ymd_hms(2017, 9, 13, 0, 0, 0);
        let until = from.add_days(30);
        let ind = Indicator::builder("[domain-name:value = 'evil.example']", from)
            .valid_until(until)
            .build();
        assert!(!ind.is_valid_at(from.add_days(-1)));
        assert!(ind.is_valid_at(from));
        assert!(ind.is_valid_at(from.add_days(29)));
        assert!(!ind.is_valid_at(until));
    }

    #[test]
    fn unbounded_validity() {
        let from = Timestamp::EPOCH;
        let ind = Indicator::builder("[url:value = 'http://x.example/a']", from).build();
        assert!(ind.is_valid_at(from.add_days(10_000)));
    }

    #[test]
    fn compiled_pattern_catches_syntax_errors() {
        let ind = Indicator::builder("[[broken", Timestamp::EPOCH).build();
        assert!(ind.compiled_pattern().is_err());
    }

    #[test]
    fn json_roundtrip_with_kill_chain() {
        let ind = Indicator::builder("[ipv4-addr:value = '203.0.113.9']", Timestamp::EPOCH)
            .name("c2-beacon")
            .kill_chain_phase(KillChainPhase::lockheed_martin("command-and-control"))
            .build();
        let json = serde_json::to_string(&ind).unwrap();
        let back: Indicator = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ind);
    }
}
