//! The `campaign` SDO: a grouping of adversarial behavior over time.

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::common::CommonProperties;
use crate::id::StixId;

/// A grouping of adversarial behaviors describing a set of malicious
/// activities that occur over a period of time against a specific set of
/// targets.
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
///
/// let c = Campaign::builder("operation struts-storm")
///     .objective("credential theft")
///     .alias("struts-storm")
///     .build();
/// assert_eq!(c.aliases, vec!["struts-storm"]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    #[serde(flatten)]
    common: CommonProperties,
    /// Name of the campaign.
    pub name: String,
    /// Free-text description.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// Alternative names.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub aliases: Vec<String>,
    /// When activity was first seen.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub first_seen: Option<Timestamp>,
    /// When activity was last seen.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub last_seen: Option<Timestamp>,
    /// The campaign's primary goal.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub objective: Option<String>,
}

impl Campaign {
    /// Starts building a campaign with the given name.
    pub fn builder(name: impl Into<String>) -> CampaignBuilder {
        CampaignBuilder {
            common: CommonProperties::new("campaign", Timestamp::now()),
            name: name.into(),
            description: None,
            aliases: Vec::new(),
            first_seen: None,
            last_seen: None,
            objective: None,
        }
    }

    /// The shared SDO properties.
    pub fn common(&self) -> &CommonProperties {
        &self.common
    }

    /// Mutable access to the shared SDO properties.
    pub fn common_mut(&mut self) -> &mut CommonProperties {
        &mut self.common
    }

    /// The object identifier.
    pub fn id(&self) -> &StixId {
        &self.common.id
    }
}

/// Builder for [`Campaign`].
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    common: CommonProperties,
    name: String,
    description: Option<String>,
    aliases: Vec<String>,
    first_seen: Option<Timestamp>,
    last_seen: Option<Timestamp>,
    objective: Option<String>,
}

super::impl_common_builder!(CampaignBuilder);

impl CampaignBuilder {
    /// Sets the description.
    pub fn description(&mut self, description: impl Into<String>) -> &mut Self {
        self.description = Some(description.into());
        self
    }

    /// Adds an alias.
    pub fn alias(&mut self, alias: impl Into<String>) -> &mut Self {
        self.aliases.push(alias.into());
        self
    }

    /// Sets when activity was first seen.
    pub fn first_seen(&mut self, first_seen: Timestamp) -> &mut Self {
        self.first_seen = Some(first_seen);
        self
    }

    /// Sets when activity was last seen.
    pub fn last_seen(&mut self, last_seen: Timestamp) -> &mut Self {
        self.last_seen = Some(last_seen);
        self
    }

    /// Sets the campaign objective.
    pub fn objective(&mut self, objective: impl Into<String>) -> &mut Self {
        self.objective = Some(objective.into());
        self
    }

    /// Builds the campaign.
    pub fn build(&self) -> Campaign {
        Campaign {
            common: self.common.clone(),
            name: self.name.clone(),
            description: self.description.clone(),
            aliases: self.aliases.clone(),
            first_seen: self.first_seen,
            last_seen: self.last_seen,
            objective: self.objective.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let ts = Timestamp::from_ymd_hms(2019, 1, 1, 0, 0, 0);
        let c = Campaign::builder("op-x")
            .first_seen(ts)
            .last_seen(ts.add_days(30))
            .objective("espionage")
            .build();
        let json = serde_json::to_string(&c).unwrap();
        let back: Campaign = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
