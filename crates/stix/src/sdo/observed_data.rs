//! The `observed-data` SDO: raw observations of cyber entities.

use std::collections::BTreeMap;

use cais_common::{Observable, Timestamp};
use serde::{Deserialize, Serialize};

use crate::common::CommonProperties;
use crate::id::StixId;

/// A single cyber-observable object within an observation: an object type
/// (for example `ipv4-addr`) plus its properties.
///
/// STIX 2.0 cyber observables are a large specification of their own;
/// this implementation models the subset the patterning evaluator and the
/// platform need — a type, a primary `value`, and arbitrary extra
/// string properties (used for `file:hashes.*` style paths).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CyberObservable {
    /// The observable object type, such as `ipv4-addr` or `domain-name`.
    #[serde(rename = "type")]
    pub object_type: String,
    /// The primary value, when the type has one.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub value: Option<String>,
    /// Additional properties (property path → value).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty", flatten)]
    pub properties: BTreeMap<String, String>,
}

impl CyberObservable {
    /// Creates an observable with a primary value.
    pub fn new(object_type: impl Into<String>, value: impl Into<String>) -> Self {
        CyberObservable {
            object_type: object_type.into(),
            value: Some(value.into()),
            properties: BTreeMap::new(),
        }
    }

    /// Adds an extra property, builder-style.
    pub fn with_property(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.properties.insert(key.into(), value.into());
        self
    }

    /// Looks up a property by STIX object-path segment (`value` resolves
    /// to the primary value; anything else resolves to
    /// [`CyberObservable::properties`]).
    pub fn property(&self, path: &str) -> Option<&str> {
        if path == "value" {
            self.value.as_deref()
        } else {
            self.properties.get(path).map(String::as_str)
        }
    }
}

impl From<&Observable> for CyberObservable {
    fn from(obs: &Observable) -> Self {
        use cais_common::ObservableKind;
        match obs.kind() {
            ObservableKind::Md5 => CyberObservable {
                object_type: "file".into(),
                value: None,
                properties: BTreeMap::from([("hashes.MD5".to_owned(), obs.value().to_owned())]),
            },
            ObservableKind::Sha1 => CyberObservable {
                object_type: "file".into(),
                value: None,
                properties: BTreeMap::from([("hashes.SHA-1".to_owned(), obs.value().to_owned())]),
            },
            ObservableKind::Sha256 => CyberObservable {
                object_type: "file".into(),
                value: None,
                properties: BTreeMap::from([("hashes.SHA-256".to_owned(), obs.value().to_owned())]),
            },
            kind => CyberObservable::new(kind.stix_object_type(), obs.value()),
        }
    }
}

/// Raw information observed on systems and networks (connections, files,
/// addresses) over a window of time.
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
/// use cais_stix::sdo::CyberObservable;
/// use cais_common::Timestamp;
///
/// let t = Timestamp::EPOCH;
/// let od = ObservedData::builder(t, t.add_millis(60_000), 3)
///     .object("0", CyberObservable::new("ipv4-addr", "203.0.113.9"))
///     .build();
/// assert_eq!(od.number_observed, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservedData {
    #[serde(flatten)]
    common: CommonProperties,
    /// Start of the observation window.
    pub first_observed: Timestamp,
    /// End of the observation window.
    pub last_observed: Timestamp,
    /// How many times the observation occurred (at least 1).
    pub number_observed: u32,
    /// The observed cyber objects, keyed by local identifier.
    pub objects: BTreeMap<String, CyberObservable>,
}

impl ObservedData {
    /// Starts building observed data for a window seen `number_observed`
    /// times.
    pub fn builder(
        first_observed: Timestamp,
        last_observed: Timestamp,
        number_observed: u32,
    ) -> ObservedDataBuilder {
        ObservedDataBuilder {
            common: CommonProperties::new("observed-data", Timestamp::now()),
            first_observed,
            last_observed,
            number_observed: number_observed.max(1),
            objects: BTreeMap::new(),
        }
    }

    /// The shared SDO properties.
    pub fn common(&self) -> &CommonProperties {
        &self.common
    }

    /// Mutable access to the shared SDO properties.
    pub fn common_mut(&mut self) -> &mut CommonProperties {
        &mut self.common
    }

    /// The object identifier.
    pub fn id(&self) -> &StixId {
        &self.common.id
    }
}

/// Builder for [`ObservedData`].
#[derive(Debug, Clone)]
pub struct ObservedDataBuilder {
    common: CommonProperties,
    first_observed: Timestamp,
    last_observed: Timestamp,
    number_observed: u32,
    objects: BTreeMap<String, CyberObservable>,
}

super::impl_common_builder!(ObservedDataBuilder);

impl ObservedDataBuilder {
    /// Adds an observed object under a local key (conventionally `"0"`,
    /// `"1"`, …).
    pub fn object(&mut self, key: impl Into<String>, object: CyberObservable) -> &mut Self {
        self.objects.insert(key.into(), object);
        self
    }

    /// Builds the observed-data object.
    pub fn build(&self) -> ObservedData {
        ObservedData {
            common: self.common.clone(),
            first_observed: self.first_observed,
            last_observed: self.last_observed,
            number_observed: self.number_observed,
            objects: self.objects.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_common::ObservableKind;

    #[test]
    fn number_observed_is_at_least_one() {
        let od = ObservedData::builder(Timestamp::EPOCH, Timestamp::EPOCH, 0).build();
        assert_eq!(od.number_observed, 1);
    }

    #[test]
    fn observable_conversion_maps_hashes_to_file() {
        let obs = Observable::new(ObservableKind::Md5, "d41d8cd98f00b204e9800998ecf8427e");
        let co = CyberObservable::from(&obs);
        assert_eq!(co.object_type, "file");
        assert_eq!(
            co.property("hashes.MD5"),
            Some("d41d8cd98f00b204e9800998ecf8427e")
        );
    }

    #[test]
    fn observable_conversion_maps_network_types() {
        let obs = Observable::new(ObservableKind::Ipv4, "203.0.113.9");
        let co = CyberObservable::from(&obs);
        assert_eq!(co.object_type, "ipv4-addr");
        assert_eq!(co.property("value"), Some("203.0.113.9"));
    }

    #[test]
    fn json_roundtrip() {
        let t = Timestamp::EPOCH;
        let od = ObservedData::builder(t, t.add_millis(1), 2)
            .object("0", CyberObservable::new("domain-name", "evil.example"))
            .object(
                "1",
                CyberObservable::new("ipv4-addr", "203.0.113.9")
                    .with_property("resolves_to", "evil.example"),
            )
            .build();
        let json = serde_json::to_string(&od).unwrap();
        let back: ObservedData = serde_json::from_str(&json).unwrap();
        assert_eq!(back, od);
    }
}
