//! The twelve STIX 2.0 Domain Objects.
//!
//! Each SDO is a plain data struct whose JSON form matches the STIX 2.0
//! specification (`type`, `id`, `created`, `modified`, plus type-specific
//! properties), constructed through a non-consuming builder.
//!
//! The paper's heuristic features that have no STIX 2.0 native property
//! (for example a vulnerability's affected operating systems, or the
//! OSINT source of any object) are carried as `x_cais_*` custom
//! properties, exactly as Section III-C of the paper describes MISP's
//! extensible export doing.

mod attack_pattern;
mod campaign;
mod course_of_action;
mod identity;
mod indicator;
mod intrusion_set;
mod malware;
mod observed_data;
mod report;
mod threat_actor;
mod tool;
mod vulnerability;

pub use attack_pattern::{AttackPattern, AttackPatternBuilder};
pub use campaign::{Campaign, CampaignBuilder};
pub use course_of_action::{CourseOfAction, CourseOfActionBuilder};
pub use identity::{Identity, IdentityBuilder};
pub use indicator::{Indicator, IndicatorBuilder};
pub use intrusion_set::{IntrusionSet, IntrusionSetBuilder};
pub use malware::{Malware, MalwareBuilder};
pub use observed_data::{CyberObservable, ObservedData, ObservedDataBuilder};
pub use report::{Report, ReportBuilder};
pub use threat_actor::{ThreatActor, ThreatActorBuilder};
pub use tool::{Tool, ToolBuilder};
pub use vulnerability::{Vulnerability, VulnerabilityBuilder};

/// Implements the builder methods for properties common to every SDO.
///
/// Every SDO builder holds a `common: crate::common::CommonProperties`
/// field; this macro adds the shared fluent setters to the builder.
macro_rules! impl_common_builder {
    ($builder:ident) => {
        impl $builder {
            /// Sets the object identifier (replacing the generated one).
            pub fn id(&mut self, id: crate::id::StixId) -> &mut Self {
                self.common.id = id;
                self
            }

            /// Sets the `created` timestamp.
            pub fn created(&mut self, created: cais_common::Timestamp) -> &mut Self {
                self.common.created = created;
                self
            }

            /// Sets the `modified` timestamp.
            pub fn modified(&mut self, modified: cais_common::Timestamp) -> &mut Self {
                self.common.modified = modified;
                self
            }

            /// Sets the creator identity reference.
            pub fn created_by(&mut self, created_by: crate::id::StixId) -> &mut Self {
                self.common.created_by_ref = Some(created_by);
                self
            }

            /// Appends an open-vocabulary label.
            pub fn label(&mut self, label: impl Into<String>) -> &mut Self {
                self.common.labels.push(label.into());
                self
            }

            /// Appends an external reference.
            pub fn external_reference(
                &mut self,
                reference: crate::common::ExternalReference,
            ) -> &mut Self {
                self.common.external_references.push(reference);
                self
            }

            /// Sets the confidence (0–100).
            pub fn confidence(&mut self, confidence: u8) -> &mut Self {
                self.common.confidence = Some(confidence.min(100));
                self
            }

            /// Records the OSINT feed this object came from
            /// (`x_cais_osint_source`).
            pub fn osint_source(&mut self, source: impl Into<String>) -> &mut Self {
                self.common.osint_source = Some(source.into());
                self
            }

            /// Records the source kind (`x_cais_source_type`), for example
            /// `osint` or `infrastructure`.
            pub fn source_type(&mut self, source_type: impl Into<String>) -> &mut Self {
                self.common.source_type = Some(source_type.into());
                self
            }
        }
    };
}

pub(crate) use impl_common_builder;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ExternalReference;
    use cais_common::Timestamp;

    #[test]
    fn builders_share_common_setters() {
        let ts = Timestamp::from_ymd_hms(2017, 9, 13, 0, 0, 0);
        let v = Vulnerability::builder("CVE-2017-9805")
            .created(ts)
            .modified(ts)
            .confidence(250) // clamped to 100
            .osint_source("nvd-feed")
            .source_type("osint")
            .external_reference(ExternalReference::cve("CVE-2017-9805"))
            .build();
        assert_eq!(v.common().created, ts);
        assert_eq!(v.common().confidence, Some(100));
        assert_eq!(v.common().osint_source.as_deref(), Some("nvd-feed"));
        assert_eq!(v.common().known_reference_count(), 1);
    }

    #[test]
    fn every_sdo_has_correct_type_prefix() {
        let ts = Timestamp::EPOCH;
        assert_eq!(
            AttackPattern::builder("spearphishing")
                .created(ts)
                .build()
                .id()
                .object_type(),
            "attack-pattern"
        );
        assert_eq!(
            Campaign::builder("op-x").build().id().object_type(),
            "campaign"
        );
        assert_eq!(
            CourseOfAction::builder("patch").build().id().object_type(),
            "course-of-action"
        );
        assert_eq!(
            Identity::builder("ACME").build().id().object_type(),
            "identity"
        );
        assert_eq!(
            Indicator::builder("[ipv4-addr:value = '1.2.3.4']", ts)
                .build()
                .id()
                .object_type(),
            "indicator"
        );
        assert_eq!(
            IntrusionSet::builder("APT-00").build().id().object_type(),
            "intrusion-set"
        );
        assert_eq!(
            Malware::builder("wannacry").build().id().object_type(),
            "malware"
        );
        assert_eq!(
            ObservedData::builder(ts, ts, 1).build().id().object_type(),
            "observed-data"
        );
        assert_eq!(
            Report::builder("weekly", ts).build().id().object_type(),
            "report"
        );
        assert_eq!(
            ThreatActor::builder("evil-corp").build().id().object_type(),
            "threat-actor"
        );
        assert_eq!(Tool::builder("nmap").build().id().object_type(), "tool");
        assert_eq!(
            Vulnerability::builder("CVE-2017-9805")
                .build()
                .id()
                .object_type(),
            "vulnerability"
        );
    }
}
