//! The `tool` SDO: legitimate software usable by threat actors.

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::common::{CommonProperties, KillChainPhase};
use crate::id::StixId;

/// Legitimate software that can be used by threat actors to perform
/// attacks (for example a port scanner or a remote-administration tool).
///
/// The tool type lives in `labels`, per STIX 2.0 convention (paper
/// feature `tool_type`).
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
///
/// let tool = Tool::builder("nmap")
///     .label("vulnerability-scanning")
///     .tool_version("7.95")
///     .build();
/// assert_eq!(tool.tool_type(), Some("vulnerability-scanning"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tool {
    #[serde(flatten)]
    common: CommonProperties,
    /// Name of the tool.
    pub name: String,
    /// Free-text description.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// Kill-chain phases the tool is used in.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub kill_chain_phases: Vec<KillChainPhase>,
    /// Version of the tool.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub tool_version: Option<String>,
}

impl Tool {
    /// Starts building a tool with the given name.
    pub fn builder(name: impl Into<String>) -> ToolBuilder {
        ToolBuilder {
            common: CommonProperties::new("tool", Timestamp::now()),
            name: name.into(),
            description: None,
            kill_chain_phases: Vec::new(),
            tool_version: None,
        }
    }

    /// The shared SDO properties.
    pub fn common(&self) -> &CommonProperties {
        &self.common
    }

    /// Mutable access to the shared SDO properties.
    pub fn common_mut(&mut self) -> &mut CommonProperties {
        &mut self.common
    }

    /// The object identifier.
    pub fn id(&self) -> &StixId {
        &self.common.id
    }

    /// The tool type: the first label (paper feature `tool_type`).
    pub fn tool_type(&self) -> Option<&str> {
        self.common.labels.first().map(String::as_str)
    }
}

/// Builder for [`Tool`].
#[derive(Debug, Clone)]
pub struct ToolBuilder {
    common: CommonProperties,
    name: String,
    description: Option<String>,
    kill_chain_phases: Vec<KillChainPhase>,
    tool_version: Option<String>,
}

super::impl_common_builder!(ToolBuilder);

impl ToolBuilder {
    /// Sets the description.
    pub fn description(&mut self, description: impl Into<String>) -> &mut Self {
        self.description = Some(description.into());
        self
    }

    /// Adds a kill-chain phase.
    pub fn kill_chain_phase(&mut self, phase: KillChainPhase) -> &mut Self {
        self.kill_chain_phases.push(phase);
        self
    }

    /// Sets the tool version.
    pub fn tool_version(&mut self, version: impl Into<String>) -> &mut Self {
        self.tool_version = Some(version.into());
        self
    }

    /// Builds the tool.
    pub fn build(&self) -> Tool {
        Tool {
            common: self.common.clone(),
            name: self.name.clone(),
            description: self.description.clone(),
            kill_chain_phases: self.kill_chain_phases.clone(),
            tool_version: self.tool_version.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_type_from_labels() {
        let t = Tool::builder("mimikatz")
            .label("credential-exploitation")
            .build();
        assert_eq!(t.tool_type(), Some("credential-exploitation"));
        assert_eq!(Tool::builder("unknown").build().tool_type(), None);
    }

    #[test]
    fn json_roundtrip() {
        let t = Tool::builder("nmap")
            .label("vulnerability-scanning")
            .tool_version("7.95")
            .description("network mapper")
            .build();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tool = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
