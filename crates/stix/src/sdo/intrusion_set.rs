//! The `intrusion-set` SDO: a grouped set of adversarial behaviors and
//! resources with common properties.

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::common::CommonProperties;
use crate::id::StixId;

/// A grouped set of adversarial behaviors and resources believed to be
/// orchestrated by a single organization.
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
///
/// let is = IntrusionSet::builder("APT-00")
///     .goal("exfiltrate intellectual property")
///     .resource_level("organization")
///     .primary_motivation("organizational-gain")
///     .build();
/// assert_eq!(is.goals.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntrusionSet {
    #[serde(flatten)]
    common: CommonProperties,
    /// Name of the intrusion set.
    pub name: String,
    /// Free-text description.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// Alternative names.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub aliases: Vec<String>,
    /// When activity was first seen.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub first_seen: Option<Timestamp>,
    /// When activity was last seen.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub last_seen: Option<Timestamp>,
    /// High-level goals.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub goals: Vec<String>,
    /// Organizational level of resources (`individual`, `club`, `team`,
    /// `organization`, `government`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub resource_level: Option<String>,
    /// Primary motivation (see [`crate::vocab::attack_motivation`]).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub primary_motivation: Option<String>,
    /// Secondary motivations.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub secondary_motivations: Vec<String>,
}

impl IntrusionSet {
    /// Starts building an intrusion set with the given name.
    pub fn builder(name: impl Into<String>) -> IntrusionSetBuilder {
        IntrusionSetBuilder {
            common: CommonProperties::new("intrusion-set", Timestamp::now()),
            name: name.into(),
            description: None,
            aliases: Vec::new(),
            first_seen: None,
            last_seen: None,
            goals: Vec::new(),
            resource_level: None,
            primary_motivation: None,
            secondary_motivations: Vec::new(),
        }
    }

    /// The shared SDO properties.
    pub fn common(&self) -> &CommonProperties {
        &self.common
    }

    /// Mutable access to the shared SDO properties.
    pub fn common_mut(&mut self) -> &mut CommonProperties {
        &mut self.common
    }

    /// The object identifier.
    pub fn id(&self) -> &StixId {
        &self.common.id
    }
}

/// Builder for [`IntrusionSet`].
#[derive(Debug, Clone)]
pub struct IntrusionSetBuilder {
    common: CommonProperties,
    name: String,
    description: Option<String>,
    aliases: Vec<String>,
    first_seen: Option<Timestamp>,
    last_seen: Option<Timestamp>,
    goals: Vec<String>,
    resource_level: Option<String>,
    primary_motivation: Option<String>,
    secondary_motivations: Vec<String>,
}

super::impl_common_builder!(IntrusionSetBuilder);

impl IntrusionSetBuilder {
    /// Sets the description.
    pub fn description(&mut self, description: impl Into<String>) -> &mut Self {
        self.description = Some(description.into());
        self
    }

    /// Adds an alias.
    pub fn alias(&mut self, alias: impl Into<String>) -> &mut Self {
        self.aliases.push(alias.into());
        self
    }

    /// Sets when activity was first seen.
    pub fn first_seen(&mut self, first_seen: Timestamp) -> &mut Self {
        self.first_seen = Some(first_seen);
        self
    }

    /// Sets when activity was last seen.
    pub fn last_seen(&mut self, last_seen: Timestamp) -> &mut Self {
        self.last_seen = Some(last_seen);
        self
    }

    /// Adds a goal.
    pub fn goal(&mut self, goal: impl Into<String>) -> &mut Self {
        self.goals.push(goal.into());
        self
    }

    /// Sets the resource level.
    pub fn resource_level(&mut self, level: impl Into<String>) -> &mut Self {
        self.resource_level = Some(level.into());
        self
    }

    /// Sets the primary motivation.
    pub fn primary_motivation(&mut self, motivation: impl Into<String>) -> &mut Self {
        self.primary_motivation = Some(motivation.into());
        self
    }

    /// Adds a secondary motivation.
    pub fn secondary_motivation(&mut self, motivation: impl Into<String>) -> &mut Self {
        self.secondary_motivations.push(motivation.into());
        self
    }

    /// Builds the intrusion set.
    pub fn build(&self) -> IntrusionSet {
        IntrusionSet {
            common: self.common.clone(),
            name: self.name.clone(),
            description: self.description.clone(),
            aliases: self.aliases.clone(),
            first_seen: self.first_seen,
            last_seen: self.last_seen,
            goals: self.goals.clone(),
            resource_level: self.resource_level.clone(),
            primary_motivation: self.primary_motivation.clone(),
            secondary_motivations: self.secondary_motivations.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let is = IntrusionSet::builder("APT-00")
            .alias("zero-squad")
            .goal("espionage")
            .primary_motivation("organizational-gain")
            .secondary_motivation("dominance")
            .build();
        let json = serde_json::to_string(&is).unwrap();
        let back: IntrusionSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, is);
    }
}
