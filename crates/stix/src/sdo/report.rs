//! The `report` SDO: a collection of threat intelligence focused on one
//! or more topics.

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::common::CommonProperties;
use crate::id::StixId;

/// A collection of threat intelligence focused on one or more topics,
/// referencing the STIX objects it covers.
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
/// use cais_common::Timestamp;
///
/// let vuln = Vulnerability::builder("CVE-2017-9805").build();
/// let report = Report::builder("struts advisory", Timestamp::EPOCH)
///     .label("vulnerability")
///     .object_ref(vuln.id().clone())
///     .build();
/// assert_eq!(report.object_refs.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    #[serde(flatten)]
    common: CommonProperties,
    /// Name of the report.
    pub name: String,
    /// Free-text description.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// When the report was published.
    pub published: Timestamp,
    /// The STIX objects this report covers.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub object_refs: Vec<StixId>,
}

impl Report {
    /// Starts building a report published at the given instant.
    pub fn builder(name: impl Into<String>, published: Timestamp) -> ReportBuilder {
        ReportBuilder {
            common: CommonProperties::new("report", Timestamp::now()),
            name: name.into(),
            description: None,
            published,
            object_refs: Vec::new(),
        }
    }

    /// The shared SDO properties.
    pub fn common(&self) -> &CommonProperties {
        &self.common
    }

    /// Mutable access to the shared SDO properties.
    pub fn common_mut(&mut self) -> &mut CommonProperties {
        &mut self.common
    }

    /// The object identifier.
    pub fn id(&self) -> &StixId {
        &self.common.id
    }
}

/// Builder for [`Report`].
#[derive(Debug, Clone)]
pub struct ReportBuilder {
    common: CommonProperties,
    name: String,
    description: Option<String>,
    published: Timestamp,
    object_refs: Vec<StixId>,
}

super::impl_common_builder!(ReportBuilder);

impl ReportBuilder {
    /// Sets the description.
    pub fn description(&mut self, description: impl Into<String>) -> &mut Self {
        self.description = Some(description.into());
        self
    }

    /// Adds a covered object reference.
    pub fn object_ref(&mut self, id: StixId) -> &mut Self {
        self.object_refs.push(id);
        self
    }

    /// Builds the report.
    pub fn build(&self) -> Report {
        Report {
            common: self.common.clone(),
            name: self.name.clone(),
            description: self.description.clone(),
            published: self.published,
            object_refs: self.object_refs.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let r = Report::builder("weekly digest", Timestamp::EPOCH)
            .label("threat-report")
            .object_ref(StixId::generate("malware"))
            .object_ref(StixId::generate("indicator"))
            .build();
        let json = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
