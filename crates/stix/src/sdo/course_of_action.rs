//! The `course-of-action` SDO: an action taken to prevent or respond to
//! an attack.

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::common::CommonProperties;
use crate::id::StixId;

/// A recommendation or action to take in response to an attack, such as
/// applying a patch or reconfiguring a firewall.
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
///
/// let coa = CourseOfAction::builder("upgrade struts")
///     .description("Upgrade Apache Struts to 2.5.13")
///     .build();
/// assert_eq!(coa.name, "upgrade struts");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CourseOfAction {
    #[serde(flatten)]
    common: CommonProperties,
    /// Name of the course of action.
    pub name: String,
    /// Free-text description.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
}

impl CourseOfAction {
    /// Starts building a course of action with the given name.
    pub fn builder(name: impl Into<String>) -> CourseOfActionBuilder {
        CourseOfActionBuilder {
            common: CommonProperties::new("course-of-action", Timestamp::now()),
            name: name.into(),
            description: None,
        }
    }

    /// The shared SDO properties.
    pub fn common(&self) -> &CommonProperties {
        &self.common
    }

    /// Mutable access to the shared SDO properties.
    pub fn common_mut(&mut self) -> &mut CommonProperties {
        &mut self.common
    }

    /// The object identifier.
    pub fn id(&self) -> &StixId {
        &self.common.id
    }
}

/// Builder for [`CourseOfAction`].
#[derive(Debug, Clone)]
pub struct CourseOfActionBuilder {
    common: CommonProperties,
    name: String,
    description: Option<String>,
}

super::impl_common_builder!(CourseOfActionBuilder);

impl CourseOfActionBuilder {
    /// Sets the description.
    pub fn description(&mut self, description: impl Into<String>) -> &mut Self {
        self.description = Some(description.into());
        self
    }

    /// Builds the course of action.
    pub fn build(&self) -> CourseOfAction {
        CourseOfAction {
            common: self.common.clone(),
            name: self.name.clone(),
            description: self.description.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let coa = CourseOfAction::builder("block c2")
            .description("null-route 203.0.113.9")
            .build();
        let json = serde_json::to_string(&coa).unwrap();
        let back: CourseOfAction = serde_json::from_str(&json).unwrap();
        assert_eq!(back, coa);
    }
}
