//! The `attack-pattern` SDO: tactics, techniques and procedures used to
//! compromise targets.

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::common::{CommonProperties, KillChainPhase};
use crate::id::StixId;

/// A type of tactic, technique or procedure describing how threat actors
/// attempt to compromise targets.
///
/// The paper's attack-pattern heuristic additionally scores an
/// `attack_type` and the `detection_tool` that observed it; both are
/// carried as `x_cais_*` custom properties.
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
///
/// let ap = AttackPattern::builder("spearphishing attachment")
///     .attack_type("initial-access")
///     .detection_tool("suricata")
///     .kill_chain_phase(KillChainPhase::lockheed_martin("delivery"))
///     .build();
/// assert_eq!(ap.name, "spearphishing attachment");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackPattern {
    #[serde(flatten)]
    common: CommonProperties,
    /// Name of the attack pattern.
    pub name: String,
    /// Free-text description.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// Kill-chain phases this pattern belongs to.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub kill_chain_phases: Vec<KillChainPhase>,
    /// Category of attack (paper feature `attack_type`).
    #[serde(rename = "x_cais_attack_type", skip_serializing_if = "Option::is_none")]
    pub attack_type: Option<String>,
    /// Tool that detected the activity (paper feature `detection_tool`).
    #[serde(
        rename = "x_cais_detection_tool",
        skip_serializing_if = "Option::is_none"
    )]
    pub detection_tool: Option<String>,
}

impl AttackPattern {
    /// Starts building an attack pattern with the given name.
    pub fn builder(name: impl Into<String>) -> AttackPatternBuilder {
        AttackPatternBuilder {
            common: CommonProperties::new("attack-pattern", Timestamp::now()),
            name: name.into(),
            description: None,
            kill_chain_phases: Vec::new(),
            attack_type: None,
            detection_tool: None,
        }
    }

    /// The shared SDO properties.
    pub fn common(&self) -> &CommonProperties {
        &self.common
    }

    /// Mutable access to the shared SDO properties.
    pub fn common_mut(&mut self) -> &mut CommonProperties {
        &mut self.common
    }

    /// The object identifier.
    pub fn id(&self) -> &StixId {
        &self.common.id
    }
}

/// Builder for [`AttackPattern`].
#[derive(Debug, Clone)]
pub struct AttackPatternBuilder {
    common: CommonProperties,
    name: String,
    description: Option<String>,
    kill_chain_phases: Vec<KillChainPhase>,
    attack_type: Option<String>,
    detection_tool: Option<String>,
}

super::impl_common_builder!(AttackPatternBuilder);

impl AttackPatternBuilder {
    /// Sets the description.
    pub fn description(&mut self, description: impl Into<String>) -> &mut Self {
        self.description = Some(description.into());
        self
    }

    /// Adds a kill-chain phase.
    pub fn kill_chain_phase(&mut self, phase: KillChainPhase) -> &mut Self {
        self.kill_chain_phases.push(phase);
        self
    }

    /// Sets the attack type (paper feature `attack_type`).
    pub fn attack_type(&mut self, attack_type: impl Into<String>) -> &mut Self {
        self.attack_type = Some(attack_type.into());
        self
    }

    /// Sets the detecting tool (paper feature `detection_tool`).
    pub fn detection_tool(&mut self, tool: impl Into<String>) -> &mut Self {
        self.detection_tool = Some(tool.into());
        self
    }

    /// Builds the attack pattern.
    pub fn build(&self) -> AttackPattern {
        AttackPattern {
            common: self.common.clone(),
            name: self.name.clone(),
            description: self.description.clone(),
            kill_chain_phases: self.kill_chain_phases.clone(),
            attack_type: self.attack_type.clone(),
            detection_tool: self.detection_tool.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_properties_have_x_prefix() {
        let ap = AttackPattern::builder("sql injection")
            .attack_type("web")
            .detection_tool("snort")
            .build();
        let json = serde_json::to_value(&ap).unwrap();
        assert_eq!(json["x_cais_attack_type"], "web");
        assert_eq!(json["x_cais_detection_tool"], "snort");
    }

    #[test]
    fn json_roundtrip() {
        let ap = AttackPattern::builder("drive-by compromise")
            .description("watering hole")
            .kill_chain_phase(KillChainPhase::lockheed_martin("exploitation"))
            .build();
        let json = serde_json::to_string(&ap).unwrap();
        let back: AttackPattern = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ap);
    }
}
