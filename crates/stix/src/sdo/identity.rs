//! The `identity` SDO: individuals, organizations or groups.

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::common::CommonProperties;
use crate::id::StixId;

/// An individual, organization or group (or a class of them) involved in
/// a security event.
///
/// The paper's identity heuristic also scores a `location` feature,
/// carried as an `x_cais_location` custom property.
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
///
/// let org = Identity::builder("ACME Corp")
///     .identity_class("organization")
///     .sector("financial-services")
///     .location("ES")
///     .build();
/// assert_eq!(org.identity_class.as_deref(), Some("organization"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Identity {
    #[serde(flatten)]
    common: CommonProperties,
    /// Name of the identity.
    pub name: String,
    /// Free-text description.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// The kind of entity (see [`crate::vocab::identity_class`]).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub identity_class: Option<String>,
    /// Industry sectors the identity belongs to.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub sectors: Vec<String>,
    /// Contact information.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub contact_information: Option<String>,
    /// Geographic location (paper feature `location`).
    #[serde(rename = "x_cais_location", skip_serializing_if = "Option::is_none")]
    pub location: Option<String>,
}

impl Identity {
    /// Starts building an identity with the given name.
    pub fn builder(name: impl Into<String>) -> IdentityBuilder {
        IdentityBuilder {
            common: CommonProperties::new("identity", Timestamp::now()),
            name: name.into(),
            description: None,
            identity_class: None,
            sectors: Vec::new(),
            contact_information: None,
            location: None,
        }
    }

    /// The shared SDO properties.
    pub fn common(&self) -> &CommonProperties {
        &self.common
    }

    /// Mutable access to the shared SDO properties.
    pub fn common_mut(&mut self) -> &mut CommonProperties {
        &mut self.common
    }

    /// The object identifier.
    pub fn id(&self) -> &StixId {
        &self.common.id
    }
}

/// Builder for [`Identity`].
#[derive(Debug, Clone)]
pub struct IdentityBuilder {
    common: CommonProperties,
    name: String,
    description: Option<String>,
    identity_class: Option<String>,
    sectors: Vec<String>,
    contact_information: Option<String>,
    location: Option<String>,
}

super::impl_common_builder!(IdentityBuilder);

impl IdentityBuilder {
    /// Sets the description.
    pub fn description(&mut self, description: impl Into<String>) -> &mut Self {
        self.description = Some(description.into());
        self
    }

    /// Sets the identity class.
    pub fn identity_class(&mut self, class: impl Into<String>) -> &mut Self {
        self.identity_class = Some(class.into());
        self
    }

    /// Adds an industry sector.
    pub fn sector(&mut self, sector: impl Into<String>) -> &mut Self {
        self.sectors.push(sector.into());
        self
    }

    /// Sets contact information.
    pub fn contact_information(&mut self, info: impl Into<String>) -> &mut Self {
        self.contact_information = Some(info.into());
        self
    }

    /// Sets the geographic location (paper feature `location`).
    pub fn location(&mut self, location: impl Into<String>) -> &mut Self {
        self.location = Some(location.into());
        self
    }

    /// Builds the identity.
    pub fn build(&self) -> Identity {
        Identity {
            common: self.common.clone(),
            name: self.name.clone(),
            description: self.description.clone(),
            identity_class: self.identity_class.clone(),
            sectors: self.sectors.clone(),
            contact_information: self.contact_information.clone(),
            location: self.location.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    #[test]
    fn vocabulary_alignment() {
        let id = Identity::builder("LASIGE")
            .identity_class("organization")
            .sector("education")
            .build();
        assert!(vocab::identity_class::contains(
            id.identity_class.as_deref().unwrap()
        ));
        assert!(vocab::industry_sector::contains(&id.sectors[0]));
    }

    #[test]
    fn json_roundtrip() {
        let id = Identity::builder("Atos Research")
            .identity_class("organization")
            .location("ES")
            .contact_information("security@atos.example")
            .build();
        let json = serde_json::to_string(&id).unwrap();
        let back: Identity = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
        assert!(json.contains("x_cais_location"));
    }
}
