//! The `threat-actor` SDO: individuals or groups operating with malicious
//! intent.

use cais_common::Timestamp;
use serde::{Deserialize, Serialize};

use crate::common::CommonProperties;
use crate::id::StixId;

/// An individual or group believed to be operating with malicious intent.
///
/// # Examples
///
/// ```
/// use cais_stix::prelude::*;
///
/// let actor = ThreatActor::builder("evil-corp")
///     .label("crime-syndicate")
///     .sophistication("advanced")
///     .primary_motivation("personal-gain")
///     .build();
/// assert_eq!(actor.name, "evil-corp");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreatActor {
    #[serde(flatten)]
    common: CommonProperties,
    /// Name of the threat actor.
    pub name: String,
    /// Free-text description.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// Alternative names.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub aliases: Vec<String>,
    /// Roles the actor plays (`agent`, `director`, `sponsor`, …).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub roles: Vec<String>,
    /// High-level goals.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub goals: Vec<String>,
    /// Skill level (`none` … `strategic`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub sophistication: Option<String>,
    /// Organizational level of resources.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub resource_level: Option<String>,
    /// Primary motivation (see [`crate::vocab::attack_motivation`]).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub primary_motivation: Option<String>,
}

impl ThreatActor {
    /// Starts building a threat actor with the given name.
    pub fn builder(name: impl Into<String>) -> ThreatActorBuilder {
        ThreatActorBuilder {
            common: CommonProperties::new("threat-actor", Timestamp::now()),
            name: name.into(),
            description: None,
            aliases: Vec::new(),
            roles: Vec::new(),
            goals: Vec::new(),
            sophistication: None,
            resource_level: None,
            primary_motivation: None,
        }
    }

    /// The shared SDO properties.
    pub fn common(&self) -> &CommonProperties {
        &self.common
    }

    /// Mutable access to the shared SDO properties.
    pub fn common_mut(&mut self) -> &mut CommonProperties {
        &mut self.common
    }

    /// The object identifier.
    pub fn id(&self) -> &StixId {
        &self.common.id
    }
}

/// Builder for [`ThreatActor`].
#[derive(Debug, Clone)]
pub struct ThreatActorBuilder {
    common: CommonProperties,
    name: String,
    description: Option<String>,
    aliases: Vec<String>,
    roles: Vec<String>,
    goals: Vec<String>,
    sophistication: Option<String>,
    resource_level: Option<String>,
    primary_motivation: Option<String>,
}

super::impl_common_builder!(ThreatActorBuilder);

impl ThreatActorBuilder {
    /// Sets the description.
    pub fn description(&mut self, description: impl Into<String>) -> &mut Self {
        self.description = Some(description.into());
        self
    }

    /// Adds an alias.
    pub fn alias(&mut self, alias: impl Into<String>) -> &mut Self {
        self.aliases.push(alias.into());
        self
    }

    /// Adds a role.
    pub fn role(&mut self, role: impl Into<String>) -> &mut Self {
        self.roles.push(role.into());
        self
    }

    /// Adds a goal.
    pub fn goal(&mut self, goal: impl Into<String>) -> &mut Self {
        self.goals.push(goal.into());
        self
    }

    /// Sets the sophistication level.
    pub fn sophistication(&mut self, level: impl Into<String>) -> &mut Self {
        self.sophistication = Some(level.into());
        self
    }

    /// Sets the resource level.
    pub fn resource_level(&mut self, level: impl Into<String>) -> &mut Self {
        self.resource_level = Some(level.into());
        self
    }

    /// Sets the primary motivation.
    pub fn primary_motivation(&mut self, motivation: impl Into<String>) -> &mut Self {
        self.primary_motivation = Some(motivation.into());
        self
    }

    /// Builds the threat actor.
    pub fn build(&self) -> ThreatActor {
        ThreatActor {
            common: self.common.clone(),
            name: self.name.clone(),
            description: self.description.clone(),
            aliases: self.aliases.clone(),
            roles: self.roles.clone(),
            goals: self.goals.clone(),
            sophistication: self.sophistication.clone(),
            resource_level: self.resource_level.clone(),
            primary_motivation: self.primary_motivation.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let actor = ThreatActor::builder("evil-corp")
            .label("criminal")
            .alias("ec")
            .role("director")
            .goal("financial gain")
            .sophistication("advanced")
            .primary_motivation("personal-gain")
            .build();
        let json = serde_json::to_string(&actor).unwrap();
        let back: ThreatActor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, actor);
    }
}
