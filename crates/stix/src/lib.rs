//! # cais-stix
//!
//! A from-scratch implementation of the STIX 2.0 data model: the twelve
//! STIX Domain Objects (SDOs), the relationship objects (SROs), bundles,
//! open vocabularies, object validation and the STIX patterning language
//! (lexer, parser and an evaluator over observation data).
//!
//! The paper adopts STIX 2.0 as "the de-facto standard for describing
//! threat intelligence" and selects six SDOs as its heuristics
//! (attack-pattern, identity, indicator, malware, tool, vulnerability);
//! this crate provides all twelve so the platform can ingest arbitrary
//! STIX content.
//!
//! # Examples
//!
//! ```
//! use cais_stix::prelude::*;
//!
//! let vuln = Vulnerability::builder("CVE-2017-9805")
//!     .description("Apache Struts REST plugin XStream RCE")
//!     .external_reference(ExternalReference::cve("CVE-2017-9805"))
//!     .build();
//!
//! let bundle = Bundle::new(vec![vuln.into()]);
//! let json = bundle.to_json_pretty()?;
//! let back = Bundle::from_json(&json)?;
//! assert_eq!(back.objects().len(), 1);
//! # Ok::<(), cais_stix::StixError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod common;
pub mod error;
pub mod id;
pub mod object;
pub mod pattern;
pub mod sdo;
pub mod sro;
pub mod validate;
pub mod vocab;

pub use bundle::Bundle;
pub use common::{CommonProperties, ExternalReference, KillChainPhase};
pub use error::StixError;
pub use id::StixId;
pub use object::{ObjectType, StixObject};
pub use sro::{Relationship, RelationshipType, Sighting};

/// Convenient glob import for working with STIX objects.
pub mod prelude {
    pub use crate::bundle::Bundle;
    pub use crate::common::{CommonProperties, ExternalReference, KillChainPhase};
    pub use crate::error::StixError;
    pub use crate::id::StixId;
    pub use crate::object::{ObjectType, StixObject};
    pub use crate::sdo::{
        AttackPattern, Campaign, CourseOfAction, Identity, Indicator, IntrusionSet, Malware,
        ObservedData, Report, ThreatActor, Tool, Vulnerability,
    };
    pub use crate::sro::{Relationship, RelationshipType, Sighting};
}
