//! STIX object identifiers of the form `object-type--UUID`.

use std::fmt;
use std::str::FromStr;

use cais_common::Uuid;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::error::StixError;

/// A STIX 2.0 identifier: an object type name, a literal `--`, and a UUID.
///
/// # Examples
///
/// ```
/// use cais_stix::StixId;
///
/// let id = StixId::generate("vulnerability");
/// assert_eq!(id.object_type(), "vulnerability");
///
/// let parsed: StixId = id.to_string().parse()?;
/// assert_eq!(parsed, id);
/// # Ok::<(), cais_stix::StixError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StixId {
    object_type: String,
    uuid: Uuid,
}

impl StixId {
    /// Creates an identifier from its parts.
    ///
    /// # Errors
    ///
    /// Returns [`StixError::InvalidId`] when `object_type` is not a valid
    /// STIX type name (lowercase ASCII letters, digits and single hyphens,
    /// 3–250 characters).
    pub fn new(object_type: &str, uuid: Uuid) -> Result<Self, StixError> {
        if !is_valid_type_name(object_type) {
            return Err(StixError::InvalidId {
                input: object_type.to_owned(),
                reason: "object type must be lowercase letters, digits and hyphens",
            });
        }
        Ok(StixId {
            object_type: object_type.to_owned(),
            uuid,
        })
    }

    /// Generates a fresh identifier with a random v4 UUID.
    ///
    /// # Panics
    ///
    /// Panics if `object_type` is not a valid STIX type name; use
    /// [`StixId::new`] for untrusted input.
    pub fn generate(object_type: &str) -> Self {
        StixId::new(object_type, Uuid::new_v4()).expect("valid object type")
    }

    /// Derives a deterministic identifier from a name, so identical
    /// content maps to the same id across runs (used for deduplication).
    ///
    /// # Panics
    ///
    /// Panics if `object_type` is not a valid STIX type name.
    pub fn derived(object_type: &str, name: &str) -> Self {
        StixId::new(object_type, Uuid::new_v5(name)).expect("valid object type")
    }

    /// The object-type prefix (for example `indicator`).
    pub fn object_type(&self) -> &str {
        &self.object_type
    }

    /// The UUID component.
    pub fn uuid(&self) -> Uuid {
        self.uuid
    }
}

impl fmt::Display for StixId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}--{}", self.object_type, self.uuid)
    }
}

impl FromStr for StixId {
    type Err = StixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let Some((ty, uuid_str)) = s.split_once("--") else {
            return Err(StixError::InvalidId {
                input: s.to_owned(),
                reason: "missing `--` separator",
            });
        };
        let uuid: Uuid = uuid_str.parse().map_err(|_| StixError::InvalidId {
            input: s.to_owned(),
            reason: "invalid UUID component",
        })?;
        StixId::new(ty, uuid).map_err(|_| StixError::InvalidId {
            input: s.to_owned(),
            reason: "invalid object-type component",
        })
    }
}

impl Serialize for StixId {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for StixId {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

fn is_valid_type_name(s: &str) -> bool {
    if s.len() < 3 || s.len() > 250 {
        return false;
    }
    if s.starts_with('-') || s.ends_with('-') || s.contains("--") {
        return false;
    }
    s.bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_and_parse() {
        let id = StixId::generate("attack-pattern");
        assert_eq!(id.object_type(), "attack-pattern");
        let s = id.to_string();
        assert!(s.starts_with("attack-pattern--"));
        let parsed: StixId = s.parse().unwrap();
        assert_eq!(parsed, id);
    }

    #[test]
    fn derived_is_deterministic() {
        let a = StixId::derived("indicator", "domain:evil.example");
        let b = StixId::derived("indicator", "domain:evil.example");
        assert_eq!(a, b);
        assert_ne!(a, StixId::derived("indicator", "domain:other.example"));
    }

    #[test]
    fn rejects_invalid_type_names() {
        for ty in [
            "",
            "ab",
            "Upper-Case",
            "has_underscore",
            "-lead",
            "trail-",
            "dou--ble",
        ] {
            assert!(StixId::new(ty, Uuid::new_v4()).is_err(), "{ty:?}");
        }
    }

    #[test]
    fn rejects_malformed_strings() {
        for s in [
            "indicator",
            "indicator--not-a-uuid",
            "--550e8400-e29b-41d4-a716-446655440000",
        ] {
            assert!(StixId::from_str(s).is_err(), "{s:?}");
        }
    }

    #[test]
    fn serde_roundtrip() {
        let id = StixId::generate("malware");
        let json = serde_json::to_string(&id).unwrap();
        let back: StixId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
